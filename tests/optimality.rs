//! Optimality cross-checks: SoCL and both exact paths against each other.
//!
//! These are the repository's strongest correctness guarantees: the
//! specialized branch-and-bound, the ILP lowering solved by the from-scratch
//! MILP solver, and brute-force enumeration must all agree; SoCL must stay
//! within a small gap of the proven optimum (the paper reports ≤ 9.9%).

use socl::prelude::*;

/// Tiny scenarios both exact paths can afford.
fn tiny(seed: u64, nodes: usize, users: usize) -> Scenario {
    let mut cfg = ScenarioConfig::paper(nodes, users);
    cfg.requests.chain_len = (2, 3);
    cfg.build(seed)
}

#[test]
fn exact_paths_agree() {
    for seed in 0..4 {
        let sc = tiny(seed, 3, 4);
        let bb = solve_exact(&sc, &ExactOptions::default());
        assert!(bb.proved_optimal, "seed {seed}: B&B did not prove");
        let (_, milp) = solve_ilp(&sc, &MilpOptions::default())
            .unwrap_or_else(|| panic!("seed {seed}: ILP found no solution"));
        assert!(
            (bb.objective - milp.objective).abs() < 1e-3,
            "seed {seed}: specialized B&B {} vs MILP lowering {}",
            bb.objective,
            milp.objective
        );
    }
}

#[test]
fn socl_gap_to_optimum_is_small() {
    // The paper reports optimality gaps below 9.9%; on small instances we
    // verify SoCL stays within a modest factor of the proven optimum.
    let mut worst: f64 = 0.0;
    for seed in 0..6 {
        let sc = tiny(seed + 100, 4, 8);
        let opt = solve_exact(&sc, &ExactOptions::default());
        assert!(opt.proved_optimal);
        let socl = SoclSolver::new().solve(&sc);
        let gap = (socl.objective() - opt.objective) / opt.objective;
        assert!(
            gap >= -1e-6,
            "seed {seed}: SoCL {} beat the 'optimum' {} — exact solver bug",
            socl.objective(),
            opt.objective
        );
        worst = worst.max(gap);
    }
    assert!(
        worst <= 0.35,
        "worst SoCL gap {worst:.3} too large on tiny instances"
    );
}

#[test]
fn exact_dominates_every_heuristic() {
    for seed in 0..3 {
        let sc = tiny(seed + 50, 4, 6);
        let opt = solve_exact(&sc, &ExactOptions::default());
        assert!(opt.proved_optimal);
        let socl = SoclSolver::new().solve(&sc).objective();
        let g = gc_og(&sc).objective;
        // RP and JDR route sub-optimally (their own policies); the exact
        // optimum must still lower-bound every placement evaluated with
        // optimal routing.
        let rp_opt_routing = evaluate(&sc, &random_provisioning(&sc, 9).placement).objective;
        let jdr_opt_routing = evaluate(&sc, &jdr(&sc).placement).objective;
        for (name, obj) in [
            ("SoCL", socl),
            ("GC-OG", g),
            ("RP(opt-routing)", rp_opt_routing),
            ("JDR(opt-routing)", jdr_opt_routing),
        ] {
            assert!(
                opt.objective <= obj + 1e-6,
                "seed {seed}: {name} {obj} beats the optimum {}",
                opt.objective
            );
        }
    }
}

#[test]
fn exact_runtime_blows_up_with_scale_while_socl_stays_flat() {
    // The Figure 2/7 phenomenon in miniature. Node counts are not strictly
    // monotone in users (pruning luck varies), so assert the robust shape:
    // the exact search does combinatorial work (thousands of nodes) on a
    // 14-user instance while SoCL solves it interactively.
    let large = tiny(7, 4, 14);
    let opt_large = solve_exact(&large, &ExactOptions::default());
    assert!(
        opt_large.nodes > 1_000,
        "exact search suspiciously cheap: {} nodes",
        opt_large.nodes
    );
    // SoCL completes instantly (guarded generously for CI noise).
    let t = std::time::Instant::now();
    let _ = SoclSolver::new().solve(&large);
    assert!(t.elapsed() < std::time::Duration::from_secs(5));
}

#[test]
fn milp_time_limit_degrades_gracefully_on_socl_ilp() {
    use std::time::Duration;
    let sc = tiny(30, 4, 6);
    let res = solve_ilp(
        &sc,
        &MilpOptions {
            time_limit: Some(Duration::from_millis(50)),
            ..MilpOptions::default()
        },
    );
    // Either it solved fast, or it returned a feasible incumbent, or
    // None — but it must not hang or panic.
    if let Some((placement, sol)) = res {
        assert!(sol.objective.is_finite());
        assert!(placement.covers(&sc.requests) || sol.objective > 0.0);
    }
}

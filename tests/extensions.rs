//! Integration tests for the extension subsystems: contention analysis,
//! extra datasets, snapshots, resilience, k-paths, and warm starts.

use socl::core::{placement_churn, WarmStartSolver};
use socl::model::contention::{link_loads, route_all_contention_aware};
use socl::model::{route_all, PlacementSnapshot, ScenarioSnapshot};
use socl::net::{k_shortest_paths, link_criticality, node_criticality};
use socl::prelude::*;

#[test]
fn contention_pricing_interoperates_with_socl_placements() {
    let sc = ScenarioConfig::paper(10, 60).build(1);
    let placement = SoclSolver::new().solve(&sc).placement;
    let selfish = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
    let priced = route_all_contention_aware(&sc, &placement, 2.0);
    assert_eq!(priced.cloud_fallbacks(), selfish.cloud_fallbacks());
    let l_selfish = link_loads(&sc, &selfish);
    let l_priced = link_loads(&sc, &priced);
    // Pricing never concentrates load more than the selfish optimum.
    let peak = |l: &socl::model::LinkLoads| l.hottest().map_or(0.0, |(_, g)| g);
    assert!(peak(&l_priced) <= peak(&l_selfish) + 1e-9);
    assert!(l_priced.fairness() >= l_selfish.fairness() - 1e-9);
}

#[test]
fn socl_runs_on_every_embedded_dataset() {
    for (name, ds) in [
        ("eshop", EshopDataset::build()),
        ("sock-shop", SockShopDataset::build()),
        ("train-ticket", TrainTicketDataset::build()),
    ] {
        // Scale the budget with the catalog size: Train Ticket has 24
        // services, so the paper's 6000 cannot even cover one instance each.
        let mut cfg = ScenarioConfig::paper(10, 50);
        cfg.budget = 6000.0 * (ds.len() as f64 / 12.0);
        let sc = cfg.build_with_dataset(&ds, 2);
        let res = SoclSolver::new().solve(&sc);
        assert_eq!(res.evaluation.cloud_fallbacks, 0, "{name}");
        assert!(res.evaluation.cost <= sc.budget + 1e-6, "{name}");
        assert!(
            res.placement.storage_feasible(&sc.catalog, &sc.net),
            "{name}"
        );
    }
}

#[test]
fn snapshots_make_runs_portable() {
    // Solve on "machine A", ship scenario+placement as JSON, re-evaluate on
    // "machine B": objectives must agree exactly.
    let sc = ScenarioConfig::paper(8, 30).build(3);
    let res = SoclSolver::new().solve(&sc);

    let sc_json = ScenarioSnapshot::capture(&sc).to_json();
    let p_json = PlacementSnapshot::capture(&res.placement).to_json();

    let sc2 = ScenarioSnapshot::from_json(&sc_json)
        .unwrap()
        .restore()
        .unwrap();
    let p2 = PlacementSnapshot::from_json(&p_json)
        .unwrap()
        .restore()
        .unwrap();
    let ev2 = evaluate(&sc2, &p2);
    assert_eq!(ev2.objective, res.evaluation.objective);
}

#[test]
fn resilience_rankings_cover_all_components() {
    let sc = ScenarioConfig::paper(10, 20).build(4);
    let links = link_criticality(&sc.net);
    let nodes = node_criticality(&sc.net);
    assert_eq!(links.len(), sc.net.link_count());
    assert_eq!(nodes.len(), sc.nodes());
    // Stretch is a ratio ≥ 1 whenever defined.
    for i in links.iter().chain(&nodes) {
        assert!(i.mean_stretch >= 1.0 - 1e-12);
    }
}

#[test]
fn k_paths_feed_failure_reasoning() {
    // If k ≥ 2 loopless paths exist between a pair, single-link failures on
    // the best path leave the pair connected.
    let sc = ScenarioConfig::paper(10, 10).build(5);
    let paths = k_shortest_paths(&sc.net, NodeId(0), NodeId(9), 3);
    assert!(!paths.is_empty());
    if paths.len() >= 2 {
        // Second-best weight upper-bounds the worst-case single-failure
        // latency along the first path's links... at minimum it is a valid
        // alternative: its weight is finite and ≥ the best.
        assert!(paths[1].weight >= paths[0].weight - 1e-12);
        assert!(paths[1].weight.is_finite());
    }
}

#[test]
fn warm_start_tracks_a_drifting_system() {
    let mut solver = WarmStartSolver::new(SoclConfig::default());
    let mut previous: Option<Placement> = None;
    let mut total_churn = 0usize;
    for slot in 0..5u64 {
        // Drift: same topology seed, evolving request seed.
        let mut cfg = ScenarioConfig::paper(10, 40);
        cfg.nodes = 10;
        let sc = {
            // Keep the topology fixed by reusing the same build seed for the
            // net, but vary request locations by rotating them.
            let mut sc = cfg.build(7);
            for r in sc.requests.iter_mut() {
                r.location = NodeId((r.location.0 + slot as u32) % 10);
            }
            sc
        };
        let out = solver.solve_slot(&sc);
        assert_eq!(out.result.evaluation.cloud_fallbacks, 0);
        if let Some(prev) = &previous {
            total_churn += placement_churn(prev, &out.result.placement);
        }
        previous = Some(out.result.placement.clone());
    }
    // The drifting system forces some churn but the warm start keeps it far
    // below a full redeploy per slot (placements have ~15 instances; 4
    // transitions × 2·15 would be a full swap every slot).
    assert!(
        total_churn < 4 * 30,
        "churn {total_churn} looks like full redeploys"
    );
}

//! The paper's headline comparative claims (Figure 8): SoCL achieves the
//! lowest objective; RP is the worst; the ordering stabilizes as users grow.

use socl::prelude::*;

/// Median-of-seeds objective for each algorithm at one scale.
fn run_scale(users: usize, seeds: &[u64]) -> (f64, f64, f64, f64) {
    let mut socl = Vec::new();
    let mut rp = Vec::new();
    let mut j = Vec::new();
    let mut g = Vec::new();
    for &seed in seeds {
        let sc = ScenarioConfig::paper(10, users).build(seed);
        socl.push(SoclSolver::new().solve(&sc).objective());
        rp.push(random_provisioning(&sc, seed ^ 0xBEEF).objective);
        j.push(jdr(&sc).objective);
        g.push(gc_og(&sc).objective);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    (med(&mut socl), med(&mut rp), med(&mut j), med(&mut g))
}

#[test]
fn socl_beats_all_baselines_at_moderate_scale() {
    let (socl, rp, jdr_obj, gcog) = run_scale(80, &[1, 2, 3]);
    assert!(socl < rp, "SoCL {socl} vs RP {rp}");
    assert!(socl < jdr_obj, "SoCL {socl} vs JDR {jdr_obj}");
    assert!(
        socl <= gcog * 1.05,
        "SoCL {socl} should at least match GC-OG {gcog}"
    );
}

#[test]
fn rp_is_the_weakest_structured_strategy() {
    // The paper: "RP performed the worst due to its random placement and
    // routing strategy". GC-OG and SoCL must beat it; JDR usually does.
    let (socl, rp, _jdr_obj, gcog) = run_scale(60, &[4, 5, 6]);
    assert!(socl < rp);
    assert!(gcog < rp);
}

#[test]
fn ordering_holds_across_growing_user_scales() {
    // Figure 8's sweep (scaled down for CI): SoCL lowest at every scale.
    for users in [40, 80, 120] {
        let (socl, rp, jdr_obj, gcog) = run_scale(users, &[7, 8]);
        assert!(
            socl < rp && socl < jdr_obj && socl <= gcog * 1.05,
            "users={users}: SoCL {socl}, RP {rp}, JDR {jdr_obj}, GC-OG {gcog}"
        );
    }
}

#[test]
fn socl_runtime_beats_gcog_at_scale() {
    // GC-OG re-evaluates every instance each round — the paper's "low search
    // efficiency". At 200 users SoCL must be clearly faster.
    let sc = ScenarioConfig::paper(10, 200).build(9);
    let t = std::time::Instant::now();
    let _ = SoclSolver::new().solve(&sc);
    let socl_time = t.elapsed();
    let t = std::time::Instant::now();
    let _ = gc_og(&sc);
    let gcog_time = t.elapsed();
    assert!(
        socl_time < gcog_time,
        "SoCL {socl_time:?} should beat GC-OG {gcog_time:?}"
    );
}

#[test]
fn jdr_overspends_relative_to_socl() {
    // The paper: JDR "caused resource redundancy that led to consistently
    // high objective values" by neglecting provisioning cost.
    let mut jdr_cost_total = 0.0;
    let mut socl_cost_total = 0.0;
    for seed in [10, 11, 12] {
        let sc = ScenarioConfig::paper(10, 100).build(seed);
        jdr_cost_total += jdr(&sc).cost;
        socl_cost_total += SoclSolver::new().solve(&sc).evaluation.cost;
    }
    assert!(
        jdr_cost_total > socl_cost_total,
        "JDR {jdr_cost_total} should spend more than SoCL {socl_cost_total}"
    );
}

//! End-to-end integration: the full SoCL pipeline against every subsystem.

use socl::prelude::*;

#[test]
fn socl_end_to_end_on_paper_scales() {
    // Paper scales: 10 nodes with users 10..60.
    for users in [10, 20, 30, 40, 50, 60] {
        let sc = ScenarioConfig::paper(10, users).build(users as u64);
        let res = SoclSolver::new().solve(&sc);
        assert_eq!(res.evaluation.cloud_fallbacks, 0, "users={users}");
        assert!(res.evaluation.cost <= sc.budget + 1e-6, "users={users}");
        assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
        // Objective grows with load but stays finite and positive.
        assert!(res.objective() > 0.0 && res.objective().is_finite());
    }
}

#[test]
fn socl_objective_grows_moderately_with_users() {
    // The paper: from 80 to 200 users SoCL's objective grows from ~4.7k to
    // ~7.6k — far sub-linear in users. Check the growth factor shape.
    let sc80 = ScenarioConfig::paper(10, 80).build(1);
    let sc200 = ScenarioConfig::paper(10, 200).build(1);
    let r80 = SoclSolver::new().solve(&sc80);
    let r200 = SoclSolver::new().solve(&sc200);
    let growth = r200.objective() / r80.objective();
    assert!(
        growth < 200.0 / 80.0,
        "objective growth {growth:.2} should be sub-linear in users"
    );
}

#[test]
fn pipeline_stage_outputs_connect() {
    let sc = ScenarioConfig::paper(12, 50).build(9);
    let res = SoclSolver::new().solve(&sc);
    // Stage 1 covered every requested service.
    let requested = sc.requested_services();
    for m in &requested {
        assert!(res.partitions.partitions_of(*m).is_some());
    }
    // Stage 2 produced at least one instance per service and stage 3 only
    // ever removed instances: final hosts ⊆ stage-2 hosts ∪ migrations. At
    // minimum, coverage survives.
    for m in &requested {
        assert!(res.placement.instance_count(*m) >= 1);
    }
    // The evaluation's assignment is consistent with the placement (Eq. 10).
    assert!(res
        .evaluation
        .assignment
        .consistent_with(&res.placement, &sc.requests));
}

#[test]
fn facade_reexports_compose() {
    // Build a custom scenario by hand through the facade: tiny topology,
    // custom catalog, explicit requests.
    let mut net = EdgeNetwork::new();
    let a = net.push_server(EdgeServer::new(10.0, 8.0));
    let b = net.push_server(EdgeServer::new(20.0, 8.0));
    net.add_link(a, b, LinkParams::from_rate(50.0));

    let mut catalog = ServiceCatalog::new();
    let m0 = catalog.push(Microservice::named("frontend", 300.0, 1.0, 2.0));
    let m1 = catalog.push(Microservice::named("backend", 400.0, 1.5, 3.0));

    let requests = vec![
        UserRequest::new(UserId(0), a, vec![m0, m1], vec![1.0], 0.5, 0.2, 10.0),
        UserRequest::new(UserId(1), b, vec![m0, m1], vec![1.0], 0.5, 0.2, 10.0),
    ];
    let sc = ScenarioConfig {
        budget: 2000.0,
        ..ScenarioConfig::default()
    }
    .assemble(net, catalog, requests);

    let res = SoclSolver::new().solve(&sc);
    assert_eq!(res.evaluation.cloud_fallbacks, 0);
    // With two users on two nodes and plenty of budget, both services end up
    // deployed (possibly replicated).
    assert!(res.placement.instance_count(m0) >= 1);
    assert!(res.placement.instance_count(m1) >= 1);
}

#[test]
fn all_algorithms_agree_on_feasibility_semantics() {
    let sc = ScenarioConfig::paper(10, 60).build(17);
    let socl = SoclSolver::new().solve(&sc);
    let rp = random_provisioning(&sc, 1);
    let j = jdr(&sc);
    let g = gc_og(&sc);
    for (name, placement, cost) in [
        ("SoCL", &socl.placement, socl.evaluation.cost),
        ("RP", &rp.placement, rp.cost),
        ("JDR", &j.placement, j.cost),
        ("GC-OG", &g.placement, g.cost),
    ] {
        assert!(placement.covers(&sc.requests), "{name} does not cover");
        assert!(placement.storage_feasible(&sc.catalog, &sc.net), "{name}");
        assert!(cost <= sc.budget + 1e-6, "{name} over budget: {cost}");
    }
}

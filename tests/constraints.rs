//! Constraint semantics across the whole stack (Eqs. 4–6, 9–11).

use socl::prelude::*;

#[test]
fn budget_constraint_binds_socl() {
    // Shrinking the budget forces cheaper deployments, monotonically.
    let mut costs = Vec::new();
    for budget in [8000.0, 6500.0, 5000.0] {
        let mut cfg = ScenarioConfig::paper(10, 80);
        cfg.budget = budget;
        let sc = cfg.build(1);
        let res = SoclSolver::new().solve(&sc);
        assert!(res.evaluation.cost <= budget + 1e-6);
        costs.push(res.evaluation.cost);
    }
    assert!(
        costs[0] >= costs[2] - 1e-6,
        "cost under generous budget {} below tight-budget cost {}",
        costs[0],
        costs[2]
    );
}

#[test]
fn storage_constraint_binds_everywhere() {
    // Squeeze node storage and verify every algorithm still respects Eq. 6.
    let mut cfg = ScenarioConfig::paper(10, 50);
    cfg.topology.storage_units = (2.0, 3.0); // much tighter than [4, 8]
    let sc = cfg.build(2);
    let placements = [
        ("SoCL", SoclSolver::new().solve(&sc).placement),
        ("RP", random_provisioning(&sc, 3).placement),
        ("JDR", jdr(&sc).placement),
        ("GC-OG", gc_og(&sc).placement),
    ];
    for (name, p) in placements {
        assert!(
            p.storage_feasible(&sc.catalog, &sc.net),
            "{name} violated storage under tight capacities"
        );
    }
}

#[test]
fn latency_bound_rollback_produces_compliant_solutions() {
    // With achievable-but-tight latency bounds, SoCL's serial descent must
    // roll back violating combinations and end compliant.
    let sc0 = ScenarioConfig::paper(10, 40).build(4);
    let generous = SoclSolver::new().solve(&sc0);
    let mut sc = sc0.clone();
    for (req, &d) in sc.requests.iter_mut().zip(&generous.evaluation.per_request) {
        req.d_max = (d * 1.5).max(0.05);
    }
    let res = SoclSolver::new().solve(&sc);
    let violations = res
        .evaluation
        .per_request
        .iter()
        .zip(&sc.requests)
        .filter(|(d, r)| **d > r.d_max + 1e-9)
        .count();
    assert_eq!(
        violations, 0,
        "final solution violates {} latency bounds",
        violations
    );
}

#[test]
fn assignment_uniqueness_and_consistency() {
    // Eq. 9: one node per chain position; Eq. 10: y ≤ x.
    let sc = ScenarioConfig::paper(10, 60).build(5);
    let res = SoclSolver::new().solve(&sc);
    assert!(res
        .evaluation
        .assignment
        .consistent_with(&res.placement, &sc.requests));
    for (h, req) in sc.requests.iter().enumerate() {
        let route = res.evaluation.assignment.route(h).expect("edge-served");
        assert_eq!(
            route.len(),
            req.chain.len(),
            "Eq. 9 violated for {}",
            req.id
        );
    }
}

#[test]
fn infeasible_budget_is_handled_gracefully() {
    // A budget below one-instance-per-service: SoCL cannot meet Eq. 5 but
    // must not panic, must keep serving (continuity beats budget in the
    // implementation, mirroring Algorithm 4's service-continuity rule).
    let mut cfg = ScenarioConfig::paper(8, 30);
    cfg.budget = 100.0; // absurdly small
    let sc = cfg.build(6);
    let res = SoclSolver::new().solve(&sc);
    assert_eq!(res.evaluation.cloud_fallbacks, 0);
    // Cost is the irreducible one-instance-per-service floor.
    let floor: f64 = sc
        .requested_services()
        .iter()
        .map(|&m| sc.catalog.deploy_cost(m))
        .sum();
    assert!(res.evaluation.cost <= floor + 1e-6);
}

#[test]
fn cloud_penalty_dominates_any_edge_latency() {
    // The penalty must exceed every achievable edge completion time so that
    // "serve from the edge" is always preferred — otherwise the objective
    // would quietly favour dropping users.
    let sc = ScenarioConfig::paper(10, 50).build(7);
    let full = Placement::full(sc.services(), sc.nodes());
    let ev = evaluate(&sc, &full);
    assert!(
        ev.max_latency() < sc.cloud_penalty,
        "edge latency {} exceeds the cloud penalty {}",
        ev.max_latency(),
        sc.cloud_penalty
    );
}

//! Integration tests across the simulator, testbed emulator and policies.

use socl::prelude::*;

#[test]
fn online_socl_beats_rp_on_average_delay() {
    // The Figure 10 claim in miniature: across a mobile-user trace, SoCL's
    // average delay stays below RP's.
    let cfg = OnlineConfig {
        slots: 10,
        users: 40,
        nodes: 12,
        seed: 1,
        ..OnlineConfig::default()
    };
    let avg = |policy: &Policy, cfg: &OnlineConfig| {
        let mut sim = OnlineSimulator::new(cfg.clone());
        let recs = sim.run(policy);
        recs.iter().map(|r| r.mean_latency).sum::<f64>() / recs.len() as f64
    };
    let socl = avg(&Policy::Socl(SoclConfig::default()), &cfg);
    let rp = avg(&Policy::Rp { seed: 2 }, &cfg);
    assert!(
        socl < rp,
        "SoCL mean delay {socl} should beat RP {rp} over the trace"
    );
}

#[test]
fn testbed_ranks_placements_like_the_objective() {
    // A placement that the objective says is much worse (single pile-up
    // node) must also measure worse on the testbed.
    let sc = ScenarioConfig::paper(8, 40).build(3);
    let socl_p = SoclSolver::new().solve(&sc).placement;
    let mut pile = Placement::empty(sc.services(), sc.nodes());
    for m in sc.requested_services() {
        pile.set(m, NodeId(0), true);
    }
    let cfg = TestbedConfig::default();
    let socl_m = run_testbed(&sc, &socl_p, &cfg);
    let pile_m = run_testbed(&sc, &pile, &cfg);
    assert!(
        socl_m.mean < pile_m.mean,
        "testbed: SoCL {} should beat pile-up {}",
        socl_m.mean,
        pile_m.mean
    );
}

#[test]
fn four_hour_trace_shape() {
    // 48 slots of 5 minutes = 4 hours (Figure 10's horizon), 16 nodes,
    // 50 users, trimmed to 16 slots for CI speed but same mechanics.
    let cfg = OnlineConfig {
        slots: 16,
        users: 50,
        nodes: 16,
        seed: 4,
        ..OnlineConfig::default()
    };
    let mut sim = OnlineSimulator::new(cfg);
    let recs = sim.run(&Policy::Socl(SoclConfig::default()));
    assert_eq!(recs.len(), 16);
    // Delays stay bounded and positive; no slot collapses.
    for r in &recs {
        assert!(r.mean_latency > 0.0);
        assert!(r.max_latency < 5.0, "slot {}: runaway delay", r.slot);
        assert_eq!(r.fallbacks, 0);
    }
}

#[test]
fn temporal_workload_drives_scenarios() {
    // Fig. 4 workload → per-interval user counts → scenarios. The pipeline
    // must absorb fluctuating load without failures.
    let workload = TemporalWorkload::generate(&TemporalConfig::default(), 5);
    let counts = workload.as_user_counts(10, 60);
    for (i, &users) in counts.iter().take(6).enumerate() {
        let sc = ScenarioConfig::paper(10, users).build(i as u64);
        let res = SoclSolver::new().solve(&sc);
        assert_eq!(res.evaluation.cloud_fallbacks, 0, "interval {i}");
    }
}

#[test]
fn trace_generator_supports_scenario_style_analysis() {
    // Figures 3a/3b end-to-end: generate traces, compute both similarity
    // matrices, check ranges.
    let g = TraceGenerator::new(TraceConfig::default(), 6);
    let all = g.sample_all(1);
    let usage_sim = similarity_matrix(&all, |a, b| cosine_similarity(&a.usage, &b.usage));
    for (idx, &v) in usage_sim.iter().enumerate() {
        assert!((0.0..=1.0 + 1e-9).contains(&v), "entry {idx} = {v}");
    }
    let series = g.sample_series(0, 6, 2);
    let edge_sim = similarity_matrix(&series, |a, b| jaccard_similarity(&a.edges, &b.edges));
    for &v in &edge_sim {
        assert!((0.0..=1.0).contains(&v));
    }
}

#[test]
fn cold_starts_decline_when_instances_stay_warm() {
    let sc = ScenarioConfig::paper(8, 40).build(7);
    let placement = SoclSolver::new().solve(&sc).placement;
    let cold_heavy = run_testbed(
        &sc,
        &placement,
        &TestbedConfig {
            epochs: 3,
            keep_warm: 0.0, // everything is always cold
            ..TestbedConfig::default()
        },
    );
    let warm = run_testbed(
        &sc,
        &placement,
        &TestbedConfig {
            epochs: 3,
            keep_warm: 1e9, // nothing ever goes cold after first use
            ..TestbedConfig::default()
        },
    );
    assert!(cold_heavy.cold_starts > warm.cold_starts);
    assert!(cold_heavy.mean > warm.mean);
}

//! Repository-level dogfood test: the SoCL workspace must satisfy its own
//! linter, *including* the interprocedural determinism/panic taint passes
//! and the units-of-measure pass.
//!
//! The per-crate `workspace_dogfood_is_clean` test inside `socl-lint` covers
//! the same ground when that crate's tests run; this copy lives in the
//! facade crate's suite so `cargo test -p socl` — the tier-1 gate — fails
//! on a taint regression even if the lint crate's own tests are skipped.

use socl_lint::engine::{lint_workspace_passes, render_json, Passes};
use socl_lint::find_workspace_root;

#[test]
fn workspace_passes_its_own_linter() {
    let cwd = std::env::current_dir().expect("cwd");
    let root = find_workspace_root(&cwd).expect("workspace root not found");
    let diags = lint_workspace_passes(&root, &Passes::default()).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The machine-readable payload `socl-lint --json` would print for this
    // run: a clean workspace is exactly the empty array, so JSON consumers
    // (the CI gate) never need a special case.
    assert_eq!(render_json(&diags), "[]");
}

#[test]
fn every_pass_is_individually_clean() {
    // Run each pass alone so a failure names the responsible analysis
    // instead of burying it in a combined report.
    let cwd = std::env::current_dir().expect("cwd");
    let root = find_workspace_root(&cwd).expect("workspace root not found");
    for sel in ["token", "taint", "units", "alloc", "codec"] {
        let passes = Passes::from_list(sel).expect("pass list parses");
        let diags = lint_workspace_passes(&root, &passes).expect("workspace walk failed");
        assert!(
            diags.is_empty(),
            "pass `{sel}` reports {} violation(s):\n{}",
            diags.len(),
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

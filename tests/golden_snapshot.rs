//! Golden snapshot: every solver pipeline pinned on one fixed scenario.
//!
//! The hot-path engine work (parallel fan-out, incremental APSP repair,
//! memoized virtual graphs) is only acceptable if it never changes *what* is
//! computed — these tests pin objective, cost, and total completion time for
//! SoCL, the exact ILP, and all three baselines on a single seeded scenario.
//! Any drift — an accidental reordering of folds, a tie broken differently, a
//! cache returning stale data — moves at least one of these numbers and fails
//! loudly here with a diff of expected vs actual.
//!
//! If a change *intentionally* alters results (e.g. a model fix), regenerate
//! with: `cargo test -p socl --test golden_snapshot -- --nocapture` and copy
//! the printed block.

use socl::prelude::*;

/// One scenario small enough for the exact solver, rich enough to exercise
/// routing, partitioning, and migration: 5 nodes, 12 users, fixed seed, over
/// the embedded eshopOnContainers dependency dataset (`ScenarioConfig::build`
/// assembles chains from `EshopDataset`).
fn golden_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::paper(5, 12);
    cfg.requests.chain_len = (2, 3);
    cfg.build(0xC0FFEE)
}

/// (objective, cost, total completion time) per algorithm.
fn measure() -> [(&'static str, f64, f64, f64); 5] {
    let sc = golden_scenario();
    let socl = SoclSolver::new().solve(&sc);
    let exact = solve_exact(&sc, &ExactOptions::default());
    let exact_eval = exact.evaluation.expect("exact solver found a placement");
    let rp = random_provisioning(&sc, 0xBEEF);
    let j = jdr(&sc);
    let g = gc_og(&sc);
    [
        (
            "socl",
            socl.objective(),
            socl.evaluation.cost,
            socl.evaluation.total_latency,
        ),
        (
            "exact",
            exact.objective,
            exact_eval.cost,
            exact_eval.total_latency,
        ),
        ("rp", rp.objective, rp.cost, rp.total_latency),
        ("jdr", j.objective, j.cost, j.total_latency),
        ("gc_og", g.objective, g.cost, g.total_latency),
    ]
}

/// Pinned values (printed by `print_current_values` below).
#[allow(clippy::excessive_precision)]
const GOLDEN: [(&str, f64, f64, f64); 5] = [
    ("socl", 3334.048521166402, 2930.488757407803, 3.737608284925),
    (
        "exact",
        3312.888028129706,
        2930.488757407803,
        3.695287298852,
    ),
    ("rp", 6064.550892285900, 5706.241057231079, 6.422860727341),
    ("jdr", 4830.981193665455, 5860.977514815606, 3.800984872515),
    (
        "gc_og",
        3589.194241027163,
        2930.488757407803,
        4.247899724647,
    ),
];

#[test]
fn all_solvers_match_the_golden_snapshot() {
    let got = measure();
    for ((name, obj, cost, lat), (gname, gobj, gcost, glat)) in got.iter().zip(GOLDEN.iter()) {
        assert_eq!(name, gname);
        for (what, have, want) in [
            ("objective", obj, gobj),
            ("cost", cost, gcost),
            ("completion", lat, glat),
        ] {
            assert!(
                (have - want).abs() <= want.abs() * 1e-9,
                "{name} {what} drifted: expected {want:.12}, got {have:.12}"
            );
        }
    }
}

#[test]
fn snapshot_is_reproducible_within_one_process() {
    // The snapshot only makes sense if repeated runs agree bit-for-bit.
    let a = measure();
    let b = measure();
    for ((name, o1, c1, l1), (_, o2, c2, l2)) in a.iter().zip(b.iter()) {
        assert_eq!(o1.to_bits(), o2.to_bits(), "{name} objective not stable");
        assert_eq!(c1.to_bits(), c2.to_bits(), "{name} cost not stable");
        assert_eq!(l1.to_bits(), l2.to_bits(), "{name} completion not stable");
    }
}

#[test]
#[ignore = "regeneration helper: run with --ignored --nocapture and copy the block"]
fn print_current_values() {
    for (name, obj, cost, lat) in measure() {
        println!("    (\"{name}\", {obj:.12}, {cost:.12}, {lat:.12}),");
    }
}

//! Contention study: the paper's intro argues that uncoordinated routing
//! creates "path conflicts and network contention". This example quantifies
//! that on a sparse placement — selfish (per-request-optimal) routing vs the
//! congestion-priced router — and shows the price of anarchy in hotspot load.
//!
//! ```sh
//! cargo run --release -p socl --example contention_study
//! ```

use socl::model::contention::{link_loads, route_all_contention_aware, ContentionReport};
use socl::model::route_all;
use socl::prelude::*;

fn main() {
    let sc = ScenarioConfig::paper(12, 80).build(17);

    // Each service gets three replicas (its top-demand nodes): the
    // congestion-priced router steers requests *between* replicas, which is
    // where coordination pays — with a single instance per service the
    // endpoints are fixed and no router can help.
    let mut placement = Placement::empty(sc.services(), sc.nodes());
    for m in sc.requested_services() {
        let mut nodes: Vec<NodeId> = sc.net.node_ids().collect();
        nodes.sort_by_key(|&k| std::cmp::Reverse(sc.demand(m, k)));
        for &k in nodes.iter().take(3) {
            placement.set(m, k, true);
        }
    }

    println!("contention study: 12 nodes, 80 users, three replicas per service\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "router", "peak GB", "total GB", "fairness", "latency (ms)"
    );

    let selfish = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
    let loads = link_loads(&sc, &selfish);
    let mean_latency = |asg: &Assignment| -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for (h, req) in sc.requests.iter().enumerate() {
            if let Some(route) = asg.route(h) {
                total +=
                    socl::model::completion_time(req, route, &sc.net, &sc.ap, &sc.catalog).total();
                n += 1;
            }
        }
        total / n.max(1) as f64
    };
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>10.3} {:>12.2}",
        "selfish (optimal)",
        loads.hottest().map_or(0.0, |(_, g)| g),
        loads.total(),
        loads.fairness(),
        mean_latency(&selfish) * 1e3
    );

    for alpha in [0.5, 2.0, 10.0] {
        let aware = route_all_contention_aware(&sc, &placement, alpha);
        let l = link_loads(&sc, &aware);
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.3} {:>12.2}",
            format!("priced (α = {alpha})"),
            l.hottest().map_or(0.0, |(_, g)| g),
            l.total(),
            l.fairness(),
            mean_latency(&aware) * 1e3
        );
    }

    // Hotspot report for the selfish routing at a 5-minute slot.
    let report = ContentionReport::new(&sc, link_loads(&sc, &selfish), 300.0, 0.001);
    println!(
        "\nselfish routing: {} hotspot links above 0.1% slot utilization, peak {:.4}%",
        report.hotspots.len(),
        report.peak_utilization() * 100.0
    );
    println!("\nTakeaway: a moderate congestion price (α ≈ 0.5) flattens the hottest");
    println!("link at a sub-1% latency premium — the coordination the paper's intro");
    println!("motivates. Over-pricing (α = 10) scatters traffic and re-creates");
    println!("hotspots elsewhere: the penalty is a knob, not a free lunch.");
}

//! Quickstart: provision microservices on a 10-node edge network and compare
//! SoCL against the baselines on one scenario.
//!
//! ```sh
//! cargo run --release -p socl --example quickstart
//! ```

use socl::prelude::*;

fn main() {
    // The paper's default setup: 10 edge servers, 40 users, eshopOnContainers
    // service chains, budget 6000, λ = 0.5.
    let scenario = ScenarioConfig::paper(10, 40).build(42);
    println!(
        "scenario: {} nodes, {} users, {} microservices, budget {}",
        scenario.nodes(),
        scenario.users(),
        scenario.services(),
        scenario.budget
    );

    // Run SoCL.
    let result = SoclSolver::new().solve(&scenario);
    println!("\n== SoCL ==");
    println!(
        "objective {:.1}  cost {:.1}  mean latency {:.1} ms  instances {}",
        result.objective(),
        result.evaluation.cost,
        result.evaluation.mean_latency() * 1e3,
        result.placement.total_instances()
    );
    println!(
        "stages: partition {:?}, pre-provision {:?}, combine {:?}",
        result.timings.partition, result.timings.preprovision, result.timings.combine
    );
    println!(
        "combine: {} large-scale removals, {} serial removals, {} rollbacks, {} migrations",
        result.combine_stats.large_removed,
        result.combine_stats.small_removed,
        result.combine_stats.rollbacks,
        result.combine_stats.migrations
    );

    // Baselines.
    println!("\n== baselines ==");
    for res in [
        random_provisioning(&scenario, 7),
        jdr(&scenario),
        gc_og(&scenario),
    ] {
        println!(
            "{:<6} objective {:>9.1}  cost {:>8.1}  latency {:>8.1} ms  ({:?})",
            res.name,
            res.objective,
            res.cost,
            res.total_latency * 1e3,
            res.elapsed
        );
    }

    // Per-request routing detail for the first three users.
    println!("\n== example routes ==");
    for (h, req) in scenario.requests.iter().take(3).enumerate() {
        if let Some(route) = result.evaluation.assignment.route(h) {
            let chain: Vec<String> = req
                .chain
                .iter()
                .zip(route)
                .map(|(m, k)| format!("{}@{k}", scenario.catalog.get(*m).name))
                .collect();
            println!(
                "{} at {}: {} ({:.1} ms)",
                req.id,
                req.location,
                chain.join(" -> "),
                result.evaluation.per_request[h] * 1e3
            );
        }
    }
}

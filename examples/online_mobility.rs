//! Online operation under user mobility and node failures: the time-slotted
//! loop of Section I's "one-shot decision-making" feature, including a
//! failure-injection episode that exercises re-provisioning.
//!
//! ```sh
//! cargo run --release -p socl --example online_mobility
//! ```

use socl::prelude::*;

fn main() {
    // A 12-slot horizon (1 hour at 5-minute slots), 16 nodes, 50 users.
    let cfg = OnlineConfig {
        slots: 12,
        users: 50,
        nodes: 16,
        seed: 3,
        ..OnlineConfig::default()
    };

    println!("online mobility run: 16 nodes, 50 mobile users, 12 slots\n");
    println!(
        "{:>4} {:>10} {:>9} {:>10} {:>10} {:>9}",
        "slot", "objective", "cost", "mean(ms)", "max(ms)", "solve"
    );
    let mut sim = OnlineSimulator::new(cfg.clone());
    let socl = Policy::Socl(SoclConfig::default());
    for r in sim.run(&socl) {
        println!(
            "{:>4} {:>10.1} {:>9.1} {:>10.2} {:>10.2} {:>8.1?}",
            r.slot,
            r.objective,
            r.cost,
            r.mean_latency * 1e3,
            r.max_latency * 1e3,
            r.solve_time
        );
    }

    // Same horizon with node failures injected.
    println!("\nwith node failures (p_fail = 0.5/slot):\n");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>6}",
        "slot", "objective", "mean(ms)", "max(ms)", "down"
    );
    let mut sim = OnlineSimulator::new(OnlineConfig {
        fail_prob: 0.5,
        recover_prob: 0.4,
        ..cfg
    });
    for r in sim.run(&socl) {
        println!(
            "{:>4} {:>10.1} {:>10.2} {:>10.2} {:>6}",
            r.slot,
            r.objective,
            r.mean_latency * 1e3,
            r.max_latency * 1e3,
            r.failed_nodes
        );
        assert_eq!(r.fallbacks, 0, "SoCL kept serving under failures");
    }
    println!("\nall requests served from the edge in every slot, failures included");
}

//! Testbed replay: run RP, JDR and SoCL placements through the
//! discrete-event cluster emulator (the Kubernetes stand-in of Section V.C)
//! and compare measured per-request latency, including queueing contention
//! and serverless cold starts.
//!
//! ```sh
//! cargo run --release -p socl --example testbed_replay
//! ```

use socl::prelude::*;

fn main() {
    // The paper's small testbed: 8 edge nodes (+1 master, implicit here),
    // 50 users.
    let sc = ScenarioConfig::paper(8, 50).build(21);
    println!("testbed: 8 edge nodes, 50 users, 4 epochs of 5 minutes\n");

    let tb_cfg = TestbedConfig {
        epochs: 4,
        ..TestbedConfig::default()
    };

    println!(
        "{:<6} {:>9} {:>9} {:>10} {:>10} {:>7} {:>6}",
        "algo", "cost", "obj", "mean(ms)", "max(ms)", "cold", "p95(ms)"
    );
    for (name, placement) in [
        ("RP", random_provisioning(&sc, 5).placement),
        ("JDR", jdr(&sc).placement),
        ("SoCL", SoclSolver::new().solve(&sc).placement),
    ] {
        let res = run_testbed(&sc, &placement, &tb_cfg);
        let ev = evaluate(&sc, &placement);
        let mut served: Vec<f64> = res.per_request.iter().flatten().copied().collect();
        served.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = served
            .get((served.len() as f64 * 0.95) as usize)
            .copied()
            .unwrap_or(0.0);
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>10.2} {:>10.2} {:>7} {:>6.1}",
            name,
            ev.cost,
            ev.objective,
            res.mean * 1e3,
            res.max * 1e3,
            res.cold_starts,
            p95 * 1e3
        );
    }

    // Epoch-by-epoch trace for SoCL (warm-up effect visible in epoch 0).
    let placement = SoclSolver::new().solve(&sc).placement;
    let res = run_testbed(&sc, &placement, &tb_cfg);
    println!("\nSoCL per-epoch mean latency (cold start amortization):");
    for (e, m) in res.per_epoch_mean.iter().enumerate() {
        println!("  epoch {e}: {:.2} ms", m * 1e3);
    }
}

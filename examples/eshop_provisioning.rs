//! Domain scenario: provisioning the eshopOnContainers storefront across a
//! metro edge, sweeping the cost/latency trade-off λ and the budget — the
//! decision a service operator actually faces.
//!
//! ```sh
//! cargo run --release -p socl --example eshop_provisioning
//! ```

use socl::prelude::*;

fn main() {
    println!("eshopOnContainers provisioning study (20 nodes, 120 users)\n");

    // λ sweep: how the trade-off weight steers deployments.
    println!("-- lambda sweep (budget 6000) --");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "λ", "objective", "cost", "latency(ms)", "instances"
    );
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut cfg = ScenarioConfig::paper(20, 120);
        cfg.lambda = lambda;
        let sc = cfg.build(11);
        let res = SoclSolver::new().solve(&sc);
        println!(
            "{:>6.1} {:>10.1} {:>10.1} {:>12.1} {:>10}",
            lambda,
            res.objective(),
            res.evaluation.cost,
            res.evaluation.total_latency * 1e3,
            res.placement.total_instances()
        );
    }

    // Budget sweep: the paper's 5000–8000 range.
    println!("\n-- budget sweep (λ = 0.5) --");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "budget", "objective", "cost", "latency(ms)", "instances"
    );
    for budget in [5000.0, 6000.0, 7000.0, 8000.0] {
        let mut cfg = ScenarioConfig::paper(20, 120);
        cfg.budget = budget;
        let sc = cfg.build(11);
        let res = SoclSolver::new().solve(&sc);
        println!(
            "{:>8.0} {:>10.1} {:>10.1} {:>12.1} {:>10}",
            budget,
            res.objective(),
            res.evaluation.cost,
            res.evaluation.total_latency * 1e3,
            res.placement.total_instances()
        );
    }

    // Where did the storefront's services land?
    let sc = ScenarioConfig::paper(20, 120).build(11);
    let res = SoclSolver::new().solve(&sc);
    println!("\n-- final deployment map (budget 6000, λ = 0.5) --");
    for m in sc.catalog.ids() {
        let hosts = res.placement.hosts_of(m);
        if hosts.is_empty() {
            continue;
        }
        let hosts: Vec<String> = hosts.iter().map(|k| k.to_string()).collect();
        println!(
            "{:<22} x{:<2} on {}",
            sc.catalog.get(m).name,
            hosts.len(),
            hosts.join(", ")
        );
    }
}

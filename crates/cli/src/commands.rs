//! Command implementations.

use crate::args::Args;
use socl::net::time::Stopwatch;
use socl::prelude::*;

/// Top-level usage text.
pub const USAGE: &str = "\
socl — SoCL microservice provisioning (CLUSTER 2025 reproduction)

USAGE:
  socl solve    [--nodes N] [--users U] [--seed S] [--budget B] [--lambda L]
                [--algo socl|rp|jdr|gcog|opt] [--omega W] [--xi X] [--theta T]
  socl compare  [--nodes N] [--users U] [--seed S] [--budget B]
  socl simulate [--nodes N] [--users U] [--slots K] [--seed S]
                [--policy socl|rp|jdr] [--fail-prob P]
                [--mid-slot-fail-prob P] [--recover-prob P] [--repair]
                [autoscaler flags]
  socl testbed  [--nodes N] [--users U] [--seed S] [--epochs E]
                [--algo socl|rp|jdr] [--fault-intensity F]
                [--schedule targeted|noncritical|random] [--retries R]
                [--timeout SECS] [--hedge SECS] [--no-degrade]
                [--cold-start SECS] [--keep-warm SECS] [autoscaler flags]
  socl autoscale [--nodes N] [--users U] [--seed S] [--epochs E]
                [--surge REQS] [--cold-start SECS] [autoscaler flags]
  socl trace    [--seed S]
  socl resilience [--nodes N] [--seed S] [--top K]
                [--schedule targeted|noncritical|random]
                [--cold-start SECS] [--keep-warm SECS]
  socl chaos    [--nodes N] [--users U] [--slots K] [--policy socl|rp|jdr]
                [--seeds S1,S2,..] [--kill-slots K1,K2,..]
                [--checkpoint-every N] [--guided N] [--torn MODE,..]
                [--no-schedules] [--fail-prob P] [--mid-slot-fail-prob P]
                [--recover-prob P] [--repair] [autoscaler flags]
  socl serve    [--nodes N] [--regions R] [--shards S] [--users U]
                [--ticks T] [--rate R] [--shape flash|diurnal] [--seed S]
                [--policy socl|rp|jdr] [--kill-shard K] [--kill-at T]
                [--torn clean|garbage|partial] [--csv]
  socl export   [--nodes N] [--users U] [--seed S] [--solve]
  socl help

Autoscaler flags (testbed, simulate, autoscale):
  --autoscale MODE           static|reactive|predictive — run the serverless
                             control plane; replica pools track concurrency
  --target-concurrency C     in-flight requests one replica should absorb
  --scale-interval SECS      control-loop period
  --min-replicas R           per-service floor (0 allows scale-to-zero)
  --max-replicas-per-node R  per-cell ceiling (storage may bind first)
  --admission                enable priority-classed load shedding

Global flags (any command):
  --threads N   worker threads for the parallel hot paths (0 = auto, 1 = serial;
                output is identical for every thread count)

Defaults follow the paper's setup: 10 nodes, 40 users, budget 6000, λ=0.5.
`autoscale` replays a flash-crowd workload under every scaling mode and
prints a latency/replica-seconds comparison. `export` prints a scenario
snapshot as JSON to stdout (add --solve to append the SoCL placement
snapshot). `chaos` runs the coverage-guided crash-recovery soak: every
run is killed at a slot boundary, restored from its last checkpoint, the
decision-log suffix is replayed (torn tails truncated, never trusted),
and the recovered timeline must match the uninterrupted run bit for bit
and pass the invariant auditor; any violation fails the command. Torn
modes for --torn: clean, garbage, partial (default all three).
`serve` runs the sharded control-plane service: a persistent event loop
that partitions the base-station graph into regions, streams a synthetic
user population through bounded per-region queues into the admission
controller, routes admitted chains against an epoch-refreshed placement,
and journals every region to a checkpoint + WAL substrate. Optional
--kill-shard K --kill-at T kills shard K at tick T and restores it from
its checkpoint, replaying the WAL; the stitched state must be
bit-identical to never having crashed.";

fn scenario_from(args: &Args) -> Result<Scenario, String> {
    let nodes: usize = args.get("nodes", 10)?;
    let users: usize = args.get("users", 40)?;
    let seed: u64 = args.get("seed", 42)?;
    let budget: f64 = args.get("budget", 6000.0)?;
    let lambda: f64 = args.get("lambda", 0.5)?;
    if nodes == 0 || users == 0 {
        return Err("--nodes and --users must be positive".into());
    }
    if !(0.0..=1.0).contains(&lambda) {
        return Err("--lambda must be in [0, 1]".into());
    }
    let mut cfg = ScenarioConfig::paper(nodes, users);
    cfg.budget = budget;
    cfg.lambda = lambda;
    Ok(cfg.build(seed))
}

fn socl_config_from(args: &Args) -> Result<SoclConfig, String> {
    let cfg = SoclConfig {
        omega: args.get("omega", 0.2)?,
        xi: args.get("xi", 2.0)?,
        theta: args.get("theta", 1.0)?,
        ..SoclConfig::default()
    };
    if cfg.omega <= 0.0 || cfg.omega > 1.0 {
        return Err("--omega must be in (0, 1]".into());
    }
    Ok(cfg)
}

/// Build the autoscaler configuration from CLI flags; `None` when
/// `--autoscale` was not given. Defaults mirror [`AutoscaleConfig::default`].
fn autoscale_from(args: &Args) -> Result<Option<AutoscaleConfig>, String> {
    let tag = args.get_str("autoscale", "");
    if tag.is_empty() {
        return Ok(None);
    }
    if tag == "true" {
        return Err("--autoscale needs a mode (static|reactive|predictive)".into());
    }
    let mode = ScalingMode::parse(&tag)?;
    let d = AutoscaleConfig::default();
    let cfg = AutoscaleConfig {
        mode,
        target_concurrency: args.get("target-concurrency", d.target_concurrency)?,
        scale_interval: args.get("scale-interval", d.scale_interval)?,
        min_replicas: args.get("min-replicas", d.min_replicas)?,
        max_replicas_per_node: args.get("max-replicas-per-node", d.max_replicas_per_node)?,
        admission: AdmissionPolicy {
            enabled: args.flag("admission"),
            ..d.admission
        },
        ..d
    };
    if cfg.target_concurrency <= 0.0 {
        return Err("--target-concurrency must be positive".into());
    }
    if cfg.scale_interval <= 0.0 {
        return Err("--scale-interval must be positive".into());
    }
    if cfg.max_replicas_per_node == 0 {
        return Err("--max-replicas-per-node must be at least 1".into());
    }
    Ok(Some(cfg))
}

/// Parse the `--policy` flag shared by `simulate` and `chaos`.
fn policy_from(args: &Args) -> Result<Policy, String> {
    match args.get_str("policy", "socl").as_str() {
        "socl" => Ok(Policy::Socl(SoclConfig::default())),
        "rp" => Ok(Policy::Rp {
            seed: args.get("seed", 42)?,
        }),
        "jdr" => Ok(Policy::Jdr),
        other => Err(format!("unknown --policy `{other}`")),
    }
}

/// Parse a comma-separated list flag; `None` when the flag is absent.
fn csv_list<T: std::str::FromStr>(args: &Args, key: &str) -> Result<Option<Vec<T>>, String> {
    if !argish(args, key) {
        return Ok(None);
    }
    let raw = args.get_str(key, "");
    let mut out = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        out.push(
            part.trim()
                .parse()
                .map_err(|_| format!("invalid value `{part}` in --{key}"))?,
        );
    }
    if out.is_empty() {
        return Err(format!("--{key} needs a comma-separated list"));
    }
    Ok(Some(out))
}

fn print_summary(name: &str, objective: f64, cost: f64, latency: f64, secs: f64) {
    println!(
        "{name:<6} objective {objective:>10.1}  cost {cost:>8.1}  latency {:>9.1} ms  time {:>8.3}s",
        latency * 1e3,
        secs
    );
}

/// `socl solve`.
pub fn solve(args: &Args) -> Result<(), String> {
    let sc = scenario_from(args)?;
    let algo = args.get_str("algo", "socl");
    println!(
        "scenario: {} nodes, {} users, {} services, budget {}, λ {}",
        sc.nodes(),
        sc.users(),
        sc.services(),
        sc.budget,
        sc.lambda
    );
    let t = Stopwatch::start();
    match algo.as_str() {
        "socl" => {
            let cfg = socl_config_from(args)?;
            let res = SoclSolver::with_config(cfg).solve(&sc);
            let secs = t.elapsed().as_secs_f64();
            print_summary(
                "SoCL",
                res.objective(),
                res.evaluation.cost,
                res.evaluation.total_latency,
                secs,
            );
            println!(
                "stages: partition {:?} | pre-provision {:?} | combine {:?}",
                res.timings.partition, res.timings.preprovision, res.timings.combine
            );
            println!(
                "combine: {} parallel + {} serial removals, {} rollbacks, {} migrations",
                res.combine_stats.large_removed,
                res.combine_stats.small_removed,
                res.combine_stats.rollbacks,
                res.combine_stats.migrations
            );
            if args.flag("verbose") {
                println!("deployment map:");
                for m in sc.catalog.ids() {
                    let hosts = res.placement.hosts_of(m);
                    if hosts.is_empty() {
                        continue;
                    }
                    let hosts: Vec<String> = hosts.iter().map(|k| k.to_string()).collect();
                    println!(
                        "  {:<22} x{:<2} on {}",
                        sc.catalog.get(m).name,
                        hosts.len(),
                        hosts.join(", ")
                    );
                }
            }
        }
        "rp" => {
            let res = random_provisioning(&sc, args.get("seed", 42)?);
            print_summary(
                "RP",
                res.objective,
                res.cost,
                res.total_latency,
                t.elapsed().as_secs_f64(),
            );
        }
        "jdr" => {
            let res = jdr(&sc);
            print_summary(
                "JDR",
                res.objective,
                res.cost,
                res.total_latency,
                t.elapsed().as_secs_f64(),
            );
        }
        "gcog" => {
            let res = gc_og(&sc);
            print_summary(
                "GC-OG",
                res.objective,
                res.cost,
                res.total_latency,
                t.elapsed().as_secs_f64(),
            );
        }
        "opt" => {
            let cap: u64 = args.get("time-limit", 60)?;
            let res = solve_exact(
                &sc,
                &ExactOptions {
                    time_limit: Some(std::time::Duration::from_secs(cap)),
                    ..ExactOptions::default()
                },
            );
            let secs = t.elapsed().as_secs_f64();
            match &res.evaluation {
                Some(ev) => print_summary("OPT", res.objective, ev.cost, ev.total_latency, secs),
                None => println!("OPT found no feasible solution within the limits"),
            }
            println!(
                "nodes explored {}, bound {:.1}, {}",
                res.nodes,
                res.bound,
                if res.proved_optimal {
                    "proved optimal".to_string()
                } else {
                    format!("gap {:.2}%", res.gap() * 100.0)
                }
            );
        }
        other => return Err(format!("unknown --algo `{other}`")),
    }
    Ok(())
}

/// `socl compare`.
pub fn compare(args: &Args) -> Result<(), String> {
    let sc = scenario_from(args)?;
    println!(
        "scenario: {} nodes, {} users, budget {}, λ {}\n",
        sc.nodes(),
        sc.users(),
        sc.budget,
        sc.lambda
    );
    let t = Stopwatch::start();
    let socl = SoclSolver::new().solve(&sc);
    print_summary(
        "SoCL",
        socl.objective(),
        socl.evaluation.cost,
        socl.evaluation.total_latency,
        t.elapsed().as_secs_f64(),
    );
    for res in [
        random_provisioning(&sc, args.get("seed", 42)?),
        jdr(&sc),
        gc_og(&sc),
    ] {
        print_summary(
            res.name,
            res.objective,
            res.cost,
            res.total_latency,
            res.elapsed.as_secs_f64(),
        );
    }
    Ok(())
}

/// `socl simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    let policy = policy_from(args)?;
    let cfg = OnlineConfig {
        slots: args.get("slots", 12)?,
        users: args.get("users", 50)?,
        nodes: args.get("nodes", 16)?,
        seed: args.get("seed", 42)?,
        fail_prob: args.get("fail-prob", 0.0)?,
        mid_slot_fail_prob: args.get("mid-slot-fail-prob", 0.0)?,
        recover_prob: args.get("recover-prob", 0.5)?,
        repair: args.flag("repair"),
        autoscale: autoscale_from(args)?,
        ..OnlineConfig::default()
    };
    println!(
        "online simulation: {} nodes, {} users, {} slots, policy {}{}{}",
        cfg.nodes,
        cfg.users,
        cfg.slots,
        policy.name(),
        if cfg.repair { " (repair on)" } else { "" },
        cfg.autoscale
            .as_ref()
            .map(|a| format!(" (autoscale {})", a.mode.name()))
            .unwrap_or_default()
    );
    println!(
        "{:>4} {:>10} {:>9} {:>10} {:>10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "slot",
        "objective",
        "cost",
        "mean(ms)",
        "max(ms)",
        "down",
        "fb",
        "crash",
        "churn",
        "repl",
        "shed"
    );
    let mut sim = OnlineSimulator::new(cfg);
    for r in sim.run(&policy) {
        println!(
            "{:>4} {:>10.1} {:>9.1} {:>10.2} {:>10.2} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            r.slot,
            r.objective,
            r.cost,
            r.mean_latency * 1e3,
            r.max_latency * 1e3,
            r.failed_nodes,
            r.fallbacks,
            r.mid_slot_failures,
            r.repair_churn,
            r.replicas,
            r.shed_requests
        );
    }
    Ok(())
}

/// `socl testbed`.
pub fn testbed(args: &Args) -> Result<(), String> {
    let sc = {
        let mut a = scenario_from(args)?;
        // Default to the paper's 8-node testbed unless --nodes was given.
        if !argish(args, "nodes") {
            a = {
                let mut cfg = ScenarioConfig::paper(8, args.get("users", 50)?);
                cfg.budget = args.get("budget", 6000.0)?;
                cfg.build(args.get("seed", 42)?)
            };
        }
        a
    };
    let placement = match args.get_str("algo", "socl").as_str() {
        "socl" => SoclSolver::new().solve(&sc).placement,
        "rp" => random_provisioning(&sc, args.get("seed", 42)?).placement,
        "jdr" => jdr(&sc).placement,
        other => return Err(format!("unknown --algo `{other}`")),
    };
    let epochs: usize = args.get("epochs", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let intensity: f64 = args.get("fault-intensity", 0.0)?;
    let base = TestbedConfig::default();
    // Validate --schedule even when faults are off, so a typo never
    // silently runs a fault-free replay.
    let targeting = parse_targeting(&args.get_str("schedule", "random"))?;
    let faults = if intensity > 0.0 {
        let horizon = epochs as f64 * base.epoch_secs;
        FaultPlan::at_intensity(horizon, intensity)
            .with_targeting(targeting)
            .generate(&sc.net, &placement, sc.users(), seed)
    } else {
        FaultSchedule::empty()
    };
    let hedge: f64 = args.get("hedge", 0.0)?;
    let retry = RetryPolicy {
        max_retries: args.get("retries", 0)?,
        timeout: args.get("timeout", f64::INFINITY)?,
        hedge_after: (hedge > 0.0).then_some(hedge),
        ..RetryPolicy::default()
    };
    let cold_start: f64 = args.get("cold-start", base.cold_start)?;
    let keep_warm: f64 = args.get("keep-warm", base.keep_warm)?;
    if cold_start < 0.0 || keep_warm < 0.0 {
        return Err("--cold-start and --keep-warm must be non-negative".into());
    }
    let cfg = TestbedConfig {
        epochs,
        seed,
        faults,
        retry,
        degrade_to_cloud: !args.flag("no-degrade"),
        cold_start,
        keep_warm,
        autoscale: autoscale_from(args)?,
        ..base
    };
    let res = run_testbed(&sc, &placement, &cfg);
    println!(
        "testbed: {} nodes, {} users, {} epochs",
        sc.nodes(),
        sc.users(),
        cfg.epochs
    );
    println!(
        "mean {:.2} ms, max {:.2} ms, cold starts {}, fallbacks {}",
        res.mean * 1e3,
        res.max * 1e3,
        res.cold_starts,
        res.fallbacks
    );
    if let Some(ac) = &cfg.autoscale {
        println!(
            "control plane ({}): {} scale-ups, {} scale-downs, {} shed, {:.0} replica-seconds, p99 {:.2} ms",
            ac.mode.name(),
            res.scale_up_events,
            res.scale_down_events,
            res.shed_requests,
            res.replica_seconds,
            res.latency_percentile(0.99) * 1e3
        );
    }
    if !cfg.faults.is_empty() || !cfg.retry.is_disabled() {
        let st = cfg.faults.stats();
        println!(
            "faults: {} crashes, {} link degrades, {} instance kills, {} losses (mttr {:.1} s)",
            st.node_crashes, st.link_degrades, st.instance_kills, st.request_losses, res.mttr
        );
        println!(
            "availability {:.4} | retried {} hedged {} timeouts {} | degraded {} dropped {} | effective mean {:.2} ms",
            res.availability,
            res.retried,
            res.hedged,
            res.timeouts,
            res.degraded,
            res.dropped,
            res.effective_mean(sc.cloud_penalty) * 1e3
        );
    }
    for (e, m) in res.per_epoch_mean.iter().enumerate() {
        println!("  epoch {e}: mean {:.2} ms", m * 1e3);
    }
    Ok(())
}

/// `socl autoscale` — replay a flash-crowd workload on the testbed under
/// every scaling mode and compare latency against replica-seconds billed.
pub fn autoscale(args: &Args) -> Result<(), String> {
    let sc = scenario_from(args)?;
    let placement = SoclSolver::new().solve(&sc).placement;
    let epochs: usize = args.get("epochs", 4)?;
    if epochs == 0 {
        return Err("--epochs must be positive".into());
    }
    let seed: u64 = args.get("seed", 42)?;
    let base = TestbedConfig::default();
    let cold_start: f64 = args.get("cold-start", base.cold_start)?;
    if cold_start < 0.0 {
        return Err("--cold-start must be non-negative".into());
    }

    // Flash crowd: quiet epochs, then one epoch with `surge` requests, then
    // quiet again. The surge lands two-thirds into the run.
    let quiet = sc.users();
    let surge: usize = args.get("surge", quiet * 8)?;
    let peak = (epochs * 2 / 3).min(epochs - 1);
    let arrivals: Vec<usize> = (0..epochs)
        .map(|e| if e == peak { surge } else { quiet })
        .collect();

    // The scaled modes share every knob except the mode itself; static and
    // max-scale are the two extremes they are judged against. Without
    // explicit autoscaler flags, use a control loop tight enough that a few
    // 30-second epochs hold several scaling decisions — the library defaults
    // are tuned for long-running deployments and would sit still here.
    let knobs = autoscale_from(args)?.unwrap_or_else(|| AutoscaleConfig {
        target_concurrency: 1.0,
        stable_window: 10.0,
        panic_window: 4.0,
        scale_interval: 1.0,
        down_cooldown: 10.0,
        min_replicas: 1,
        keep_alive: KeepAlivePolicy::Fixed(15.0),
        ..AutoscaleConfig::default()
    });
    let modes: Vec<(&str, AutoscaleConfig)> = vec![
        (
            "static",
            AutoscaleConfig {
                mode: ScalingMode::Static,
                min_replicas: 1,
                ..knobs.clone()
            },
        ),
        (
            "reactive",
            AutoscaleConfig {
                mode: ScalingMode::Reactive,
                ..knobs.clone()
            },
        ),
        (
            "predictive",
            AutoscaleConfig {
                mode: ScalingMode::Predictive,
                ..knobs.clone()
            },
        ),
        (
            "max-scale",
            AutoscaleConfig {
                max_replicas_per_node: knobs.max_replicas_per_node,
                ..AutoscaleConfig::max_scale()
            },
        ),
    ];

    println!(
        "autoscale comparison: {} nodes, {} users, {} epochs, surge {} requests at epoch {}",
        sc.nodes(),
        sc.users(),
        epochs,
        surge,
        peak
    );
    println!(
        "{:>10} {:>10} {:>10} {:>6} {:>6} {:>6} {:>6} {:>12}",
        "mode", "mean(ms)", "p99(ms)", "cold", "ups", "downs", "shed", "repl-seconds"
    );
    for (name, ac) in modes {
        let cfg = TestbedConfig {
            epochs,
            seed,
            cold_start,
            epoch_arrivals: Some(arrivals.clone()),
            autoscale: Some(ac),
            ..base.clone()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>6} {:>6} {:>6} {:>6} {:>12.0}",
            name,
            res.mean * 1e3,
            res.latency_percentile(0.99) * 1e3,
            res.cold_starts,
            res.scale_up_events,
            res.scale_down_events,
            res.shed_requests,
            res.replica_seconds
        );
    }
    Ok(())
}

fn parse_targeting(s: &str) -> Result<Targeting, String> {
    match s {
        "random" => Ok(Targeting::Random),
        "targeted" | "critical" => Ok(Targeting::Critical),
        "noncritical" => Ok(Targeting::NonCritical),
        other => Err(format!(
            "unknown --schedule `{other}` (expected targeted|noncritical|random)"
        )),
    }
}

fn argish(args: &Args, key: &str) -> bool {
    args.get_str(key, "\u{0}") != "\u{0}"
}

/// `socl trace`.
pub fn trace(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get("seed", 42)?;
    let g = TraceGenerator::new(TraceConfig::default(), seed);
    let all = g.sample_all(seed ^ 1);
    let m = similarity_matrix(&all, |a, b| cosine_similarity(&a.usage, &b.usage));
    let n = all.len();
    println!("service similarity (cosine, {n}x{n}): ");
    let off: Vec<f64> = (0..n * n)
        .filter(|i| i / n != i % n)
        .map(|i| m[i])
        .collect();
    let mean = off.iter().sum::<f64>() / off.len() as f64;
    let max = off.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("  off-diagonal mean {mean:.3}, max {max:.3}");

    let w = TemporalWorkload::generate(&TemporalConfig::default(), seed);
    println!("temporal workload (120 x 5-minute bins):");
    println!(
        "  mean {:.1}, peak-to-mean {:.2}, cv {:.2}, bursts {}",
        w.mean(),
        w.peak_to_mean(),
        socl::trace::coefficient_of_variation(&w.volumes),
        socl::trace::burst_count(&w.volumes, 1.5)
    );
    Ok(())
}

/// `socl resilience`.
pub fn resilience(args: &Args) -> Result<(), String> {
    use socl::net::{link_criticality, node_criticality};
    let nodes: usize = args.get("nodes", 10)?;
    let seed: u64 = args.get("seed", 42)?;
    let top: usize = args.get("top", 5)?;
    let net = TopologyConfig::paper(nodes).build(seed);
    println!(
        "resilience analysis: {} nodes, {} links\n",
        net.node_count(),
        net.link_count()
    );
    println!("most critical links:");
    for i in link_criticality(&net).into_iter().take(top) {
        println!(
            "  {:<14} partitions={} mean stretch {:.3} max {:.3}",
            i.component, i.partitions, i.mean_stretch, i.max_stretch
        );
    }
    println!("\nmost critical nodes:");
    for i in node_criticality(&net).into_iter().take(top) {
        println!(
            "  {:<14} partitions={} mean stretch {:.3} max {:.3}",
            i.component, i.partitions, i.mean_stretch, i.max_stretch
        );
    }

    // With --schedule, turn the criticality ranking into a fault schedule
    // and replay it on the testbed with the dispatcher's retries off/on.
    let sched = args.get_str("schedule", "");
    if !sched.is_empty() && sched != "\u{0}" {
        let targeting = parse_targeting(&sched)?;
        let users: usize = args.get("users", 40)?;
        let sc = ScenarioConfig::paper(nodes, users).build(seed);
        let placement = SoclSolver::new().solve(&sc).placement;
        let epochs = 4usize;
        let mut base = TestbedConfig::default();
        base.cold_start = args.get("cold-start", base.cold_start)?;
        base.keep_warm = args.get("keep-warm", base.keep_warm)?;
        if base.cold_start < 0.0 || base.keep_warm < 0.0 {
            return Err("--cold-start and --keep-warm must be non-negative".into());
        }
        let faults = FaultPlan::moderate(epochs as f64 * base.epoch_secs)
            .with_targeting(targeting)
            .generate(&sc.net, &placement, users, seed);
        let st = faults.stats();
        println!(
            "\n{sched} fault schedule: {} crashes, {} link degrades, {} instance kills, {} losses",
            st.node_crashes, st.link_degrades, st.instance_kills, st.request_losses
        );
        for (label, retry) in [
            ("retries off", RetryPolicy::default()),
            ("retries on ", RetryPolicy::resilient()),
        ] {
            let res = run_testbed(
                &sc,
                &placement,
                &TestbedConfig {
                    epochs,
                    faults: faults.clone(),
                    retry,
                    ..base.clone()
                },
            );
            println!(
                "  {label}: availability {:.4}, effective mean {:.1} ms, degraded {}, retried {}",
                res.availability,
                res.effective_mean(sc.cloud_penalty) * 1e3,
                res.degraded,
                res.retried
            );
        }
    }
    Ok(())
}

/// `socl export`.
pub fn export(args: &Args) -> Result<(), String> {
    use socl::model::{PlacementSnapshot, ScenarioSnapshot};
    let sc = scenario_from(args)?;
    println!("{}", ScenarioSnapshot::capture(&sc).to_json());
    if args.flag("solve") {
        let res = SoclSolver::new().solve(&sc);
        println!("{}", PlacementSnapshot::capture(&res.placement).to_json());
    }
    Ok(())
}

fn torn_name(ord: u8) -> &'static str {
    match ord {
        1 => "garbage",
        2 => "partial",
        _ => "clean",
    }
}

fn torn_list(args: &Args) -> Result<Option<Vec<TornTail>>, String> {
    let Some(names) = csv_list::<String>(args, "torn")? else {
        return Ok(None);
    };
    names
        .iter()
        .map(|n| match n.as_str() {
            "clean" => Ok(TornTail::Clean),
            "garbage" => Ok(TornTail::Garbage),
            "partial" => Ok(TornTail::PartialRecord),
            other => Err(format!(
                "unknown --torn mode `{other}` (expected clean|garbage|partial)"
            )),
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// `socl chaos` — the coverage-guided crash-recovery soak.
pub fn chaos(args: &Args) -> Result<(), String> {
    let policy = policy_from(args)?;
    let base = OnlineConfig {
        slots: args.get("slots", 8)?,
        users: args.get("users", 18)?,
        nodes: args.get("nodes", 8)?,
        fail_prob: args.get("fail-prob", 0.3)?,
        mid_slot_fail_prob: args.get("mid-slot-fail-prob", 0.0)?,
        recover_prob: args.get("recover-prob", 0.4)?,
        repair: args.flag("repair"),
        autoscale: autoscale_from(args)?,
        ..OnlineConfig::default()
    };
    if base.slots == 0 || base.users == 0 || base.nodes == 0 {
        return Err("--slots, --users, and --nodes must be positive".into());
    }
    let mut plan = SoakPlan::ci(base, policy);
    if let Some(seeds) = csv_list(args, "seeds")? {
        plan.seeds = seeds;
    }
    if let Some(kills) = csv_list(args, "kill-slots")? {
        plan.kill_slots = kills;
    }
    if let Some(torn) = torn_list(args)? {
        plan.torn_tails = torn;
    }
    plan.checkpoint_every = args.get("checkpoint-every", plan.checkpoint_every)?;
    plan.guided_rounds = args.get("guided", plan.guided_rounds)?;
    if args.flag("no-schedules") {
        plan.with_fault_schedules = false;
    }
    if plan.checkpoint_every == 0 {
        return Err("--checkpoint-every must be positive".into());
    }
    if let Some(&k) = plan.kill_slots.iter().find(|&&k| k > plan.base.slots) {
        return Err(format!(
            "--kill-slots entry {k} exceeds --slots {}",
            plan.base.slots
        ));
    }

    println!(
        "chaos soak: {} nodes, {} users, {} slots, policy {}, checkpoint every {} slot(s)",
        plan.base.nodes,
        plan.base.users,
        plan.base.slots,
        plan.policy.name(),
        plan.checkpoint_every
    );
    println!(
        "matrix: seeds {:?} × kill-slots {:?} × schedules {} × torn {:?}, {} guided round(s)",
        plan.seeds,
        plan.kill_slots,
        if plan.with_fault_schedules {
            "off+moderate"
        } else {
            "off"
        },
        plan.torn_tails
            .iter()
            .map(|t| torn_name(match t {
                TornTail::Clean => 0,
                TornTail::Garbage => 1,
                TornTail::PartialRecord => 2,
            }))
            .collect::<Vec<_>>(),
        plan.guided_rounds
    );

    let summary = run_chaos_soak(&plan).map_err(|e| e.to_string())?;

    println!(
        "{:>6} {:>4} {:>5} {:>8} {:>8} {:>6} {:>8} {:>8} {:>4} {:>4}  features",
        "seed", "kill", "fault", "torn", "restored", "replay", "ckpt(B)", "log(B)", "mism", "viol"
    );
    for r in &summary.rows {
        println!(
            "{:>6} {:>4} {:>5} {:>8} {:>8} {:>6} {:>8} {:>8} {:>4} {:>4}  {}{}",
            r.case.seed,
            r.case.kill_slot,
            if r.case.faulted { "yes" } else { "no" },
            torn_name(r.case.torn),
            r.restored_from_slot,
            r.replayed_slots,
            r.checkpoint_bytes,
            r.log_bytes,
            r.metric_mismatches + r.replay_log_mismatches,
            r.violations.len(),
            if r.guided { "[guided] " } else { "" },
            r.features.join(",")
        );
        for v in &r.violations {
            println!("       violation: {v}");
        }
    }
    println!(
        "\n{} run(s); coverage ({} features): {}",
        summary.rows.len(),
        summary.coverage.len(),
        summary.coverage.join(", ")
    );
    println!(
        "checkpoint bytes: max {}, mean {:.0}; log bytes at kill: mean {:.0}",
        summary.max_checkpoint_bytes, summary.mean_checkpoint_bytes, summary.mean_log_bytes
    );
    if !summary.is_clean() {
        return Err(format!(
            "chaos soak failed: {} invariant violation(s), {} run(s) diverged from golden",
            summary.violations, summary.mismatch_runs
        ));
    }
    println!("all runs recovered bit-identically and passed the invariant audit");
    Ok(())
}

/// `socl serve` — run the sharded control-plane service.
pub fn serve(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get("seed", 42)?;
    let ticks: u32 = args.get("ticks", 60)?;
    let kill_shard: i64 = args.get("kill-shard", -1)?;
    let kill_at: u32 = args.get("kill-at", 0)?;
    let csv = args.flag("csv");
    let shape = match args.get_str("shape", "flash").as_str() {
        "flash" => TemporalConfig::flash_crowd(),
        "diurnal" => TemporalConfig::diurnal(),
        other => return Err(format!("unknown --shape `{other}`")),
    };
    let torn = match args.get_str("torn", "partial").as_str() {
        "clean" => TornTail::Clean,
        "garbage" => TornTail::Garbage,
        "partial" => TornTail::PartialRecord,
        other => return Err(format!("unknown --torn `{other}`")),
    };
    let cfg = ServeConfig {
        nodes: args.get("nodes", 16)?,
        regions: args.get("regions", 4)?,
        shards: args.get("shards", 4)?,
        policy: policy_from(args)?,
        feed: FeedConfig {
            users: args.get("users", 100_000)?,
            shape,
            arrivals_per_tick: args.get("rate", 500.0)?,
            seed: seed ^ 0x5EED,
            ..FeedConfig::default()
        },
        ..ServeConfig::small(seed)
    };
    if cfg.nodes == 0 || cfg.regions == 0 || cfg.shards == 0 || ticks == 0 {
        return Err("--nodes, --regions, --shards, and --ticks must be positive".into());
    }
    if kill_shard >= 0 && (kill_at == 0 || kill_at > ticks) {
        return Err("--kill-at must be in 1..=--ticks when --kill-shard is given".into());
    }
    let shards = cfg.shards;
    let mut serve = SoclServe::new(cfg);
    println!(
        "serve: {} nodes in {} regions on {} shards, {} users, policy {}, {} ticks",
        serve.config().nodes,
        serve.region_map().regions(),
        shards,
        serve.feed().config().users,
        serve.config().policy.name(),
        ticks
    );
    if csv {
        println!("tick,arrivals,decided,shed_queue,shed_admission,queued");
    }
    let watch = Stopwatch::start();
    for tick in 1..=ticks {
        let s = serve.step();
        if csv {
            println!(
                "{},{},{},{},{},{}",
                s.tick, s.arrivals, s.decided, s.shed_queue, s.shed_admission, s.queued
            );
        }
        if kill_shard >= 0 && tick == kill_at {
            let report = serve.kill_and_restore(kill_shard as usize, torn)?;
            println!(
                "killed shard {kill_shard} at tick {tick}: regions {:?} restored from \
                 checkpoint {} ({} tick(s) replayed, {} torn byte(s), {} oracle mismatch(es))",
                report.killed_regions,
                report.checkpoint_tick,
                report.replayed_ticks,
                report.torn_bytes,
                report.oracle_mismatches
            );
            if report.oracle_mismatches > 0 {
                return Err("replay diverged from the WAL oracle".into());
            }
        }
    }
    let secs = watch.elapsed_secs();
    let t = serve.totals();
    println!(
        "{} arrivals, {} decided ({} cloud fallback), {} shed (queue {} + admission {}), \
         {} still queued; peak queue depth {}",
        t.arrivals,
        t.decided,
        t.cloud_fallbacks,
        t.shed_queue + t.shed_admission,
        t.shed_queue,
        t.shed_admission,
        t.queued,
        t.queue_peak
    );
    println!(
        "{:.0} decisions/s over {ticks} ticks; WAL {} B, largest checkpoint {} B",
        t.decided as f64 / secs.max(1e-9),
        serve.wal_bytes(),
        serve.max_checkpoint_bytes()
    );
    let violations = audit_serve(&serve);
    if !violations.is_empty() {
        for v in &violations {
            println!("violation: {v}");
        }
        return Err(format!("{} invariant violation(s)", violations.len()));
    }
    println!("invariant audit clean");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn compare_runs_on_small_scenario() {
        compare(&args(&["--nodes", "5", "--users", "8", "--seed", "2"])).unwrap();
    }

    #[test]
    fn solve_rejects_unknown_algo() {
        assert!(solve(&args(&["--algo", "quantum"])).is_err());
    }

    #[test]
    fn solve_rejects_bad_lambda() {
        assert!(solve(&args(&["--lambda", "1.5"])).is_err());
    }

    #[test]
    fn simulate_runs_small() {
        simulate(&args(&[
            "--nodes", "6", "--users", "10", "--slots", "2", "--seed", "3",
        ]))
        .unwrap();
    }

    #[test]
    fn testbed_runs_small() {
        testbed(&args(&["--users", "10", "--epochs", "1", "--seed", "4"])).unwrap();
    }

    #[test]
    fn serve_runs_tiny_with_kill_and_restore() {
        serve(&args(&[
            "--nodes",
            "8",
            "--regions",
            "2",
            "--shards",
            "2",
            "--users",
            "2000",
            "--rate",
            "40",
            "--ticks",
            "6",
            "--kill-shard",
            "1",
            "--kill-at",
            "4",
            "--seed",
            "9",
        ]))
        .unwrap();
    }

    #[test]
    fn serve_rejects_bad_shape_and_kill_window() {
        assert!(serve(&args(&["--shape", "sawtooth"])).is_err());
        assert!(serve(&args(&[
            "--kill-shard",
            "0",
            "--kill-at",
            "99",
            "--ticks",
            "5"
        ]))
        .is_err());
    }

    #[test]
    fn testbed_runs_with_faults_and_retries() {
        testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "2",
            "--seed",
            "4",
            "--fault-intensity",
            "1.0",
            "--schedule",
            "targeted",
            "--retries",
            "2",
            "--timeout",
            "30",
            "--hedge",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn testbed_rejects_unknown_schedule() {
        assert!(testbed(&args(&[
            "--users",
            "10",
            "--fault-intensity",
            "1.0",
            "--schedule",
            "chaotic",
        ]))
        .is_err());
    }

    #[test]
    fn simulate_runs_with_mid_slot_repair() {
        simulate(&args(&[
            "--nodes",
            "6",
            "--users",
            "10",
            "--slots",
            "2",
            "--seed",
            "3",
            "--mid-slot-fail-prob",
            "0.9",
            "--repair",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_runs() {
        trace(&args(&["--seed", "5"])).unwrap();
    }

    #[test]
    fn testbed_runs_with_the_control_plane() {
        testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "2",
            "--seed",
            "4",
            "--autoscale",
            "reactive",
            "--target-concurrency",
            "1.5",
            "--min-replicas",
            "0",
            "--cold-start",
            "0.8",
            "--keep-warm",
            "120",
            "--admission",
        ]))
        .unwrap();
    }

    #[test]
    fn testbed_rejects_bad_autoscaler_flags() {
        // Bare --autoscale (no mode).
        assert!(testbed(&args(&["--users", "10", "--epochs", "1", "--autoscale"])).is_err());
        // Unknown mode.
        assert!(testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "1",
            "--autoscale",
            "magic",
        ]))
        .is_err());
        // Non-positive knobs.
        assert!(testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "1",
            "--autoscale",
            "reactive",
            "--target-concurrency",
            "0",
        ]))
        .is_err());
        assert!(testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "1",
            "--autoscale",
            "reactive",
            "--max-replicas-per-node",
            "0",
        ]))
        .is_err());
        // Negative cold-start.
        assert!(testbed(&args(&[
            "--users",
            "10",
            "--epochs",
            "1",
            "--cold-start",
            "-1",
        ]))
        .is_err());
    }

    #[test]
    fn simulate_runs_with_the_control_plane() {
        simulate(&args(&[
            "--nodes",
            "6",
            "--users",
            "10",
            "--slots",
            "2",
            "--seed",
            "3",
            "--autoscale",
            "predictive",
        ]))
        .unwrap();
    }

    #[test]
    fn autoscale_compares_all_modes() {
        autoscale(&args(&[
            "--nodes", "5", "--users", "8", "--epochs", "2", "--seed", "9", "--surge", "40",
        ]))
        .unwrap();
    }

    #[test]
    fn autoscale_rejects_zero_epochs() {
        assert!(autoscale(&args(&["--epochs", "0"])).is_err());
    }

    #[test]
    fn resilience_runs_small() {
        resilience(&args(&["--nodes", "6", "--seed", "6", "--top", "3"])).unwrap();
    }

    #[test]
    fn resilience_runs_a_schedule_replay() {
        resilience(&args(&[
            "--nodes",
            "6",
            "--users",
            "10",
            "--seed",
            "6",
            "--top",
            "2",
            "--schedule",
            "noncritical",
        ]))
        .unwrap();
    }

    #[test]
    fn chaos_runs_a_tiny_soak() {
        chaos(&args(&[
            "--nodes",
            "6",
            "--users",
            "12",
            "--slots",
            "4",
            "--seeds",
            "1",
            "--kill-slots",
            "0,2",
            "--checkpoint-every",
            "2",
            "--guided",
            "1",
            "--torn",
            "clean,garbage",
        ]))
        .unwrap();
    }

    #[test]
    fn chaos_rejects_bad_flags() {
        assert!(chaos(&args(&["--torn", "shredded"])).is_err());
        assert!(chaos(&args(&["--checkpoint-every", "0"])).is_err());
        assert!(chaos(&args(&["--slots", "4", "--kill-slots", "9"])).is_err());
        assert!(chaos(&args(&["--policy", "quantum"])).is_err());
        assert!(chaos(&args(&["--seeds", "one,two"])).is_err());
    }

    #[test]
    fn export_roundtrips_via_model() {
        // The export path reuses ScenarioSnapshot; just exercise it.
        export(&args(&["--nodes", "4", "--users", "6", "--seed", "7"])).unwrap();
    }
}

//! Minimal `--key value` argument parser.

use std::collections::BTreeMap;

/// Parsed flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parse `--key value` pairs; bare `--flag` (no value) stores `"true"`.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = &argv[i];
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{key}`"));
            };
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            let has_value = i + 1 < argv.len() && !argv[i + 1].starts_with("--");
            if has_value {
                map.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                map.insert(name.to_string(), "true".into());
                i += 1;
            }
        }
        Ok(Self { map })
    }

    /// String value with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Typed value with a default; errors on unparsable input.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// True when the flag is present (with any value other than "false").
    pub fn flag(&self, key: &str) -> bool {
        self.map.get(key).is_some_and(|v| v != "false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_bare_flags() {
        let a = Args::parse(&s(&["--nodes", "10", "--verbose", "--seed", "3"])).unwrap();
        assert_eq!(a.get::<usize>("nodes", 0).unwrap(), 10);
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 3);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.get::<usize>("users", 40).unwrap(), 40);
        assert_eq!(a.get_str("algo", "socl"), "socl");
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&s(&["positional"])).is_err());
    }

    #[test]
    fn rejects_bad_typed_values() {
        let a = Args::parse(&s(&["--users", "many"])).unwrap();
        assert!(a.get::<usize>("users", 1).is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // "-5" does not start with "--", so it binds as a value.
        let a = Args::parse(&s(&["--delta", "-5"])).unwrap();
        assert_eq!(a.get::<i32>("delta", 0).unwrap(), -5);
    }
}

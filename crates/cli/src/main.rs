//! `socl` — command-line interface for the SoCL reproduction.
//!
//! ```text
//! socl solve    [--nodes N] [--users U] [--seed S] [--budget B] [--lambda L]
//!               [--algo socl|rp|jdr|gcog|opt] [--omega W] [--xi X] [--theta T]
//! socl compare  [--nodes N] [--users U] [--seed S] [--budget B]
//! socl simulate [--nodes N] [--users U] [--slots K] [--seed S]
//!               [--policy socl|rp|jdr] [--fail-prob P]
//!               [--mid-slot-fail-prob P] [--recover-prob P] [--repair]
//! socl testbed  [--nodes N] [--users U] [--seed S] [--epochs E]
//!               [--algo socl|rp|jdr] [--fault-intensity F]
//!               [--schedule targeted|noncritical|random] [--retries R]
//!               [--timeout SECS] [--hedge SECS] [--no-degrade]
//!               [--cold-start SECS] [--keep-warm SECS] [autoscaler flags]
//! socl autoscale [--nodes N] [--users U] [--seed S] [--epochs E]
//!               [--surge REQS] [--cold-start SECS] [autoscaler flags]
//! socl trace    [--seed S]
//! socl resilience [--nodes N] [--seed S] [--top K]
//!               [--schedule targeted|noncritical|random]
//! socl chaos    [--nodes N] [--users U] [--slots K] [--policy socl|rp|jdr]
//!               [--seeds S1,S2,..] [--kill-slots K1,K2,..]
//!               [--checkpoint-every N] [--guided N] [--torn MODE,..]
//! socl serve    [--nodes N] [--regions R] [--shards S] [--users U]
//!               [--ticks T] [--rate R] [--shape flash|diurnal] [--seed S]
//!               [--policy socl|rp|jdr] [--kill-shard K] [--kill-at T]
//!               [--torn clean|garbage|partial] [--csv]
//! ```
//!
//! Every command additionally accepts the global `--threads N` flag, which
//! sizes the worker pool of the parallel hot paths (0 = auto-detect, 1 =
//! fully serial). Results are identical for every thread count.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the binary
//! dependency-free; see [`args::Args`].

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&argv);
    std::process::exit(code);
}

fn run(argv: &[String]) -> i32 {
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return 2;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return 2;
        }
    };
    // Global flag: worker threads for the parallel hot paths (0 = auto).
    match args.get::<usize>("threads", 0) {
        Ok(threads) => socl::net::set_threads(threads),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return 2;
        }
    }
    let result = match command.as_str() {
        "solve" => commands::solve(&args),
        "compare" => commands::compare(&args),
        "simulate" => commands::simulate(&args),
        "testbed" => commands::testbed(&args),
        "autoscale" => commands::autoscale(&args),
        "trace" => commands::trace(&args),
        "resilience" => commands::resilience(&args),
        "chaos" => commands::chaos(&args),
        "serve" => commands::serve(&args),
        "export" => commands::export(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn unknown_command_rejected() {
        assert_eq!(run(&s(&["frobnicate"])), 2);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&s(&["help"])), 0);
    }

    #[test]
    fn solve_runs_tiny() {
        assert_eq!(
            run(&s(&[
                "solve", "--nodes", "5", "--users", "8", "--seed", "1"
            ])),
            0
        );
    }

    #[test]
    fn chaos_dispatches_and_validates_flags() {
        // Flag validation happens before any soak run, so this is cheap.
        assert_eq!(run(&s(&["chaos", "--torn", "shredded"])), 2);
    }

    #[test]
    fn bad_flag_value_rejected() {
        assert_eq!(run(&s(&["solve", "--nodes", "banana"])), 2);
    }

    #[test]
    fn threads_flag_is_accepted_and_validated() {
        assert_eq!(
            run(&s(&[
                "solve",
                "--nodes",
                "5",
                "--users",
                "8",
                "--seed",
                "1",
                "--threads",
                "2"
            ])),
            0
        );
        assert_eq!(run(&s(&["solve", "--threads", "lots"])), 2);
        socl::net::set_threads(0);
    }
}

//! Property tests for the control plane's hard invariants.

use crate::config::{AdmissionPolicy, AutoscaleConfig, KeepAlivePolicy, ScalingMode};
use crate::scaler::Autoscaler;
use proptest::prelude::*;
use socl_model::{Microservice, Placement, ServiceCatalog, ServiceId};
use socl_net::{EdgeNetwork, EdgeServer, LinkParams, NodeId};

const SERVICES: usize = 3;
const NODES: usize = 4;

fn fixture() -> (ServiceCatalog, EdgeNetwork, Placement) {
    let catalog = ServiceCatalog::from_services(vec![
        Microservice::new(100.0, 1.0, 1.0),
        Microservice::new(250.0, 2.0, 1.5),
        Microservice::new(400.0, 3.0, 2.0),
    ]);
    let mut net = EdgeNetwork::new();
    for i in 0..NODES {
        // Heterogeneous storage so per-node ceilings differ.
        net.push_server(EdgeServer::new(10.0, 3.0 + i as f64 * 2.0));
    }
    for i in 1..NODES {
        net.add_link(NodeId(0), NodeId(i as u32), LinkParams::from_rate(1.0));
    }
    let mut p = Placement::empty(SERVICES, NODES);
    p.set(ServiceId(0), NodeId(0), true);
    p.set(ServiceId(0), NodeId(1), true);
    p.set(ServiceId(1), NodeId(1), true);
    p.set(ServiceId(1), NodeId(2), true);
    p.set(ServiceId(2), NodeId(3), true);
    (catalog, net, p)
}

fn arb_config() -> impl Strategy<Value = AutoscaleConfig> {
    (
        0u32..3, // mode selector
        0.5f64..4.0,
        1u32..3,
        1u32..6,
        0.0f64..30.0,
        (0u32..2, 0.0f64..60.0, 1e-5f64..1e-2), // keep-alive selector + params
    )
        .prop_map(
            |(mode_ix, target, min_r, max_per_node, down_cd, (ka_ix, fixed_w, idle_rate))| {
                let mode = match mode_ix {
                    0 => ScalingMode::Reactive,
                    1 => ScalingMode::Predictive,
                    _ => ScalingMode::Static,
                };
                let keep_alive = if ka_ix == 0 {
                    KeepAlivePolicy::Fixed(fixed_w)
                } else {
                    KeepAlivePolicy::CostOptimal {
                        idle_cost_per_unit: idle_rate,
                        latency_value: 1.0,
                    }
                };
                AutoscaleConfig {
                    mode,
                    target_concurrency: target,
                    stable_window: 12.0,
                    panic_window: 4.0,
                    scale_interval: 1.0,
                    down_cooldown: down_cd,
                    min_replicas: min_r,
                    max_replicas_per_node: max_per_node,
                    keep_alive,
                    ..AutoscaleConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Constraint (6) analogue: per-cell replica counts never exceed the
    /// cell ceiling (configured cap ∧ node storage / service image size),
    /// under any config and any in-flight trajectory.
    #[test]
    fn replicas_never_exceed_node_capacity(
        cfg in arb_config(),
        loads in proptest::collection::vec(
            proptest::collection::vec(0.0f64..50.0, SERVICES), 1..60),
    ) {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg, 0.5, SERVICES, NODES);
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for inflight in &loads {
            sc.tick(t, inflight, &p, &catalog, &net);
            for i in 0..SERVICES {
                let m = ServiceId(i as u32);
                for k in 0..NODES {
                    let node = NodeId(k as u32);
                    let count = sc.counts().get(m, node);
                    if count > 0 {
                        prop_assert!(p.get(m, node), "replicas on an undeployed cell");
                        let ceiling = sc.cell_ceiling(&catalog, &net, m, node);
                        prop_assert!(
                            count <= ceiling,
                            "{count} replicas of {m:?} on {node:?} exceed ceiling {ceiling}"
                        );
                    }
                }
            }
            t += 1.0;
        }
    }

    /// Identical configs and observation streams give bit-identical
    /// scaling timelines — the scaler has no hidden entropy source.
    #[test]
    fn scaling_timeline_is_deterministic(
        cfg in arb_config(),
        loads in proptest::collection::vec(
            proptest::collection::vec(0.0f64..50.0, SERVICES), 1..40),
    ) {
        let (catalog, net, p) = fixture();
        let run = || {
            let mut sc = Autoscaler::new(cfg.clone(), 0.5, SERVICES, NODES);
            sc.seed_from_placement(&p, &catalog, &net);
            let mut timeline = Vec::new();
            let mut t = 0.0;
            for inflight in &loads {
                timeline.extend(sc.tick(t, inflight, &p, &catalog, &net));
                t += 1.0;
            }
            timeline
        };
        prop_assert_eq!(run(), run());
    }

    /// Scale-to-zero never strands a live request: after any tick in which
    /// a deployed service observes positive in-flight concurrency, at least
    /// one replica of it stays warm — the keep-alive floor always covers
    /// the current demand sample, even with `min_replicas == 0`.
    #[test]
    fn scale_to_zero_never_strands_inflight_requests(
        cfg in arb_config(),
        loads in proptest::collection::vec(
            proptest::collection::vec(0.0f64..20.0, SERVICES), 1..60),
    ) {
        let cfg = AutoscaleConfig {
            mode: if cfg.mode == ScalingMode::Static { ScalingMode::Reactive } else { cfg.mode },
            min_replicas: 0,
            ..cfg
        };
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg, 0.5, SERVICES, NODES);
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for inflight in &loads {
            sc.tick(t, inflight, &p, &catalog, &net);
            for (i, &y) in inflight.iter().enumerate() {
                let m = ServiceId(i as u32);
                if y > 0.0 && sc.max_capacity(m) > 0 {
                    prop_assert!(
                        sc.counts().total_of(m) >= 1,
                        "{m:?} scaled to zero with {y} in flight at t={t}"
                    );
                }
            }
            t += 1.0;
        }
    }

    /// Admission is monotone in priority: whenever a long chain is
    /// admitted at some load, every shorter chain is admitted too.
    #[test]
    fn admission_is_monotone_in_chain_length(
        queue_limit in 0.5f64..8.0,
        classes in 1u32..5,
        strict in 1.0f64..4.0,
        in_flight in 0.0f64..200.0,
        cap in 1u32..20,
        long_chain in 1usize..16,
    ) {
        let p = AdmissionPolicy {
            enabled: true,
            queue_limit,
            classes,
            strict_overload: strict,
        };
        if p.admits(long_chain, in_flight, cap) {
            for shorter in 1..long_chain {
                prop_assert!(
                    p.admits(shorter, in_flight, cap),
                    "chain {shorter} shed while {long_chain} admitted"
                );
            }
        }
    }
}

//! Control-plane configuration: scaling mode, windows, cooldowns,
//! keep-alive economics, and admission policy.

use socl_model::ServiceCatalog;
use socl_model::ServiceId;

/// Which replica-count controller drives the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// Replica counts are frozen at their initial values — the
    /// one-instance-per-placement-entry model, kept as the comparison
    /// baseline (and as the max-scale extreme when `min_replicas` is high).
    Static,
    /// Knative-style concurrency targeting: desired replicas =
    /// `ceil(observed in-flight / target_concurrency)`, averaged over the
    /// stable window, with a short panic window for flash crowds.
    Reactive,
    /// Reactive, plus a Holt trend forecast (`socl_trace::Forecaster`) over
    /// the in-flight series: the scaler provisions for the *predicted*
    /// concurrency `lead_ticks` ahead, so replicas are warm before a
    /// diurnal ramp arrives.
    Predictive,
}

impl ScalingMode {
    /// Stable display/CLI tag.
    pub fn name(&self) -> &'static str {
        match self {
            ScalingMode::Static => "static",
            ScalingMode::Reactive => "reactive",
            ScalingMode::Predictive => "predictive",
        }
    }

    /// Parse a CLI tag.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(ScalingMode::Static),
            "reactive" => Ok(ScalingMode::Reactive),
            "predictive" => Ok(ScalingMode::Predictive),
            other => Err(format!(
                "unknown scaling mode `{other}` (expected static|reactive|predictive)"
            )),
        }
    }
}

/// When an idle replica may be reclaimed (scale-to-zero economics).
///
/// The tension is Eq. 1 against Eq. 2/7: a warm replica of service `m`
/// keeps paying its deployment cost `κ(m)` (it holds storage and a billed
/// container), while releasing it means the next request pays the
/// `cold_start` latency penalty. The classic deterministic ski-rental
/// answer is to keep the replica warm until the accumulated idle cost
/// equals the cold-start cost, i.e. a window of `cold cost / idle rate` —
/// within factor 2 of the offline optimum for any arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeepAlivePolicy {
    /// Fixed window in seconds for every service (Knative's default shape).
    Fixed(f64),
    /// Ski-rental break-even per service: window =
    /// `cold_start · latency_value / (idle_cost_per_unit · κ(m))`.
    /// Expensive services (large `κ`) go cold sooner; cheap ones linger.
    CostOptimal {
        /// Cost units one deployment-cost unit accrues per idle second.
        idle_cost_per_unit: f64,
        /// Cost units per second of user-visible cold-start latency.
        latency_value: f64,
    },
}

impl KeepAlivePolicy {
    /// The keep-alive window for service `m` given the run's cold-start
    /// penalty (seconds). Never negative; degenerate rates fall back to the
    /// cold-start itself so a replica always survives at least one penalty
    /// span.
    pub fn window(&self, catalog: &ServiceCatalog, m: ServiceId, cold_start: f64) -> f64 {
        match *self {
            KeepAlivePolicy::Fixed(w) => w.max(0.0),
            KeepAlivePolicy::CostOptimal {
                idle_cost_per_unit,
                latency_value,
            } => {
                let idle_rate = idle_cost_per_unit * catalog.deploy_cost(m);
                if idle_rate <= 0.0 {
                    return f64::INFINITY; // free to keep warm forever
                }
                (cold_start.max(0.0) * latency_value / idle_rate).max(cold_start.max(0.0))
            }
        }
    }
}

/// Load shedding at admission time.
///
/// Shedding only engages when even *max-scale* capacity is exceeded: the
/// overload of a service is `in-flight / (queue_limit × max replicas)`,
/// where max replicas is the capacity ceiling from the per-node constraints
/// — if scaling up could still absorb the load, the scaler (not the
/// shedder) is the right tool. Per-chain priority classes degrade service
/// gracefully: lower classes are shed first, the top class holds out to
/// `strict_overload`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Master switch; off = admit everything (the pre-control-plane model).
    pub enabled: bool,
    /// Admissible in-flight per replica before a service counts as
    /// overloaded (sized relative to `target_concurrency`, e.g. 2×).
    pub queue_limit: f64,
    /// Number of priority classes (≥ 1). Class 0 is the highest.
    pub classes: u32,
    /// Overload factor at which even class-0 requests are shed.
    pub strict_overload: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            queue_limit: 4.0,
            classes: 2,
            strict_overload: 2.0,
        }
    }
}

/// Full control-plane configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Which controller drives the plan.
    pub mode: ScalingMode,
    /// Knative's soft concurrency target per replica.
    pub target_concurrency: f64,
    /// Averaging window (seconds) for the stable in-flight signal.
    pub stable_window: f64,
    /// Short window (seconds) whose *max* drives flash-crowd panic.
    pub panic_window: f64,
    /// Panic when the panic-window desire reaches this multiple of the
    /// current replica count.
    pub panic_factor: f64,
    /// Seconds between scaler ticks.
    pub scale_interval: f64,
    /// Minimum seconds between consecutive scale-downs of one service
    /// (scale-ups are never delayed).
    pub down_cooldown: f64,
    /// Floor on total replicas per requested service (0 = scale-to-zero).
    pub min_replicas: u32,
    /// Hard per-(service, node) replica cap, additionally bounded by the
    /// node's storage (constraint (6): replicas hold container images).
    pub max_replicas_per_node: u32,
    /// Ticks of lead the predictive controller provisions ahead.
    pub lead_ticks: f64,
    /// Scale-to-zero economics.
    pub keep_alive: KeepAlivePolicy,
    /// Load shedding at admission.
    pub admission: AdmissionPolicy,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            mode: ScalingMode::Reactive,
            target_concurrency: 2.0,
            stable_window: 60.0,
            panic_window: 6.0,
            panic_factor: 2.0,
            scale_interval: 2.0,
            down_cooldown: 30.0,
            min_replicas: 1,
            max_replicas_per_node: 8,
            lead_ticks: 3.0,
            keep_alive: KeepAlivePolicy::Fixed(60.0),
            admission: AdmissionPolicy::default(),
        }
    }
}

impl AutoscaleConfig {
    /// Validate ranges; call once at the configuration boundary.
    ///
    /// # Panics
    /// Panics on non-positive `target_concurrency`, `scale_interval`, or
    /// `panic_factor`, or `admission.classes == 0`.
    pub fn validate(&self) {
        assert!(
            self.target_concurrency > 0.0,
            "target_concurrency must be positive"
        );
        assert!(self.scale_interval > 0.0, "scale_interval must be positive");
        assert!(self.panic_factor > 0.0, "panic_factor must be positive");
        assert!(self.admission.classes > 0, "admission.classes must be >= 1");
    }

    /// The max-scale extreme: the same pool model with every requested
    /// service pinned at its capacity ceiling — the latency-optimal,
    /// cost-maximal reference the keep-alive economics are judged against.
    pub fn max_scale() -> Self {
        Self {
            mode: ScalingMode::Static,
            min_replicas: u32::MAX,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::Microservice;

    fn catalog() -> ServiceCatalog {
        ServiceCatalog::from_services(vec![
            Microservice::new(100.0, 1.0, 1.0),
            Microservice::new(400.0, 2.0, 2.0),
        ])
    }

    #[test]
    fn fixed_window_ignores_the_catalog() {
        let c = catalog();
        let p = KeepAlivePolicy::Fixed(45.0);
        assert_eq!(p.window(&c, ServiceId(0), 0.5), 45.0);
        assert_eq!(p.window(&c, ServiceId(1), 0.5), 45.0);
    }

    #[test]
    fn cost_optimal_window_shrinks_with_deploy_cost() {
        let c = catalog();
        let p = KeepAlivePolicy::CostOptimal {
            idle_cost_per_unit: 1e-4,
            latency_value: 10.0,
        };
        let cheap = p.window(&c, ServiceId(0), 0.5);
        let pricey = p.window(&c, ServiceId(1), 0.5);
        // Service 1 costs 4x more to keep idle, so its window is 4x shorter.
        assert!((cheap / pricey - 4.0).abs() < 1e-9, "{cheap} vs {pricey}");
        // Break-even arithmetic: 0.5 s * 10 / (1e-4 * 100) = 500 s.
        assert!((cheap - 500.0).abs() < 1e-9);
    }

    #[test]
    fn cost_optimal_window_never_undercuts_the_cold_start() {
        let c = catalog();
        let p = KeepAlivePolicy::CostOptimal {
            idle_cost_per_unit: 1.0,
            latency_value: 1e-6,
        };
        assert!(p.window(&c, ServiceId(1), 0.5) >= 0.5);
    }

    #[test]
    fn zero_idle_rate_keeps_replicas_warm_forever() {
        let c = catalog();
        let p = KeepAlivePolicy::CostOptimal {
            idle_cost_per_unit: 0.0,
            latency_value: 10.0,
        };
        assert!(p.window(&c, ServiceId(0), 0.5).is_infinite());
    }

    #[test]
    fn mode_tags_round_trip() {
        for m in [
            ScalingMode::Static,
            ScalingMode::Reactive,
            ScalingMode::Predictive,
        ] {
            assert_eq!(ScalingMode::parse(m.name()).unwrap(), m);
        }
        assert!(ScalingMode::parse("chaotic").is_err());
    }
}

//! # socl-autoscale — a serverless control plane for SoCL's online layer
//!
//! The paper's placement model is binary: a microservice is deployed on a
//! node or it is not, and each deployment serves requests one at a time.
//! Real serverless edge platforms interpose a *control plane* between the
//! placement and the data path: each deployed `(service, node)` cell backs
//! a **pool of replicas** whose size tracks demand. This crate provides
//! that control plane, deterministic end to end:
//!
//! * [`Autoscaler`] — the replica-count controller. Reactive mode is
//!   Knative-shaped concurrency targeting (stable window mean + panic
//!   window max); predictive mode adds a Holt trend forecast
//!   ([`socl_trace::Forecaster`]) so replicas are warm *before* a diurnal
//!   ramp arrives. Capacity ceilings come from the paper's per-node
//!   constraints (4)–(6): replicas hold container images, so a node's
//!   storage bounds its pool.
//! * [`KeepAlivePolicy`] — scale-to-zero economics. The cost-optimal
//!   variant solves the ski-rental trade between Eq. 1 deployment cost
//!   (idle replicas keep paying `κ(m)`) and cold-start latency, giving
//!   each service its own break-even keep-alive window.
//! * [`AdmissionPolicy`] — priority-classed load shedding that engages
//!   only when even max-scale capacity is exceeded; short request chains
//!   (cheapest to complete) are admitted longest.
//!
//! Everything here is a pure fold over observations — no wall clocks, no
//! unseeded RNG, no hash-order iteration — so identical seeds and configs
//! yield bit-identical scaling timelines at any worker-thread count.

pub mod admission;
pub mod config;
pub mod scaler;

pub use config::{AdmissionPolicy, AutoscaleConfig, KeepAlivePolicy, ScalingMode};
pub use scaler::{Autoscaler, ScalerState, ScalingAction, ServiceStateSnapshot};
// Re-exported so checkpoint code serializing a [`ScalerState`] can name the
// forecaster field's type without depending on `socl-trace` directly.
pub use socl_trace::ForecasterState;

#[cfg(test)]
mod proptests;

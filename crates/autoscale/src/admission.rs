//! Admission control: priority-classed load shedding when even max-scale
//! capacity cannot absorb the offered load.
//!
//! The shedder is the last line of defense, behind the scaler: a service's
//! *overload factor* is measured against its capacity ceiling (what the
//! scaler could reach at max scale, constraints (4)–(6)), not its current
//! replica count — transient queueing the scaler can absorb by scaling up
//! never sheds. Only when the offered concurrency exceeds what the ceiling
//! can serve does shedding begin, lowest priority class first.

use crate::config::AdmissionPolicy;

/// Chain length at which a request drops one priority class. Short chains
/// are the cheapest to complete, so under overload they are admitted
/// longest — shedding one long chain frees capacity on every service it
/// would have traversed, maximizing completed requests per unit capacity.
const CHAIN_LEN_PER_CLASS: usize = 4;

impl AdmissionPolicy {
    /// Priority class for a request chain of `chain_len` services.
    /// Class 0 is the highest priority; classes cap at `classes - 1`.
    pub fn priority_class(&self, chain_len: usize) -> u32 {
        let class = chain_len.saturating_sub(1) / CHAIN_LEN_PER_CLASS;
        (class as u32).min(self.classes.saturating_sub(1))
    }

    /// Overload factor at which class `class` starts shedding. The lowest
    /// class sheds at 1.0 (capacity exactly exhausted); class 0 holds out
    /// to `strict_overload`; intermediate classes interpolate linearly.
    pub fn threshold(&self, class: u32) -> f64 {
        let lowest = self.classes.saturating_sub(1);
        if lowest == 0 {
            return self.strict_overload;
        }
        let rank = class.min(lowest);
        let headroom = (self.strict_overload - 1.0).max(0.0);
        1.0 + headroom * (lowest - rank) as f64 / lowest as f64
    }

    /// Admission decision: `in_flight` is the service's instantaneous
    /// concurrency, `max_capacity` its replica ceiling. Disabled policies
    /// admit everything; so does a service with no capacity at all (the
    /// scaler/placement layer owns that failure mode, not the shedder).
    pub fn admits(&self, chain_len: usize, in_flight: f64, max_capacity: u32) -> bool {
        if !self.enabled || max_capacity == 0 {
            return true;
        }
        let overload = in_flight.max(0.0) / (self.queue_limit.max(1e-9) * max_capacity as f64);
        overload < self.threshold(self.priority_class(chain_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(classes: u32) -> AdmissionPolicy {
        AdmissionPolicy {
            enabled: true,
            queue_limit: 2.0,
            classes,
            strict_overload: 3.0,
        }
    }

    #[test]
    fn short_chains_outrank_long_ones() {
        let p = policy(3);
        assert_eq!(p.priority_class(1), 0);
        assert_eq!(p.priority_class(4), 0);
        assert_eq!(p.priority_class(5), 1);
        assert_eq!(p.priority_class(9), 2);
        assert_eq!(p.priority_class(50), 2); // capped at classes - 1
    }

    #[test]
    fn thresholds_interpolate_from_one_to_strict() {
        let p = policy(3);
        assert!((p.threshold(2) - 1.0).abs() < 1e-9);
        assert!((p.threshold(1) - 2.0).abs() < 1e-9);
        assert!((p.threshold(0) - 3.0).abs() < 1e-9);
        // Single class: everyone sheds at the strict limit.
        let single = policy(1);
        assert!((single.threshold(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn below_capacity_nothing_sheds() {
        let p = policy(2);
        // Capacity 5, queue limit 2 -> overload 1.0 at in-flight 10.
        for chain_len in [1, 6, 20] {
            assert!(p.admits(chain_len, 9.9, 5));
        }
    }

    #[test]
    fn overload_sheds_low_priority_first() {
        let p = policy(2);
        // Overload 1.5: class 1 (threshold 1.0) sheds, class 0 (3.0) holds.
        assert!(!p.admits(6, 15.0, 5));
        assert!(p.admits(1, 15.0, 5));
        // Overload 3.5: everyone sheds.
        assert!(!p.admits(1, 35.0, 5));
    }

    #[test]
    fn disabled_or_capacityless_policies_admit_everything() {
        let off = AdmissionPolicy {
            enabled: false,
            ..policy(2)
        };
        assert!(off.admits(20, f64::MAX, 1));
        assert!(policy(2).admits(20, f64::MAX, 0));
    }
}

//! The per-microservice autoscaler: a deterministic control loop over
//! observed in-flight concurrency.
//!
//! ```text
//! every scale_interval seconds:
//!   for each deployed service m:
//!     stable  = mean in-flight over stable_window
//!     panicky = max  in-flight over panic_window
//!     desired = ceil(stable / target_concurrency)
//!     if predictive: desired = max(desired, ceil(forecast / target))
//!     if ceil(panicky / target) >= panic_factor * current: enter panic
//!     clamp desired to [min_replicas, capacity ceiling (constraints 4-6)]
//!     scale up immediately; scale down only after down_cooldown,
//!       never during panic, never below the keep-alive floor
//! ```
//!
//! The loop is a pure function of its observations — no clocks, no RNG —
//! so identical seeds and configs produce bit-identical scaling timelines
//! regardless of worker-thread count.

use crate::config::{AutoscaleConfig, ScalingMode};
use socl_model::{Placement, ReplicaCounts, ServiceCatalog, ServiceId};
use socl_net::{EdgeNetwork, NodeId};
use socl_trace::ForecasterState;

/// One replica-count change for a single `(service, node)` cell, as
/// *planned* by the scaler. The execution layer applies it best-effort
/// (busy replicas cannot be reclaimed mid-request) and reports what
/// actually happened via [`Autoscaler::confirm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingAction {
    /// Microservice being scaled.
    pub service: ServiceId,
    /// Node whose pool changes.
    pub node: NodeId,
    /// Replica count before this tick.
    pub before: u32,
    /// Planned replica count after this tick.
    pub after: u32,
}

/// Per-service controller state.
#[derive(Debug, Clone)]
struct ServiceState {
    /// Recent `(time, in-flight)` samples, pruned to the stable window.
    samples: Vec<(f64, f64)>,
    /// Recent `(time, instantaneous desired)` pairs, pruned to the
    /// keep-alive window — their max is the scale-down floor, which is how
    /// "a replica stays warm for W seconds after it was last needed" is
    /// realised without per-replica timers.
    desires: Vec<(f64, u32)>,
    /// Holt forecaster over the per-tick in-flight series.
    forecaster: socl_trace::Forecaster,
    /// Time of the last executed scale-down.
    last_down: f64,
    /// Panic mode is active until this time.
    panic_until: f64,
}

impl ServiceState {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            desires: Vec::new(),
            forecaster: socl_trace::Forecaster::scaling_default(),
            last_down: f64::NEG_INFINITY,
            panic_until: f64::NEG_INFINITY,
        }
    }
}

/// Frozen per-service controller state (checkpoint payload).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStateSnapshot {
    /// Recent `(time, in-flight)` samples within the stable window.
    pub samples: Vec<(f64, f64)>,
    /// Recent `(time, instantaneous desired)` keep-alive markers.
    pub desires: Vec<(f64, u32)>,
    /// Holt forecaster smoothing state.
    pub forecaster: ForecasterState,
    /// Time of the last executed scale-down.
    pub last_down: f64,
    /// Panic mode is active until this time.
    pub panic_until: f64,
}

/// Frozen [`Autoscaler`] state: everything the control loop accumulates at
/// runtime, excluding the static [`AutoscaleConfig`] (which the restoring
/// side reconstructs from its own run configuration). Capturing this plus
/// the replica-count grid makes a restored scaler's future ticks
/// bit-identical to the uninterrupted run's.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerState {
    /// Grid dimensions: services.
    pub services: usize,
    /// Grid dimensions: nodes.
    pub nodes: usize,
    /// Row-major replica counts (`services × nodes`).
    pub counts: Vec<u32>,
    /// Per-service capacity ceilings as of the last tick/seed — `admit`
    /// consults these *before* the next tick refreshes them, so they are
    /// state, not derived data.
    pub caps: Vec<u32>,
    /// Per-service controller state.
    pub states: Vec<ServiceStateSnapshot>,
    /// Cumulative service-level scale-up events.
    pub up_events: u64,
    /// Cumulative service-level scale-down events.
    pub down_events: u64,
    /// Cold-start penalty the scaler was constructed with.
    pub cold_start: f64,
}

/// The serverless control plane's replica-count controller.
///
/// Owns the authoritative [`ReplicaCounts`]: the data plane (testbed
/// engine, online simulator) sizes its pools from these counts, and the
/// repair path preserves them across node failures.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    /// Cold-start penalty of the surrounding run (seconds) — the price a
    /// request pays when it lands on a scaled-to-zero service.
    cold_start: f64,
    counts: ReplicaCounts,
    /// Total capacity ceiling per service across its current hosts,
    /// refreshed every tick (hosts move when placements change mid-run).
    caps: Vec<u32>,
    states: Vec<ServiceState>,
    /// Cumulative service-level scale-up / scale-down events.
    up_events: u64,
    down_events: u64,
    /// Water-fill scratch (hosts / per-cell ceilings / per-cell targets),
    /// recycled across [`apply_total_into`](Self::apply_total_into) calls so
    /// the per-service tick loop allocates nothing (rule `A1-hot-alloc`).
    /// Dead between calls; excluded from checkpoints.
    fill_hosts: Vec<NodeId>,
    fill_ceil: Vec<u32>,
    fill_alloc: Vec<u32>,
}

impl Autoscaler {
    /// New scaler with all counts at zero. Call
    /// [`seed_from_placement`](Self::seed_from_placement) before the run.
    pub fn new(cfg: AutoscaleConfig, cold_start: f64, services: usize, nodes: usize) -> Self {
        cfg.validate();
        Self {
            cfg,
            cold_start: cold_start.max(0.0),
            counts: ReplicaCounts::zero(services, nodes),
            caps: vec![0; services],
            states: (0..services).map(|_| ServiceState::new()).collect(),
            up_events: 0,
            down_events: 0,
            fill_hosts: Vec::new(),
            fill_ceil: Vec::new(),
            fill_alloc: Vec::new(),
        }
    }

    /// Configuration this scaler runs with.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Authoritative replica counts.
    pub fn counts(&self) -> &ReplicaCounts {
        &self.counts
    }

    /// Replace the replica-count table wholesale — used by the repair path
    /// after node failures rewrite the placement.
    pub fn restore_counts(&mut self, counts: ReplicaCounts) {
        self.counts = counts;
    }

    /// Capacity ceiling for `m` across its hosts, as of the last tick/seed.
    pub fn max_capacity(&self, m: ServiceId) -> u32 {
        self.caps.get(m.idx()).copied().unwrap_or(0)
    }

    /// Cumulative `(scale-up, scale-down)` service-level events.
    pub fn events(&self) -> (u64, u64) {
        (self.up_events, self.down_events)
    }

    /// Initialise counts from a placement (one replica per deployed cell —
    /// the legacy model), then raise every deployed service to the
    /// `min_replicas` floor. With `min_replicas == u32::MAX` this fills
    /// every service to its capacity ceiling: the max-scale extreme.
    pub fn seed_from_placement(
        &mut self,
        placement: &Placement,
        catalog: &ServiceCatalog,
        net: &EdgeNetwork,
    ) {
        self.counts = ReplicaCounts::from_placement(placement);
        self.refresh_caps(placement, catalog, net);
        // Seeding ignores the per-cell actions; one buffer absorbs them all.
        let mut actions = Vec::new();
        for i in 0..self.caps.len() {
            let m = ServiceId(i as u32);
            let cap = self.caps[i];
            let floor = self.cfg.min_replicas.min(cap);
            if self.counts.total_of(m) < floor {
                self.apply_total_into(m, floor, placement, catalog, net, &mut actions);
            }
        }
    }

    /// Per-cell replica ceiling: the configured per-node cap, additionally
    /// bounded by how many container images of `m` fit in the node's
    /// storage (constraint (6)). A deployed host can always hold one.
    pub fn cell_ceiling(
        &self,
        catalog: &ServiceCatalog,
        net: &EdgeNetwork,
        m: ServiceId,
        k: NodeId,
    ) -> u32 {
        let by_storage = if catalog.storage(m) > 0.0 {
            let fit = (net.storage(k) / catalog.storage(m)).floor();
            if fit >= u32::MAX as f64 {
                u32::MAX
            } else {
                fit as u32
            }
        } else {
            self.cfg.max_replicas_per_node
        };
        self.cfg.max_replicas_per_node.min(by_storage.max(1))
    }

    /// Admission decision for a request whose chain has `chain_len`
    /// services: sheddable only when the configured policy says the
    /// request's priority class must yield at the service's current
    /// overload. `in_flight` is the service's instantaneous concurrency.
    pub fn admit(&self, m: ServiceId, chain_len: usize, in_flight: f64) -> bool {
        self.cfg
            .admission
            .admits(chain_len, in_flight, self.max_capacity(m))
    }

    /// The execution layer reports the count it actually reached for a
    /// cell (scale-downs are best-effort: busy replicas finish first).
    pub fn confirm(&mut self, m: ServiceId, k: NodeId, actual: u32) {
        self.counts.set(m, k, actual);
    }

    /// One control-loop step at time `t`. `in_flight` holds the current
    /// concurrency per service (indexed by `ServiceId::idx`). Returns the
    /// planned per-cell changes; counts are updated optimistically and the
    /// engine corrects any shortfall via [`confirm`](Self::confirm).
    pub fn tick(
        &mut self,
        t: f64,
        in_flight: &[f64],
        placement: &Placement,
        catalog: &ServiceCatalog,
        net: &EdgeNetwork,
    ) -> Vec<ScalingAction> {
        self.refresh_caps(placement, catalog, net);
        if self.cfg.mode == ScalingMode::Static {
            return Vec::new();
        }
        let mut actions = Vec::new();
        for i in 0..self.states.len() {
            let m = ServiceId(i as u32);
            let cap = self.caps[i];
            if cap == 0 {
                continue; // not deployed anywhere
            }
            let y = in_flight.get(i).copied().unwrap_or(0.0).max(0.0);
            let target = self.cfg.target_concurrency;
            let desired_inst = ceil_div(y, target);
            let keep_window = self.cfg.keep_alive.window(catalog, m, self.cold_start);

            let st = &mut self.states[i];
            st.samples.push((t, y));
            st.samples
                .retain(|&(ts, _)| ts >= t - self.cfg.stable_window);
            st.desires.push((t, desired_inst));
            if keep_window.is_finite() {
                st.desires.retain(|&(ts, _)| ts >= t - keep_window);
            }
            st.forecaster.observe(y);

            let stable_mean =
                st.samples.iter().map(|&(_, v)| v).sum::<f64>() / st.samples.len().max(1) as f64;
            let panic_max = st
                .samples
                .iter()
                .filter(|&&(ts, _)| ts >= t - self.cfg.panic_window)
                .map(|&(_, v)| v)
                .fold(0.0, f64::max);

            let current = self.counts.total_of(m);
            let mut desired = ceil_div(stable_mean, target);
            if self.cfg.mode == ScalingMode::Predictive {
                let predicted = st.forecaster.forecast(self.cfg.lead_ticks);
                desired = desired.max(ceil_div(predicted, target));
            }
            let desired_panic = ceil_div(panic_max, target);
            if desired_panic as f64 >= self.cfg.panic_factor * current.max(1) as f64 {
                st.panic_until = t + self.cfg.stable_window;
            }
            let in_panic = t < st.panic_until;
            if in_panic {
                desired = desired.max(desired_panic);
            }

            let floor = self.cfg.min_replicas.min(cap);
            desired = desired.clamp(floor, cap);

            if desired > current {
                self.up_events += 1;
                self.apply_total_into(m, desired, placement, catalog, net, &mut actions);
            } else if desired < current {
                if in_panic || t - st.last_down < self.cfg.down_cooldown {
                    continue;
                }
                // Keep-alive floor: don't reclaim replicas that were needed
                // within the keep-alive window (ski-rental break-even).
                let keep_floor = st
                    .desires
                    .iter()
                    .map(|&(_, d)| d)
                    .max()
                    .unwrap_or(0)
                    .min(cap);
                let target_count = desired.max(keep_floor).max(floor);
                if target_count < current {
                    self.states[i].last_down = t;
                    self.down_events += 1;
                    self.apply_total_into(m, target_count, placement, catalog, net, &mut actions);
                }
            }
        }
        actions
    }

    /// Freeze the scaler's full runtime state for checkpointing.
    pub fn state(&self) -> ScalerState {
        let services = self.counts.services();
        let nodes = self.counts.nodes();
        let mut counts = Vec::with_capacity(services * nodes);
        for i in 0..services {
            for k in 0..nodes {
                counts.push(self.counts.get(ServiceId(i as u32), NodeId(k as u32)));
            }
        }
        ScalerState {
            services,
            nodes,
            counts,
            caps: self.caps.clone(),
            states: self
                .states
                .iter()
                .map(|st| ServiceStateSnapshot {
                    samples: st.samples.clone(),
                    desires: st.desires.clone(),
                    forecaster: st.forecaster.state(),
                    last_down: st.last_down,
                    panic_until: st.panic_until,
                })
                .collect(),
            up_events: self.up_events,
            down_events: self.down_events,
            cold_start: self.cold_start,
        }
    }

    /// Replace the scaler's runtime state with a frozen one (the static
    /// config is kept — the caller reconstructs it from the run config and
    /// is responsible for it matching the checkpointed run's).
    ///
    /// # Errors
    /// Returns a message when the state's dimensions disagree with this
    /// scaler's grid or a forecaster state is corrupt.
    pub fn restore_state(&mut self, s: &ScalerState) -> Result<(), String> {
        let services = self.counts.services();
        let nodes = self.counts.nodes();
        if s.services != services || s.nodes != nodes {
            return Err(format!(
                "scaler state is {}x{}, this run is {services}x{nodes}",
                s.services, s.nodes
            ));
        }
        if s.counts.len() != services * nodes {
            return Err("scaler count grid has wrong cell count".to_string());
        }
        if s.caps.len() != services || s.states.len() != services {
            return Err("scaler per-service vectors have wrong length".to_string());
        }
        if !s.cold_start.is_finite() || s.cold_start < 0.0 {
            return Err("scaler cold_start invalid".to_string());
        }
        let mut states = Vec::with_capacity(s.states.len());
        for snap in &s.states {
            states.push(ServiceState {
                samples: snap.samples.clone(),
                desires: snap.desires.clone(),
                forecaster: socl_trace::Forecaster::from_state(snap.forecaster)?,
                last_down: snap.last_down,
                panic_until: snap.panic_until,
            });
        }
        let mut counts = ReplicaCounts::zero(services, nodes);
        for i in 0..services {
            for k in 0..nodes {
                let v = s.counts.get(i * nodes + k).copied().unwrap_or(0);
                counts.set(ServiceId(i as u32), NodeId(k as u32), v);
            }
        }
        self.counts = counts;
        self.caps = s.caps.clone();
        self.states = states;
        self.up_events = s.up_events;
        self.down_events = s.down_events;
        self.cold_start = s.cold_start;
        Ok(())
    }

    /// Recompute per-service capacity ceilings from the current placement.
    fn refresh_caps(&mut self, placement: &Placement, catalog: &ServiceCatalog, net: &EdgeNetwork) {
        for i in 0..self.caps.len() {
            let m = ServiceId(i as u32);
            self.caps[i] = placement.hosts_iter(m).fold(0u32, |acc, k| {
                acc.saturating_add(self.cell_ceiling(catalog, net, m, k))
            });
        }
    }

    /// Set `m`'s total replica count to `total`, water-filled across its
    /// hosts in node-id order (deterministic), each host capped at its
    /// cell ceiling. Per-cell actions are appended to `actions`.
    fn apply_total_into(
        &mut self,
        m: ServiceId,
        total: u32,
        placement: &Placement,
        catalog: &ServiceCatalog,
        net: &EdgeNetwork,
        actions: &mut Vec<ScalingAction>,
    ) {
        // The scratch buffers move out of `self` for the duration (they are
        // dead between calls) so `self` stays borrowable for `cell_ceiling`
        // and `counts` below.
        let mut hosts = std::mem::take(&mut self.fill_hosts);
        let mut ceilings = std::mem::take(&mut self.fill_ceil);
        let mut alloc = std::mem::take(&mut self.fill_alloc);
        hosts.clear();
        hosts.extend(placement.hosts_iter(m));
        ceilings.clear();
        for &k in &hosts {
            ceilings.push(self.cell_ceiling(catalog, net, m, k));
        }
        let capacity: u32 = ceilings.iter().fold(0u32, |a, &c| a.saturating_add(c));
        let mut remaining = total.min(capacity);
        // Water-fill one replica per host per round, in node-id order:
        // spreads load evenly and deterministically across hosts.
        alloc.clear();
        alloc.resize(hosts.len(), 0);
        while remaining > 0 {
            let mut progressed = false;
            for (a, &c) in alloc.iter_mut().zip(&ceilings) {
                if remaining == 0 {
                    break;
                }
                if *a < c {
                    *a += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for ((&k, &c), &new) in hosts.iter().zip(&ceilings).zip(&alloc) {
            let _ = c;
            let before = self.counts.get(m, k);
            if before != new {
                actions.push(ScalingAction {
                    service: m,
                    node: k,
                    before,
                    after: new,
                });
                self.counts.set(m, k, new);
            }
        }
        self.fill_hosts = hosts;
        self.fill_ceil = ceilings;
        self.fill_alloc = alloc;
    }
}

/// `ceil(num / den)` as a saturating u32, for non-negative float inputs.
fn ceil_div(num: f64, den: f64) -> u32 {
    let v = (num / den).ceil();
    if v <= 0.0 {
        0
    } else if v >= u32::MAX as f64 {
        u32::MAX
    } else {
        v as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionPolicy, KeepAlivePolicy};
    use socl_model::Microservice;
    use socl_net::{EdgeServer, LinkParams};

    /// Two services, three nodes, services deployed on nodes {0,1}.
    fn fixture() -> (ServiceCatalog, EdgeNetwork, Placement) {
        let catalog = ServiceCatalog::from_services(vec![
            Microservice::new(100.0, 1.0, 1.0),
            Microservice::new(200.0, 2.0, 1.0),
        ]);
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 6.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(1.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(1.0));
        let mut p = Placement::empty(2, 3);
        p.set(ServiceId(0), NodeId(0), true);
        p.set(ServiceId(0), NodeId(1), true);
        p.set(ServiceId(1), NodeId(1), true);
        (catalog, net, p)
    }

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            stable_window: 10.0,
            panic_window: 4.0,
            scale_interval: 1.0,
            down_cooldown: 5.0,
            min_replicas: 0,
            max_replicas_per_node: 4,
            keep_alive: KeepAlivePolicy::Fixed(3.0),
            ..AutoscaleConfig::default()
        }
    }

    #[test]
    fn seed_matches_placement_then_honors_min_replicas() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        assert_eq!(sc.counts().total_of(ServiceId(0)), 2);
        assert_eq!(sc.counts().total_of(ServiceId(1)), 1);

        let mut pinned = Autoscaler::new(
            AutoscaleConfig {
                min_replicas: 3,
                ..cfg()
            },
            0.5,
            2,
            3,
        );
        pinned.seed_from_placement(&p, &catalog, &net);
        assert_eq!(pinned.counts().total_of(ServiceId(0)), 3);
        assert_eq!(pinned.counts().total_of(ServiceId(1)), 3);
    }

    #[test]
    fn max_scale_seed_fills_the_capacity_ceiling() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(AutoscaleConfig::max_scale(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        // Service 0: two hosts, each min(8, floor(6/1)=6) -> but max_scale
        // uses default max_replicas_per_node 8, storage bound 6 -> 12 total.
        assert_eq!(sc.counts().total_of(ServiceId(0)), 12);
        // Service 1: one host, min(8, floor(6/2)=3) = 3.
        assert_eq!(sc.counts().total_of(ServiceId(1)), 3);
    }

    #[test]
    fn sustained_load_scales_up_to_meet_the_target() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        // 8 concurrent on service 0 with target 2.0 -> wants 4 replicas.
        let mut t = 0.0;
        for _ in 0..12 {
            sc.tick(t, &[8.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 4);
        // Water-filled evenly over the two hosts.
        assert_eq!(sc.counts().get(ServiceId(0), NodeId(0)), 2);
        assert_eq!(sc.counts().get(ServiceId(0), NodeId(1)), 2);
    }

    #[test]
    fn replicas_never_exceed_the_cell_ceiling() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for _ in 0..30 {
            sc.tick(t, &[1e6, 1e6], &p, &catalog, &net);
            t += 1.0;
        }
        // Service 0: 2 hosts x min(4, 6) = 8 total cap.
        assert_eq!(sc.counts().total_of(ServiceId(0)), 8);
        for k in 0..3 {
            assert!(sc.counts().get(ServiceId(0), NodeId(k)) <= 4);
        }
        // Service 1: 1 host x min(4, floor(6/2)=3) = 3.
        assert_eq!(sc.counts().total_of(ServiceId(1)), 3);
    }

    #[test]
    fn idle_service_scales_to_zero_after_keepalive_and_cooldown() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for _ in 0..40 {
            sc.tick(t, &[0.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 0);
        assert_eq!(sc.counts().total(), 0);
        let (_, downs) = sc.events();
        assert!(downs >= 1);
    }

    #[test]
    fn min_replicas_blocks_scale_to_zero() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(
            AutoscaleConfig {
                min_replicas: 1,
                ..cfg()
            },
            0.5,
            2,
            3,
        );
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for _ in 0..40 {
            sc.tick(t, &[0.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 1);
        assert_eq!(sc.counts().total_of(ServiceId(1)), 1);
    }

    #[test]
    fn keep_alive_floor_delays_scale_down() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(
            AutoscaleConfig {
                keep_alive: KeepAlivePolicy::Fixed(20.0),
                down_cooldown: 0.0,
                ..cfg()
            },
            0.5,
            2,
            3,
        );
        sc.seed_from_placement(&p, &catalog, &net);
        // Burst to 4 replicas...
        let mut t = 0.0;
        for _ in 0..12 {
            sc.tick(t, &[8.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 4);
        // ...then go idle: within the 20 s keep-alive window the replicas
        // stay warm even though desired has collapsed.
        for _ in 0..10 {
            sc.tick(t, &[0.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 4);
        // Past the window they are reclaimed.
        for _ in 0..30 {
            sc.tick(t, &[0.0, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 0);
    }

    #[test]
    fn panic_mode_reacts_to_a_flash_crowd_within_one_tick() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        // Long calm phase fills the stable window with zeros.
        let mut t = 0.0;
        for _ in 0..20 {
            sc.tick(t, &[0.1, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        let before = sc.counts().total_of(ServiceId(0));
        // One flash-crowd sample: stable mean barely moves, but the panic
        // window's max fires immediately.
        sc.tick(t, &[12.0, 0.0], &p, &catalog, &net);
        let after = sc.counts().total_of(ServiceId(0));
        assert!(
            after >= before + 3,
            "panic should jump replicas: {before} -> {after}"
        );
    }

    #[test]
    fn static_mode_never_emits_actions() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(
            AutoscaleConfig {
                mode: ScalingMode::Static,
                ..cfg()
            },
            0.5,
            2,
            3,
        );
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for _ in 0..20 {
            let actions = sc.tick(t, &[50.0, 50.0], &p, &catalog, &net);
            assert!(actions.is_empty());
            t += 1.0;
        }
        assert_eq!(sc.counts().total_of(ServiceId(0)), 2);
    }

    #[test]
    fn predictive_mode_leads_a_ramp() {
        let (catalog, net, p) = fixture();
        let mk = |mode| {
            let mut sc = Autoscaler::new(
                AutoscaleConfig {
                    mode,
                    lead_ticks: 4.0,
                    ..cfg()
                },
                0.5,
                2,
                3,
            );
            sc.seed_from_placement(&p, &catalog, &net);
            sc
        };
        let mut reactive = mk(ScalingMode::Reactive);
        let mut predictive = mk(ScalingMode::Predictive);
        // A steady ramp: in-flight grows 1 per tick.
        let mut t = 0.0;
        for i in 0..8 {
            let y = i as f64;
            reactive.tick(t, &[y, 0.0], &p, &catalog, &net);
            predictive.tick(t, &[y, 0.0], &p, &catalog, &net);
            t += 1.0;
        }
        assert!(
            predictive.counts().total_of(ServiceId(0)) > reactive.counts().total_of(ServiceId(0)),
            "predictive {} should lead reactive {}",
            predictive.counts().total_of(ServiceId(0)),
            reactive.counts().total_of(ServiceId(0))
        );
    }

    #[test]
    fn scaling_timeline_is_bit_identical_across_runs() {
        let (catalog, net, p) = fixture();
        let run = || {
            let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
            sc.seed_from_placement(&p, &catalog, &net);
            let mut timeline = Vec::new();
            let mut t = 0.0;
            for i in 0..50 {
                let y = ((i * 13) % 17) as f64;
                let actions = sc.tick(t, &[y, y * 0.5], &p, &catalog, &net);
                timeline.extend(actions);
                t += 1.0;
            }
            timeline
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn frozen_state_roundtrips_and_continues_bit_identically() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        let mut t = 0.0;
        for i in 0..17 {
            let y = ((i * 13) % 17) as f64;
            sc.tick(t, &[y, y * 0.5], &p, &catalog, &net);
            t += 1.0;
        }
        // Clone-free restore into a freshly constructed scaler.
        let frozen = sc.state();
        let mut restored = Autoscaler::new(cfg(), 0.5, 2, 3);
        restored.restore_state(&frozen).unwrap();
        assert_eq!(restored.state(), frozen);
        assert_eq!(restored.events(), sc.events());
        // Future ticks are indistinguishable.
        for i in 17..40 {
            let y = ((i * 13) % 17) as f64;
            let a = sc.tick(t, &[y, y * 0.5], &p, &catalog, &net);
            let b = restored.tick(t, &[y, y * 0.5], &p, &catalog, &net);
            assert_eq!(a, b, "tick {i} diverged after restore");
            t += 1.0;
        }
        assert_eq!(sc.state(), restored.state());
    }

    #[test]
    fn restore_state_rejects_mismatched_dimensions() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        let frozen = sc.state();
        let mut wrong = Autoscaler::new(cfg(), 0.5, 3, 3);
        assert!(wrong.restore_state(&frozen).is_err());
        let mut truncated = frozen.clone();
        truncated.caps.pop();
        assert!(sc.restore_state(&truncated).is_err());
        let mut corrupt = frozen.clone();
        if let Some(st) = corrupt.states.first_mut() {
            st.forecaster.alpha = 7.0;
        }
        assert!(sc.restore_state(&corrupt).is_err());
        // The good state still restores after the failed attempts.
        assert!(sc.restore_state(&frozen).is_ok());
    }

    #[test]
    fn confirm_overrides_optimistic_counts() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        sc.confirm(ServiceId(0), NodeId(0), 3);
        assert_eq!(sc.counts().get(ServiceId(0), NodeId(0)), 3);
        assert_eq!(sc.counts().total_of(ServiceId(0)), 4);
    }

    #[test]
    fn admission_is_open_when_disabled_and_sheds_overload_when_enabled() {
        let (catalog, net, p) = fixture();
        let mut sc = Autoscaler::new(cfg(), 0.5, 2, 3);
        sc.seed_from_placement(&p, &catalog, &net);
        // Disabled by default: admits anything.
        assert!(sc.admit(ServiceId(0), 12, 1e9));

        let mut strict = Autoscaler::new(
            AutoscaleConfig {
                admission: AdmissionPolicy {
                    enabled: true,
                    queue_limit: 2.0,
                    classes: 2,
                    strict_overload: 2.0,
                },
                ..cfg()
            },
            0.5,
            2,
            3,
        );
        strict.seed_from_placement(&p, &catalog, &net);
        // Service 0 capacity 8, queue_limit 2 -> overload 1.0 at 16.
        assert!(strict.admit(ServiceId(0), 1, 10.0)); // below capacity
        assert!(!strict.admit(ServiceId(0), 12, 17.0)); // low class sheds at 1.0
        assert!(strict.admit(ServiceId(0), 1, 17.0)); // high class holds on
        assert!(!strict.admit(ServiceId(0), 1, 33.0)); // strict limit sheds all
    }
}

//! C1-codec-coverage: checkpoint encode/decode parity auditing.
//!
//! PR 6's bit-identical checkpoint/replay guarantee is only as strong as
//! hand-maintained encode/decode parity: one struct field added without a
//! matching `put_*`/`get_*` line silently corrupts recovery. This pass makes
//! serialization drift fail lint instead.
//!
//! **Coverage.** A file is covered when it declares the snapshot version
//! constant (`const CKPT_VERSION`). Inside a covered file two kinds of
//! codec pairs are audited:
//!
//! - **Method pairs**: a type with a writer method (`to_bytes`/`encode`)
//!   and a reader (`from_bytes`/`decode`) whose struct definition is found
//!   anywhere in the workspace. Enums (tagged unions like `LogRecord`) have
//!   no named-field definition and are skipped — their arms are exercised
//!   by the round-trip tests instead.
//! - **Free-fn pairs**: `put_x`/`get_x` helper pairs. These must carry a
//!   `// LINT-CODEC: StructA[, StructB…]` marker comment above the writer
//!   naming the structs they serialize — a missing marker is itself a
//!   diagnostic, so new helpers cannot dodge the audit.
//!
//! **The parity rule.** For each audited (struct, writer, reader): every
//! named field must be written (as a `.field` access in the writer body)
//! and read (as a bare `field` binding/literal entry in the reader body),
//! and the *first occurrence* of each field on both sides must follow the
//! struct's declaration order — a length-prefixed byte format has no field
//! tags, so order *is* the schema. A missing field is reported at the
//! field's definition line; an order violation at the offending access.
//!
//! **Version discipline.** A covered file must carry a
//! `// CKPT-SHAPE(vN): <hash>` marker whose `N` equals `CKPT_VERSION` and
//! whose hash is the FNV-1a of all audited struct shapes. Changing any
//! audited struct changes the hash, so lint forces the author to bump
//! `CKPT_VERSION` *and* refresh the marker in the same change — shape
//! drift can't land silently even when encode/decode were both updated.

use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, test_gated_mask, LineView};
use crate::parser::{parse_file, tokenize, FnItem, StructDef, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Writer / reader method-name pairs recognized on impl types.
const WRITERS: [&str; 2] = ["to_bytes", "encode"];
const READERS: [&str; 2] = ["from_bytes", "decode"];

struct FileData {
    views: Vec<LineView>,
    toks: Vec<Tok>,
    fns: Vec<FnItem>,
    structs: Vec<StructDef>,
}

fn waived(views: &[LineView], line: usize) -> bool {
    if line == 0 || line > views.len() {
        return false;
    }
    matches!(
        allow_status(views, line - 1, Rule::C1CodecCoverage),
        AllowStatus::Allowed
    )
}

/// 64-bit FNV-1a over the audited shape description.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `LINT-CODEC: A, B` marker attached to the line (same line or contiguous
/// comment block above). Returns the named structs.
fn codec_marker(views: &[LineView], line: usize) -> Option<Vec<String>> {
    let parse = |comment: &str| -> Option<Vec<String>> {
        let pos = comment.find("LINT-CODEC:")?;
        let rest = &comment[pos + "LINT-CODEC:".len()..];
        Some(
            rest.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
        )
    };
    if line == 0 || line > views.len() {
        return None;
    }
    let idx = line - 1;
    if let Some(v) = parse(&views[idx].comment) {
        return Some(v);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let v = &views[j];
        if !v.is_code_blank() {
            break;
        }
        if let Some(out) = parse(&v.comment) {
            return Some(out);
        }
        if v.comment.trim().is_empty() && v.code.trim().is_empty() {
            break;
        }
    }
    None
}

/// `CKPT-SHAPE(vN): <hex>` marker anywhere in the file: (line, N, hex).
fn shape_marker(views: &[LineView]) -> Option<(usize, u32, String)> {
    for (idx, v) in views.iter().enumerate() {
        let Some(pos) = v.comment.find("CKPT-SHAPE(v") else {
            continue;
        };
        let rest = &v.comment[pos + "CKPT-SHAPE(v".len()..];
        let close = rest.find(')')?;
        let ver: u32 = rest[..close].trim().parse().ok()?;
        let after = rest[close + 1..].trim_start();
        let hex = after
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("")
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        return Some((idx + 1, ver, hex));
    }
    None
}

/// Value of `const CKPT_VERSION … = N` in the token stream: (line, N).
fn ckpt_version(toks: &[Tok]) -> Option<(usize, u32)> {
    for (i, t) in toks.iter().enumerate() {
        if t.kind.ident_is("CKPT_VERSION") {
            // const CKPT_VERSION: u32 = 1;
            let mut j = i + 1;
            while j < toks.len() && j < i + 8 {
                match &toks[j].kind {
                    TokKind::Punct("=") => {
                        if let Some(TokKind::Num(n)) = toks.get(j + 1).map(|t| &t.kind) {
                            if let Ok(v) = n.parse::<u32>() {
                                return Some((t.line, v));
                            }
                        }
                        return None;
                    }
                    TokKind::Punct(";") => break,
                    _ => {}
                }
                j += 1;
            }
        }
    }
    None
}

trait IdentIs {
    fn ident_is(&self, s: &str) -> bool;
}

impl IdentIs for TokKind {
    fn ident_is(&self, s: &str) -> bool {
        matches!(self, TokKind::Ident(i) if i == s)
    }
}

/// First occurrence (name, line) of each of `fields` as a *written* field —
/// `.name` accesses that are not method calls — in `toks[range]`.
fn write_occurrences(
    toks: &[Tok],
    range: (usize, usize),
    fields: &BTreeSet<&str>,
) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let end = range.1.min(toks.len());
    for i in range.0..end {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !fields.contains(name.as_str()) || seen.contains(name) {
            continue;
        }
        let prev_dot = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|t| t.kind == TokKind::Punct("."));
        let next_call = toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Punct("("));
        if prev_dot && !next_call {
            seen.insert(name.clone());
            out.push((name.clone(), toks[i].line));
        }
    }
    out
}

/// First occurrence (name, line) of each of `fields` as a *read* binding —
/// bare identifiers that are neither field projections, path segments nor
/// calls — in `toks[range]`.
fn read_occurrences(
    toks: &[Tok],
    range: (usize, usize),
    fields: &BTreeSet<&str>,
) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let end = range.1.min(toks.len());
    for i in range.0..end {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !fields.contains(name.as_str()) || seen.contains(name) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
        let bad_prev = matches!(prev, Some(TokKind::Punct("." | "::")));
        let next = toks.get(i + 1).map(|t| &t.kind);
        let is_call = matches!(next, Some(TokKind::Punct("(")))
            || (matches!(next, Some(TokKind::Punct("!")))
                && matches!(
                    toks.get(i + 2).map(|t| &t.kind),
                    Some(TokKind::Punct("(" | "[" | "{"))
                ));
        if !bad_prev && !is_call {
            seen.insert(name.clone());
            out.push((name.clone(), toks[i].line));
        }
    }
    out
}

struct StructRef<'a> {
    file: &'a str,
    def: &'a StructDef,
}

/// Run the C1 pass over the (library) file set.
pub fn check(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut data: BTreeMap<&str, FileData> = BTreeMap::new();
    for (rel, src) in files {
        let views = line_views(src);
        let mask = test_gated_mask(&views);
        let toks = tokenize(&views, &mask);
        let parsed = parse_file(rel, src);
        data.insert(
            rel.as_str(),
            FileData {
                views,
                toks,
                fns: parsed.fns,
                structs: parsed.structs,
            },
        );
    }
    // Workspace struct index. First definition wins on (unlikely) name
    // collisions; shapes are looked up by bare name because the codec
    // bodies refer to them by bare name too.
    let mut structs: BTreeMap<&str, StructRef> = BTreeMap::new();
    for (rel, fd) in &data {
        for def in &fd.structs {
            structs
                .entry(def.name.as_str())
                .or_insert(StructRef { file: rel, def });
        }
    }

    let mut out = Vec::new();
    for (rel, fd) in &data {
        let Some((ver_line, ver)) = ckpt_version(&fd.toks) else {
            continue; // not a covered codec file
        };
        // (struct, writer fn, reader fn) triples to audit.
        let mut audits: Vec<(&StructRef, &FnItem, &FnItem)> = Vec::new();
        let mut audited_shapes: BTreeSet<&str> = BTreeSet::new();

        // Method pairs, grouped by impl type.
        let mut by_type: BTreeMap<&str, (Option<&FnItem>, Option<&FnItem>)> = BTreeMap::new();
        for f in &fd.fns {
            let Some(ty) = f.type_name.as_deref() else {
                continue;
            };
            let slot = by_type.entry(ty).or_default();
            if WRITERS.contains(&f.name.as_str()) {
                slot.0 = Some(f);
            } else if READERS.contains(&f.name.as_str()) {
                slot.1 = Some(f);
            }
        }
        for (ty, (w, r)) in &by_type {
            if let (Some(w), Some(r)) = (w, r) {
                if let Some(sr) = structs.get(ty) {
                    if !sr.def.fields.is_empty() {
                        audits.push((sr, w, r));
                        audited_shapes.insert(sr.def.name.as_str());
                    }
                }
            }
        }

        // Free-fn pairs `put_x`/`get_x`.
        for f in &fd.fns {
            if f.type_name.is_some() {
                continue;
            }
            let Some(suffix) = f.name.strip_prefix("put_") else {
                continue;
            };
            let getter = format!("get_{suffix}");
            let Some(r) = fd
                .fns
                .iter()
                .find(|g| g.type_name.is_none() && g.name == getter)
            else {
                continue;
            };
            match codec_marker(&fd.views, f.line) {
                None => {
                    if !waived(&fd.views, f.line) {
                        out.push(Diagnostic {
                            file: rel.to_string(),
                            line: f.line,
                            rule: Rule::C1CodecCoverage,
                            message: format!(
                                "codec pair `{}`/`{getter}` has no `LINT-CODEC:` \
                                 marker naming the structs it serializes; add \
                                 `// LINT-CODEC: StructName` above the writer so \
                                 the coverage audit can see it",
                                f.name
                            ),
                        });
                    }
                }
                Some(names) => {
                    for name in &names {
                        match structs.get(name.as_str()) {
                            Some(sr) if !sr.def.fields.is_empty() => {
                                audits.push((sr, f, r));
                                audited_shapes.insert(sr.def.name.as_str());
                            }
                            _ => {
                                if !waived(&fd.views, f.line) {
                                    out.push(Diagnostic {
                                        file: rel.to_string(),
                                        line: f.line,
                                        rule: Rule::C1CodecCoverage,
                                        message: format!(
                                            "LINT-CODEC marker names `{name}`, but no \
                                             named-field struct of that name exists in \
                                             the linted workspace"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- Field coverage + order, per audit -----------------------
        for (sr, w, r) in &audits {
            let fields: Vec<&str> = sr.def.fields.iter().map(|f| f.name.as_str()).collect();
            let fset: BTreeSet<&str> = fields.iter().copied().collect();
            let sides = [
                ("written", w, write_occurrences(&fd.toks, w.body, &fset)),
                ("read", r, read_occurrences(&fd.toks, r.body, &fset)),
            ];
            for (verb, codec_fn, got) in &sides {
                let got_set: BTreeSet<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
                // Missing fields → field-level diagnostics at the struct def.
                for field in &sr.def.fields {
                    if got_set.contains(field.name.as_str()) {
                        continue;
                    }
                    let def_views = &data[sr.file].views;
                    if waived(def_views, field.line) || waived(&fd.views, codec_fn.line) {
                        continue;
                    }
                    out.push(Diagnostic {
                        file: sr.file.to_string(),
                        line: field.line,
                        rule: Rule::C1CodecCoverage,
                        message: format!(
                            "field `{}` of `{}` is never {verb} by `{}` ({rel}); \
                             the checkpoint byte format silently drifts — wire the \
                             field through and bump CKPT_VERSION",
                            field.name, sr.def.name, codec_fn.name
                        ),
                    });
                }
                // Order: first occurrences must follow declaration order.
                let expected: Vec<&str> = fields
                    .iter()
                    .copied()
                    .filter(|f| got_set.contains(f))
                    .collect();
                for (k, (name, line)) in got.iter().enumerate() {
                    if expected.get(k).copied() == Some(name.as_str()) {
                        continue;
                    }
                    if !waived(&fd.views, *line) {
                        out.push(Diagnostic {
                            file: rel.to_string(),
                            line: *line,
                            rule: Rule::C1CodecCoverage,
                            message: format!(
                                "field `{name}` of `{}` {verb} out of declaration \
                                 order by `{}` (expected `{}` here); the untagged \
                                 byte format makes order part of the schema",
                                sr.def.name,
                                codec_fn.name,
                                expected.get(k).copied().unwrap_or("<none>")
                            ),
                        });
                    }
                    break; // one order diagnostic per side is enough
                }
            }
        }

        // ---- Shape hash / version discipline -------------------------
        if audits.is_empty() {
            continue;
        }
        let mut shape = String::new();
        for name in &audited_shapes {
            let def = structs[name].def;
            shape.push_str(name);
            shape.push('{');
            for (i, f) in def.fields.iter().enumerate() {
                if i > 0 {
                    shape.push(',');
                }
                shape.push_str(&f.name);
            }
            shape.push_str("};");
        }
        let hash = format!("{:016x}", fnv1a(&shape));
        match shape_marker(&fd.views) {
            None => {
                if !waived(&fd.views, ver_line) {
                    out.push(Diagnostic {
                        file: rel.to_string(),
                        line: ver_line,
                        rule: Rule::C1CodecCoverage,
                        message: format!(
                            "covered codec file has no `CKPT-SHAPE` marker; add \
                             `// CKPT-SHAPE(v{ver}): {hash}` next to CKPT_VERSION \
                             so shape drift forces a version bump"
                        ),
                    });
                }
            }
            Some((mline, mver, mhash)) => {
                if mhash != hash && !waived(&fd.views, mline) {
                    out.push(Diagnostic {
                        file: rel.to_string(),
                        line: mline,
                        rule: Rule::C1CodecCoverage,
                        message: format!(
                            "checkpoint shape changed (audited shape hash {hash}, \
                             marker records {mhash}); bump CKPT_VERSION and refresh \
                             the marker to `CKPT-SHAPE(v{}): {hash}`",
                            ver + 1
                        ),
                    });
                } else if mver != ver && !waived(&fd.views, mline) {
                    out.push(Diagnostic {
                        file: rel.to_string(),
                        line: mline,
                        rule: Rule::C1CodecCoverage,
                        message: format!(
                            "CKPT-SHAPE marker says v{mver} but `const CKPT_VERSION` \
                             is {ver}; keep the marker version in lockstep with the \
                             constant"
                        ),
                    });
                }
            }
        }
    }
    out
}

//! Interprocedural taint passes: T1 determinism-taint and T2
//! panic-reachability over the [`crate::callgraph`] graph.
//!
//! Both passes work the same way: seed functions whose bodies touch a
//! *source primitive* (wall clock, ambient RNG, env/fs reads, hash-ordered
//! containers, thread identity for T1; the `unwrap`/`panic!` family for T2),
//! then walk the call graph forward from every *entry point* — every `pub`
//! fn in library-kind code — and report each source site that is reachable,
//! with the full call chain from the entry that reaches it.
//!
//! Waivers are *taint barriers*:
//! - at a **source line**, `LINT-ALLOW(T1-nondet-taint)` (or the legacy
//!   token rule covering that primitive: `L3-nondet-time`, `L3-nondet-hash`)
//!   un-seeds the site — sanctioned wrappers like `Stopwatch` stop taint at
//!   the primitive they encapsulate;
//! - at a **call line**, `LINT-ALLOW(T1-nondet-taint)` breaks that edge, so
//!   a caller can vouch for one call without blessing the callee globally.
//!
//! T2 accepts `T2-panic-reach` and the legacy `L2-panic-free` the same way.

use crate::callgraph::Graph;
use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, LineView};
use crate::parser::SourceKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which taint pass to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    Determinism,
    PanicReach,
}

impl Pass {
    fn rule(self) -> Rule {
        match self {
            Pass::Determinism => Rule::T1NondetTaint,
            Pass::PanicReach => Rule::T2PanicReach,
        }
    }

    /// Does this pass treat `kind` as a source?
    fn covers(self, kind: SourceKind) -> bool {
        match self {
            Pass::Determinism => kind != SourceKind::Panic,
            Pass::PanicReach => kind == SourceKind::Panic,
        }
    }

    /// Rules whose waiver neutralizes a source of `kind` for this pass.
    fn source_waiver_rules(self, kind: SourceKind) -> Vec<Rule> {
        match self {
            Pass::PanicReach => vec![Rule::T2PanicReach, Rule::L2PanicFree],
            Pass::Determinism => {
                let mut rules = vec![Rule::T1NondetTaint];
                match kind {
                    SourceKind::Time | SourceKind::Rng => rules.push(Rule::L3Time),
                    SourceKind::Hash => rules.push(Rule::L3Hash),
                    _ => {}
                }
                rules
            }
        }
    }

    fn noun(self, kind: SourceKind) -> &'static str {
        match (self, kind) {
            (_, SourceKind::Panic) => "panic",
            (_, SourceKind::Time) => "wall clock",
            (_, SourceKind::Rng) => "ambient RNG",
            (_, SourceKind::Env) => "process environment",
            (_, SourceKind::Fs) => "filesystem",
            (_, SourceKind::Hash) => "hash-ordered iteration",
            (_, SourceKind::Thread) => "thread identity",
        }
    }
}

/// Run both taint passes over the graph. `files` must be the same set the
/// graph was built from (used to evaluate waivers at source/call lines).
pub fn check(files: &[(String, String)], graph: &Graph) -> Vec<Diagnostic> {
    let views: BTreeMap<&str, Vec<LineView>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), line_views(src)))
        .collect();
    let mut out = Vec::new();
    for pass in [Pass::Determinism, Pass::PanicReach] {
        out.extend(run_pass(pass, graph, &views));
    }
    out
}

fn waived(views: &BTreeMap<&str, Vec<LineView>>, file: &str, line: usize, rules: &[Rule]) -> bool {
    let Some(v) = views.get(file) else {
        return false;
    };
    if line == 0 || line > v.len() {
        return false;
    }
    rules
        .iter()
        .any(|r| matches!(allow_status(v, line - 1, *r), AllowStatus::Allowed))
}

fn run_pass(pass: Pass, graph: &Graph, views: &BTreeMap<&str, Vec<LineView>>) -> Vec<Diagnostic> {
    // Seed: unwaived source sites per node.
    let mut seeds: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()]; // hit indices
    for (ni, node) in graph.nodes.iter().enumerate() {
        for (hi, hit) in node.item.sources.iter().enumerate() {
            if !pass.covers(hit.kind) {
                continue;
            }
            let rules = pass.source_waiver_rules(hit.kind);
            if waived(views, &node.file, hit.line, &rules) {
                continue;
            }
            seeds[ni].push(hi);
        }
    }

    // Forward BFS from all entry points at once; first visit wins, which
    // yields a shortest chain from *some* entry for every reached node.
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut visited: Vec<bool> = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.item.is_pub {
            visited[ni] = true;
            queue.push_back(ni);
        }
    }
    let edge_rule = [pass.rule()];
    while let Some(ni) = queue.pop_front() {
        for &ei in &graph.fwd[ni] {
            let e = graph.edges[ei];
            if visited[e.to] {
                continue;
            }
            // A waiver on the call line breaks this edge.
            if waived(views, &graph.nodes[ni].file, e.line, &edge_rule) {
                continue;
            }
            visited[e.to] = true;
            parent[e.to] = Some(ni);
            queue.push_back(e.to);
        }
    }

    // Emit one diagnostic per reachable, unwaived source site.
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (ni, hits) in seeds.iter().enumerate() {
        if hits.is_empty() || !visited[ni] {
            continue;
        }
        // Reconstruct the chain entry → … → ni.
        let mut chain = vec![ni];
        let mut cur = ni;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let chain_str = chain
            .iter()
            .map(|&k| graph.nodes[k].item.qual.as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        let node = &graph.nodes[ni];
        for &hi in hits {
            let hit = &node.item.sources[hi];
            if !seen.insert((node.file.clone(), hit.line, hit.what.clone())) {
                continue;
            }
            let entry = graph.nodes[chain[0]].item.qual.as_str();
            let message = if chain.len() == 1 {
                format!(
                    "`{}` ({}) in pub fn `{entry}` (itself an entry point); \
                     route it through a sanctioned wrapper or add a \
                     `LINT-ALLOW({})` barrier",
                    hit.what,
                    pass.noun(hit.kind),
                    pass.rule().id()
                )
            } else {
                format!(
                    "`{}` ({}) reachable from pub `{entry}`; call chain: {chain_str}",
                    hit.what,
                    pass.noun(hit.kind)
                )
            };
            out.push(Diagnostic {
                file: node.file.clone(),
                line: hit.line,
                rule: pass.rule(),
                message,
            });
        }
    }
    out
}

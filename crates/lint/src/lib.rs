//! # socl-lint — workspace invariant linter for the SoCL reproduction
//!
//! The workspace's determinism and numerical-safety contract (DESIGN.md,
//! "Enforced invariants") is enforced mechanically by this crate rather than
//! by prose. It is a dependency-free token-level analyzer (comments and
//! string literals are stripped by a small lexer; `#[cfg(test)]` bodies are
//! masked out) that checks four rule families over every `crates/*/src`
//! file:
//!
//! | rule | contract |
//! |------|----------|
//! | `L1-float-cmp`  | no raw f64 comparisons (`partial_cmp`, NaN-collapsing `unwrap_or(Equal)`, bare `f64` `BinaryHeap` keys) outside the NaN-safe wrappers |
//! | `L2-panic-free` | no `unwrap`/`expect`/`panic!`-family in library code (bins, benches, tests exempt) |
//! | `L3-nondet-time`| no `Instant::now`/`SystemTime::now`/`thread_rng`/`from_entropy` outside `crates/bench` |
//! | `L3-nondet-hash`| no `HashMap`/`HashSet` in deterministic code |
//! | `L4-unsafe-doc` | every `unsafe` carries a `// SAFETY:` comment |
//!
//! Residual uses that are genuinely sound carry an inline waiver the linter
//! parses and validates:
//!
//! ```text
//! // LINT-ALLOW(L2-panic-free): mutex poisoning is converted to a panic
//! // that std::thread::scope already propagates to the caller.
//! let guard = lock.lock().unwrap();
//! ```
//!
//! A waiver must name the rule (full id or the `L1`…`L4` shorthand) and give
//! a non-empty reason; a reason-less waiver is itself reported.
//!
//! Run as `cargo run -p socl-lint -- check`. Diagnostics use the stable
//! format `file:line:rule: message`; exit code is `0` clean / `1` violations
//! / `2` internal error, so CI and editors can parse and gate on it.

pub mod engine;
pub mod lexer;

pub use engine::{classify, lint_source, lint_workspace, Diagnostic, FileKind, Rule};

/// Find the workspace root: walk up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}

//! # socl-lint — workspace invariant linter for the SoCL reproduction
//!
//! The workspace's determinism and numerical-safety contract (DESIGN.md,
//! "Enforced invariants") is enforced mechanically by this crate rather than
//! by prose. It is dependency-free and layered:
//!
//! 1. a small **lexer** strips comments/strings and masks `#[cfg(test)]`
//!    regions, then token-level checks run per line;
//! 2. an item-level **parser** + **call graph** resolve `fn`/`impl`/`use`
//!    items workspace-wide, feeding interprocedural reachability passes.
//!
//! | rule | contract |
//! |------|----------|
//! | `L1-float-cmp`  | no raw f64 comparisons (`partial_cmp`, NaN-collapsing `unwrap_or(Equal)`, bare `f64` `BinaryHeap` keys) outside the NaN-safe wrappers |
//! | `L2-panic-free` | no `unwrap`/`expect`/`panic!`-family in library code (bins, benches, tests exempt) |
//! | `L3-nondet-time`| no `Instant::now`/`SystemTime::now`/`thread_rng`/`from_entropy` outside `crates/bench` |
//! | `L3-nondet-hash`| no `HashMap`/`HashSet` in deterministic code |
//! | `L4-unsafe-doc` | every `unsafe` carries a `// SAFETY:` comment |
//! | `T1-nondet-taint` | no nondeterminism source (clock, ambient RNG, hash order, thread id, env, fs) *reachable* from a `pub` library entry point |
//! | `T2-panic-reach`  | no panic-family call reachable from a `pub` library entry point |
//! | `T3-units`        | suffix-declared units (`_s`, `_gb`, `_gbps`, `_gflop`, …) combine dimensionally in the latency/objective arithmetic |
//! | `A1-hot-alloc`    | no allocation primitive executes inside a loop of a hot entry point (APSP builds, routing DP, online step, scaler tick, cache repair) |
//! | `C1-codec-coverage` | every checkpointed struct field is written and read by its codec pair in declaration order, and shape drift forces a `CKPT_VERSION` bump |
//! | `X1-lock-discipline` | no second `.lock()` while a guard is live, no guard held across a pool dispatch or loop-allocating call, no lock inside a sequential loop |
//! | `X2-capture-disjoint` | closures dispatched to the pool share mutable state only through the index-tagged `Mutex` bucket or per-worker scratch patterns |
//! | `X3-order-restore` | parallel aggregation into a shared collection is index-tagged and re-sorted before the contents escape |
//! | `W0-stale-waiver` | (via `--stale-waivers`) every `LINT-ALLOW`/`LINT-HOT` marker still suppresses at least one diagnostic |
//! | `P0-parse`        | the item parser could structure the file (otherwise T1/T2 are blind there — reported as a finding, not a crash) |
//!
//! The taint passes report the *shortest call chain* from an entry point to
//! the offending source, so the diagnostic names the path to cut. Residual
//! uses that are genuinely sound carry an inline waiver the linter parses
//! and validates:
//!
//! ```text
//! // LINT-ALLOW(L2-panic-free): mutex poisoning is converted to a panic
//! // that std::thread::scope already propagates to the caller.
//! let guard = lock.lock().unwrap();
//! ```
//!
//! A waiver must name the rule (full id or the `L1`…`T3` shorthand) and give
//! a non-empty reason; a reason-less waiver is itself reported. Waivers
//! double as **taint barriers**: at a source line they silence every chain
//! to that source (legacy `L2`/`L3` waivers count for `T2`/`T1`), at a call
//! line they sever just that edge.
//!
//! Run as `cargo run -p socl-lint -- check [--json] [--passes
//! token,taint,units,alloc,codec,lock,capture,order] [--stale-waivers]`.
//! Diagnostics use the stable format `file:line:rule: message`; exit code
//! is `0` clean / `1` violations (including `P0-parse`) / `2` internal
//! error, so CI and editors can parse and gate on it. `--stale-waivers`
//! swaps the check for the waiver audit: each `LINT-ALLOW`/`LINT-HOT`
//! marker is masked in turn and re-linted; markers that change nothing are
//! reported as `W0-stale-waiver`.

pub mod alloc;
pub mod callgraph;
pub mod capture;
pub mod codec_cov;
pub mod conc;
pub mod engine;
pub mod lexer;
pub mod lock;
pub mod parser;
pub mod reduction;
pub mod taint;
pub mod units;

pub use engine::{classify, lint_source, lint_workspace, Diagnostic, FileKind, Rule};

/// Find the workspace root: walk up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}

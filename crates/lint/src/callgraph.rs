//! Workspace symbol table and call graph over [`crate::parser`] output.
//!
//! Resolution is deliberately an *over*-approximation: a method call
//! `.name(…)` whose receiver type is unknown resolves to the union of all
//! workspace methods with that name. For reachability taint this direction
//! of error is the safe one — a spurious edge can only make the analysis
//! report a chain that a human then inspects; it can never hide a real
//! chain. Calls that resolve to nothing (std / external crates) simply have
//! no edge; the taint passes see the primitives themselves as sources
//! instead (`Instant::now`, `.unwrap()`, …), so unresolved externals do not
//! create blind spots for the contracts being checked.

use crate::parser::{parse_file, CallSite, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file path.
    pub file: String,
    /// Crate name (`socl_core`).
    pub crate_name: String,
    /// Module path inside the crate (derived from the file and inline mods).
    pub mods: Vec<String>,
    pub item: FnItem,
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// 1-based line of the call site in `from`'s file.
    pub line: usize,
    /// Syntactic loop depth of the call site inside `from`'s body.
    pub loop_depth: usize,
    /// Token index of the call site's first path token in `from`'s file —
    /// lets the concurrency passes order calls against guard live ranges.
    pub tok: usize,
    /// Call-site id, unique across the graph: an ambiguous method call fans
    /// out into several edges sharing one `site`, so passes can reason about
    /// the candidate *set* instead of each maybe-target in isolation.
    pub site: usize,
    /// False when this edge came from a name-union over several candidate
    /// methods — the callee is one possibility, not a known target. Taint
    /// passes ignore this (over-approximation is the safe direction for
    /// reachability); precision-sensitive passes like `A1-hot-alloc` only
    /// trust an ambiguous site when *every* candidate misbehaves.
    pub certain: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    pub fwd: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub rev: Vec<Vec<usize>>,
    /// Structural parse problems: (file, line, message).
    pub parse_errors: Vec<(String, usize, String)>,
    qual_index: BTreeMap<String, usize>,
    name_index: BTreeMap<String, Vec<usize>>,
    /// Methods (fns with an enclosing type) by bare name.
    method_index: BTreeMap<String, Vec<usize>>,
}

/// Per-file resolution context.
struct FileCtx {
    crate_name: String,
    /// `use` aliases: alias → full path segments (globs under alias `"*"`).
    uses: Vec<(String, Vec<String>)>,
}

impl Graph {
    /// Build the graph from `(workspace-relative path, source)` pairs.
    /// Callers choose the file set (the taint pass feeds it library-kind
    /// files only).
    pub fn build(files: &[(String, String)]) -> Graph {
        let mut g = Graph::default();
        let mut ctxs: Vec<FileCtx> = Vec::new();
        let mut node_file_ctx: Vec<usize> = Vec::new();

        for (rel, src) in files {
            let parsed = parse_file(rel, src);
            let (crate_name, _) = crate::parser::module_of(rel);
            for (line, msg) in &parsed.errors {
                g.parse_errors.push((rel.clone(), *line, msg.clone()));
            }
            let ctx_idx = ctxs.len();
            ctxs.push(FileCtx {
                crate_name: crate_name.clone(),
                uses: parsed.uses.clone(),
            });
            for item in parsed.fns {
                let idx = g.nodes.len();
                let mods = mods_of(&item, &crate_name);
                g.qual_index.insert(item.qual.clone(), idx);
                g.name_index.entry(item.name.clone()).or_default().push(idx);
                if item.type_name.is_some() {
                    g.method_index
                        .entry(item.name.clone())
                        .or_default()
                        .push(idx);
                }
                g.nodes.push(FnNode {
                    file: rel.clone(),
                    crate_name: crate_name.clone(),
                    mods,
                    item,
                });
                node_file_ctx.push(ctx_idx);
            }
        }

        // Resolve call sites into edges.
        let mut edges = Vec::new();
        let mut site = 0usize;
        for idx in 0..g.nodes.len() {
            let ctx = &ctxs[node_file_ctx[idx]];
            let calls = g.nodes[idx].item.calls.clone();
            for call in &calls {
                let targets = g.resolve(idx, call, ctx);
                if targets.is_empty() {
                    continue;
                }
                let certain = targets.len() == 1;
                for to in targets {
                    edges.push(Edge {
                        from: idx,
                        to,
                        line: call.line,
                        loop_depth: call.loop_depth,
                        tok: call.tok,
                        site,
                        certain,
                    });
                }
                site += 1;
            }
        }
        edges.sort_by_key(|e| (e.from, e.to, e.line, e.loop_depth, e.site));
        edges.dedup();
        g.fwd = vec![Vec::new(); g.nodes.len()];
        g.rev = vec![Vec::new(); g.nodes.len()];
        for (ei, e) in edges.iter().enumerate() {
            g.fwd[e.from].push(ei);
            g.rev[e.to].push(ei);
        }
        g.edges = edges;
        g
    }

    /// Index of the node with this fully-qualified path.
    pub fn node_by_qual(&self, qual: &str) -> Option<usize> {
        self.qual_index.get(qual).copied()
    }

    /// Node indices of every function with this bare name — the name-union
    /// the capture pass resolves captured identifiers through (same
    /// over-approximation the method resolver uses, gated by the caller).
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.name_index.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Sorted, deduplicated callee quals of a function — for golden tests.
    pub fn callees_of(&self, qual: &str) -> Vec<String> {
        let Some(idx) = self.node_by_qual(qual) else {
            return Vec::new();
        };
        let mut out: BTreeSet<String> = BTreeSet::new();
        for &ei in &self.fwd[idx] {
            out.insert(self.nodes[self.edges[ei].to].item.qual.clone());
        }
        out.into_iter().collect()
    }

    /// Resolve one call site to candidate node indices.
    fn resolve(&self, from: usize, call: &CallSite, ctx: &FileCtx) -> Vec<usize> {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        let node = &self.nodes[from];

        if call.method {
            let name = &call.path[0];
            // `self.helper()` — prefer methods of the enclosing type.
            if call.recv_self {
                if let Some(ty) = &node.item.type_name {
                    let exact: Vec<usize> = self
                        .method_index
                        .get(name)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&m| {
                                    self.nodes[m].item.type_name.as_deref() == Some(ty)
                                        && self.nodes[m].crate_name == node.crate_name
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    if !exact.is_empty() {
                        return exact;
                    }
                }
            }
            // Unknown receiver: union of all same-name methods.
            if let Some(v) = self.method_index.get(name) {
                out.extend(v.iter().copied());
            }
            return out.into_iter().collect();
        }

        let full = self.expand_path(&call.path, node, ctx);
        let joined = full.join("::");

        // 1. Exact qualified match.
        if let Some(&idx) = self.qual_index.get(&joined) {
            return vec![idx];
        }

        // 2. Same-module / same-scope candidates.
        let mut prefixed = vec![node.crate_name.clone()];
        prefixed.extend(node.mods.iter().cloned());
        prefixed.extend(full.iter().cloned());
        if let Some(&idx) = self.qual_index.get(&prefixed.join("::")) {
            return vec![idx];
        }

        // 3. Glob imports: `use a::b::*;` puts `a::b::name` in scope.
        for (alias, base) in &ctx.uses {
            if alias == "*" {
                let mut p = self.normalize_head(base, node);
                p.extend(full.iter().cloned());
                if let Some(&idx) = self.qual_index.get(&p.join("::")) {
                    out.insert(idx);
                }
            }
        }
        if !out.is_empty() {
            return out.into_iter().collect();
        }

        // 4. Suffix fallback: any fn whose qual ends with the written path.
        //    (`paths::transfer_time` matches `socl_net::paths::transfer_time`.)
        if let (true, Some(last)) = (full.len() >= 2, full.last()) {
            if let Some(cands) = self.name_index.get(last) {
                let suffix = format!("::{joined}");
                for &c in cands {
                    if self.nodes[c].item.qual.ends_with(&suffix) {
                        out.insert(c);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Expand `crate`/`self`/`super`/`Self`/use-alias heads of a call path.
    fn expand_path(&self, path: &[String], node: &FnNode, ctx: &FileCtx) -> Vec<String> {
        let head = &path[0];
        let rest = &path[1..];
        let mut out: Vec<String>;
        match head.as_str() {
            "crate" => {
                out = vec![ctx.crate_name.clone()];
            }
            "self" => {
                out = vec![ctx.crate_name.clone()];
                out.extend(node.mods.iter().cloned());
            }
            "super" => {
                out = vec![ctx.crate_name.clone()];
                let n = node.mods.len().saturating_sub(1);
                out.extend(node.mods[..n].iter().cloned());
            }
            "Self" => {
                out = vec![ctx.crate_name.clone()];
                out.extend(node.mods.iter().cloned());
                if let Some(ty) = &node.item.type_name {
                    out.push(ty.clone());
                }
            }
            _ => {
                if let Some((_, base)) = ctx.uses.iter().find(|(a, _)| a == head) {
                    out = self.normalize_head(base, node);
                } else {
                    out = vec![head.clone()];
                }
            }
        }
        out.extend(rest.iter().cloned());
        out
    }

    /// Normalize the head of a `use` path (`crate::x` → `socl_foo::x`).
    fn normalize_head(&self, base: &[String], node: &FnNode) -> Vec<String> {
        let mut out = Vec::new();
        match base.first().map(String::as_str) {
            Some("crate") => {
                out.push(node.crate_name.clone());
                out.extend(base[1..].iter().cloned());
            }
            Some("super") => {
                out.push(node.crate_name.clone());
                let n = node.mods.len().saturating_sub(1);
                out.extend(node.mods[..n].iter().cloned());
                out.extend(base[1..].iter().cloned());
            }
            Some("self") => {
                out.push(node.crate_name.clone());
                out.extend(node.mods.iter().cloned());
                out.extend(base[1..].iter().cloned());
            }
            _ => out.extend(base.iter().cloned()),
        }
        out
    }
}

/// Module path of a fn: its qual minus crate, type and name segments.
fn mods_of(item: &FnItem, crate_name: &str) -> Vec<String> {
    let mut segs: Vec<String> = item.qual.split("::").map(str::to_string).collect();
    if segs.first().map(String::as_str) == Some(crate_name) {
        segs.remove(0);
    }
    segs.pop(); // fn name
    if item.type_name.is_some() {
        segs.pop(); // type
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_file_graph() -> Graph {
        let files = vec![
            (
                "crates/core/src/solve.rs".to_string(),
                "use socl_model::util::now_ms;\n\
                 pub fn entry() { now_ms(); local(); }\n\
                 fn local() { crate::solve::leaf(); }\n\
                 pub fn leaf() {}\n"
                    .to_string(),
            ),
            (
                "crates/model/src/util.rs".to_string(),
                "pub fn now_ms() -> u64 { helper() }\nfn helper() -> u64 { 0 }\n".to_string(),
            ),
        ];
        Graph::build(&files)
    }

    #[test]
    fn cross_crate_use_alias_resolves() {
        let g = two_file_graph();
        assert_eq!(
            g.callees_of("socl_core::solve::entry"),
            vec!["socl_core::solve::local", "socl_model::util::now_ms"]
        );
    }

    #[test]
    fn crate_prefixed_path_resolves() {
        let g = two_file_graph();
        assert_eq!(
            g.callees_of("socl_core::solve::local"),
            vec!["socl_core::solve::leaf"]
        );
    }

    #[test]
    fn same_module_call_resolves() {
        let g = two_file_graph();
        assert_eq!(
            g.callees_of("socl_model::util::now_ms"),
            vec!["socl_model::util::helper"]
        );
    }

    #[test]
    fn self_method_prefers_enclosing_type() {
        let files = vec![(
            "crates/net/src/x.rs".to_string(),
            "struct A;\nimpl A { pub fn run(&self) { self.step(); } fn step(&self) {} }\n\
             struct B;\nimpl B { fn step(&self) {} }\n"
                .to_string(),
        )];
        let g = Graph::build(&files);
        assert_eq!(
            g.callees_of("socl_net::x::A::run"),
            vec!["socl_net::x::A::step"]
        );
    }

    #[test]
    fn unknown_receiver_unions_methods() {
        let files = vec![(
            "crates/net/src/x.rs".to_string(),
            "struct A;\nimpl A { pub fn step(&self) {} }\n\
             struct B;\nimpl B { pub fn step(&self) {} }\n\
             pub fn drive(v: &A) { v.step(); }\n"
                .to_string(),
        )];
        let g = Graph::build(&files);
        assert_eq!(
            g.callees_of("socl_net::x::drive"),
            vec!["socl_net::x::A::step", "socl_net::x::B::step"]
        );
    }

    #[test]
    fn unresolved_externals_have_no_edges() {
        let files = vec![(
            "crates/net/src/x.rs".to_string(),
            "pub fn f() { Vec::<f64>::with_capacity(4); format_args(); }\n".to_string(),
        )];
        let g = Graph::build(&files);
        assert!(g.callees_of("socl_net::x::f").is_empty());
    }
}

//! X2-capture-disjoint: closures handed to the deterministic pool
//! (`par_map*` dispatch sites) or to scoped `.spawn(…)` may share mutable
//! state only through the sanctioned patterns:
//!
//! * the **index-tagged Mutex bucket** — capture a `Mutex`-wrapped
//!   collection, lock it (directly or via `lock_recover`), push
//!   `(index, value)` tuples (X3 audits the tag + re-sort discipline);
//! * **per-worker scratch** — `par_map_scratch_with` hands each worker its
//!   own scratch value, so the closure's mutable state is a parameter, not
//!   a capture.
//!
//! Everything else is a finding:
//!
//! * a captured identifier used mutably (`&mut` borrow, mutator method,
//!   assignment) — scoped threads make disjoint `&mut` captures compile,
//!   and the resulting write interleaving is scheduler-dependent;
//! * a captured identifier *called* inside the closure that resolves —
//!   via the call graph's bare-name union, gated like PR 8's A1 (every
//!   same-name candidate must misbehave) — to a function with interior
//!   mutability (it transitively takes a lock). The closure looks pure at
//!   the dispatch site while the callee serializes workers on hidden
//!   shared state; the diagnostic carries the capture site and the
//!   witness chain down to the lock.
//!
//! Waivers: `LINT-ALLOW(X2-capture-disjoint)` on the diagnosis line (the
//! mutating use, or the capture's first occurrence for the call-resolution
//! case).

use crate::callgraph::Graph;
use crate::conc::Summaries;
use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, LineView};
use crate::parser::SyncKind;
use std::collections::{BTreeMap, BTreeSet};

/// Helpers a dispatched closure may always call: the never-panicking
/// guard helper is *how* the sanctioned bucket pattern locks, so its own
/// interior mutability is the point, not a finding.
const SANCTIONED_CALLS: [&str; 1] = ["lock_recover"];

fn waived(views: &BTreeMap<&str, Vec<LineView>>, file: &str, line: usize) -> bool {
    let Some(v) = views.get(file) else {
        return false;
    };
    if line == 0 || line > v.len() {
        return false;
    }
    matches!(
        allow_status(v, line - 1, Rule::X2CaptureDisjoint),
        AllowStatus::Allowed
    )
}

/// Run the X2 pass. `files` must be the set the graph was built from.
pub fn check(files: &[(String, String)], graph: &Graph, summ: &Summaries) -> Vec<Diagnostic> {
    let views: BTreeMap<&str, Vec<LineView>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), line_views(src)))
        .collect();

    let mut out = Vec::new();
    let mut emitted: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for node in graph.nodes.iter() {
        let item = &node.item;
        for s in &item.sync {
            if !matches!(s.kind, SyncKind::Dispatch | SyncKind::Spawn) {
                continue;
            }
            for &ci in &s.closures {
                let closure = &item.closures[ci];
                for cap in &closure.captures {
                    if SANCTIONED_CALLS.contains(&cap.name.as_str()) {
                        continue;
                    }
                    // A mutable use of a captured outer identifier.
                    if let Some((mline, desc)) = &cap.raw_mut {
                        if !waived(&views, &node.file, *mline)
                            && emitted.insert((node.file.clone(), *mline, cap.name.clone()))
                        {
                            out.push(Diagnostic {
                                file: node.file.clone(),
                                line: *mline,
                                rule: Rule::X2CaptureDisjoint,
                                message: format!(
                                    "closure dispatched via `{}` (line {}) mutates \
                                     captured `{}` ({desc}) — shared mutable capture \
                                     outside the index-tagged Mutex bucket / \
                                     per-worker scratch patterns; push index-tagged \
                                     values through a Mutex (and re-sort), return \
                                     values from the closure, or justify with \
                                     `LINT-ALLOW({})`",
                                    s.what,
                                    s.line,
                                    cap.name,
                                    Rule::X2CaptureDisjoint.id()
                                ),
                            });
                        }
                        continue;
                    }
                    // A captured identifier called inside the closure that
                    // resolves to a fn with interior mutability. Gate: the
                    // bare-name union must be non-empty and unanimous.
                    if cap.called && !cap.locked {
                        let cands = graph.fns_named(&cap.name);
                        if cands.is_empty() || !cands.iter().all(|&k| summ.interior.has[k]) {
                            continue;
                        }
                        if waived(&views, &node.file, cap.line)
                            || !emitted.insert((node.file.clone(), cap.line, cap.name.clone()))
                        {
                            continue;
                        }
                        let target = cands[0];
                        out.push(Diagnostic {
                            file: node.file.clone(),
                            line: cap.line,
                            rule: Rule::X2CaptureDisjoint,
                            message: format!(
                                "captured `{}` is called inside a closure dispatched \
                                 via `{}` (line {}) and resolves to `{}`, which takes \
                                 a lock ({}) — hidden shared state serializes the \
                                 workers; hoist the locked work out of the closure, \
                                 or justify with `LINT-ALLOW({})`",
                                cap.name,
                                s.what,
                                s.line,
                                graph.nodes[target].item.qual,
                                summ.interior.witness(graph, target),
                                Rule::X2CaptureDisjoint.id()
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

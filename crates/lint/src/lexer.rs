//! A minimal, dependency-free lexical pass over Rust source.
//!
//! The linter does not need a full AST: every invariant it enforces (L1–L4)
//! is recognizable from the token stream once comments and string literals
//! are stripped. This module produces, for each source line, a *code view*
//! (the line with comment and string-literal interiors blanked to spaces,
//! byte-for-byte the same length) and a *comment view* (the concatenated
//! comment text of the line, where `LINT-ALLOW` and `SAFETY:` directives
//! live).
//!
//! Handled syntax: `//` line comments, nested `/* */` block comments,
//! `"…"` strings with escapes, raw strings `r"…"` / `r#"…"#` (any number of
//! hashes, plus `b`/`c` prefixes), char literals (disambiguated from
//! lifetimes), and byte strings. This covers everything in the workspace;
//! exotic token sequences would at worst blank slightly too much, which
//! fails safe (a masked token can only *hide* a violation inside a string,
//! never invent one).

/// One source line split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct LineView {
    /// Code with comments and string interiors replaced by spaces.
    /// Same byte length as the original line.
    pub code: String,
    /// Concatenated comment text appearing on this line (both `//` and
    /// `/* */` bodies), without the comment markers.
    pub comment: String,
}

impl LineView {
    /// True when the line contains no code tokens at all (blank or
    /// comment-only) — used when scanning upward for `LINT-ALLOW`.
    pub fn is_code_blank(&self) -> bool {
        self.code.chars().all(|c| c.is_whitespace())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Split `source` into per-line code/comment views.
pub fn line_views(source: &str) -> Vec<LineView> {
    let mut views = Vec::new();
    let mut state = State::Code;
    for line in source.split('\n') {
        let bytes: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0usize;
        // A line comment never continues across lines.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&bytes[i + 2..].iter().collect::<String>());
                        // Blank the rest of the line in the code view.
                        for _ in i..bytes.len() {
                            code.push(' ');
                        }
                        i = bytes.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'b' | 'c' if next == Some('"') && !prev_is_ident(&bytes, i) => {
                        // Plain byte/C string `b"…"`: escapes apply, so treat
                        // as an ordinary string after the prefix.
                        code.push(c);
                        code.push('"');
                        i += 2;
                        state = State::Str;
                    }
                    'r' | 'b' | 'c'
                        if is_raw_string_start(&bytes, i) && !prev_is_ident(&bytes, i) =>
                    {
                        // Consume prefix up to and including the opening quote,
                        // counting hashes.
                        let mut j = i;
                        while bytes.get(j).is_some_and(|&c| matches!(c, 'r' | 'b' | 'c')) {
                            code.push(bytes[j]);
                            j += 1;
                        }
                        let mut hashes = 0u8;
                        while bytes.get(j) == Some(&'#') {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        // bytes[j] is the opening quote.
                        code.push('"');
                        i = j + 1;
                        state = State::RawStr(hashes);
                    }
                    '\'' => {
                        // Lifetime vs char literal: a lifetime is `'ident` not
                        // followed by a closing quote.
                        let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                            && bytes.get(i + 2) != Some(&'\'');
                        code.push('\'');
                        i += 1;
                        if !is_lifetime {
                            state = State::Char;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                // LINT-ALLOW(L2-panic-free): state-machine invariant — LineComment
                // is cleared at line start and never re-entered mid-arm; reaching
                // this arm is a lexer bug worth aborting loudly in tests.
                State::LineComment => unreachable!("handled at line start / takeover above"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                    } else if c == '/' && next == Some('*') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        state = State::BlockComment(depth + 1);
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '"' => {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '\'' => {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }
        // Char literals never span lines; a Char state at EOL is a
        // mis-disambiguated lifetime — reset to Code (the safe direction).
        // Plain strings *can* span lines and keep their state.
        if state == State::Char {
            state = State::Code;
        }
        views.push(LineView { code, comment });
    }
    views
}

/// Is the char before `i` part of an identifier (so `bytes[i]` cannot start
/// a literal prefix)?
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Does a *raw* string literal start at `i`? (`r"`, `r#"`, `br"`, `cr#"` …)
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while let Some(&c) = bytes.get(j) {
        match c {
            'r' if !saw_r => {
                saw_r = true;
                j += 1;
            }
            'b' | 'c' if !saw_r => j += 1,
            _ => break,
        }
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    let mut k = j;
    while bytes.get(k) == Some(&'#') {
        k += 1;
    }
    bytes.get(k) == Some(&'"')
}

/// Does the quote at `i` close a raw string with `hashes` trailing hashes?
fn closes_raw(bytes: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Code views joined back into one string (newline-separated).
    fn code_of(src: &str) -> String {
        line_views(src)
            .iter()
            .map(|v| v.code.clone())
            .collect::<Vec<_>>()
            .join("\n")
    }

    // ---- raw strings -------------------------------------------------

    #[test]
    fn raw_string_interior_is_blanked() {
        // Item-looking tokens inside a raw string must never reach the
        // parser; code after the literal must survive.
        let src = r##"let s = r#"fn fake() { // not a comment "q" }"#; let real = 1;"##;
        let code = code_of(src);
        assert!(!code.contains("fake"), "{code}");
        assert!(!code.contains("not a comment"), "{code}");
        assert!(code.contains("let real = 1;"), "{code}");
        // Same byte length as the original line (blanking, not deletion).
        assert_eq!(code.chars().count(), src.chars().count());
    }

    #[test]
    fn raw_string_hash_depth_is_respected() {
        // `"#` inside an `r##"…"##` literal does not close it.
        let src = r###"let s = r##"a"#b"##; let t = 2;"###;
        let code = code_of(src);
        assert!(!code.contains('a') && !code.contains('b'), "{code}");
        assert!(code.contains("let t = 2;"), "{code}");
    }

    #[test]
    fn raw_string_spans_lines() {
        let src = "let s = r#\"line one\nfn bogus() {\n\"#; let after = 3;";
        let code = code_of(src);
        assert!(!code.contains("bogus"), "{code}");
        assert!(code.contains("let after = 3;"), "{code}");
    }

    #[test]
    fn raw_byte_and_c_strings_are_blanked() {
        for src in [
            r##"let s = br#"fn f() {"#; let k = 1;"##,
            r##"let s = cr#"fn f() {"#; let k = 1;"##,
            r#"let s = b"fn f() {"; let k = 1;"#,
        ] {
            let code = code_of(src);
            assert!(!code.contains("f() {"), "{src} -> {code}");
            assert!(code.contains("let k = 1;"), "{src} -> {code}");
        }
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // `r#type` is a raw identifier; nothing may be blanked.
        let src = "let r#type = 1; let x = r#type;";
        assert_eq!(code_of(src), src);
    }

    #[test]
    fn backslash_in_raw_string_is_not_an_escape() {
        // In `r"\"` the backslash is literal and the quote closes.
        let src = r#"let s = r"\"; let done = 1;"#;
        let code = code_of(src);
        assert!(code.contains("let done = 1;"), "{code}");
    }

    // ---- lifetimes vs char literals ---------------------------------

    #[test]
    fn lifetimes_survive_char_literals_dont() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let code = code_of(src);
        // The lifetime is code (kept); the char literal interior is blanked.
        assert!(code.contains("fn f<'a>(x: &'a str)"), "{code}");
        assert!(!code.contains('x') || !code.contains("'x'"), "{code}");
        // Braces must balance for the item parser.
        assert_eq!(code.matches('{').count(), code.matches('}').count());
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let src = "let l: &'static str = x; let after = 1;";
        let code = code_of(src);
        assert!(code.contains("'static"), "{code}");
        assert!(code.contains("let after = 1;"), "{code}");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let c = '\''; let after = 1;";
        let code = code_of(src);
        assert!(code.contains("let after = 1;"), "{code}");
    }

    #[test]
    fn byte_char_literal() {
        let src = r"let c = b'\''; let d = b'a'; let after = 1;";
        let code = code_of(src);
        assert!(code.contains("let after = 1;"), "{code}");
    }

    #[test]
    fn adjacent_lifetimes_in_generics() {
        let src = "struct S<'a, 'b>(&'a str, &'b str);";
        assert_eq!(code_of(src), src);
    }

    #[test]
    fn underscore_char_and_lifetime() {
        let l = "let r: &'_ str = s; let after = 1;";
        assert_eq!(code_of(l), l);
        let c = "let c = '_'; let after = 1;";
        let code = code_of(c);
        assert!(code.contains("let after = 1;"), "{code}");
        assert!(!code.contains("'_'"), "{code}");
    }

    #[test]
    fn char_literal_containing_quote_does_not_open_string() {
        let src = r#"let q = '"'; let s = "fn bad() {"; let after = 1;"#;
        let code = code_of(src);
        assert!(!code.contains("bad"), "{code}");
        assert!(code.contains("let after = 1;"), "{code}");
    }

    #[test]
    fn digit_char_literals_blank() {
        let src = "let one = '1'; let after = 1;";
        let code = code_of(src);
        assert!(code.contains("let after = 1;"), "{code}");
    }

    // ---- nested block comments --------------------------------------

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* one /* two */ still comment */ run();";
        let code = code_of(src);
        assert!(!code.contains("still comment"), "{code}");
        assert!(code.contains("run();"), "{code}");
    }

    #[test]
    fn nested_block_comment_spans_lines() {
        let src = "/* a\n/* b */\nstill */ let x = 1;\nlet y = 2;";
        let code = code_of(src);
        assert!(!code.contains("still"), "{code}");
        assert!(code.contains("let x = 1;"), "{code}");
        assert!(code.contains("let y = 2;"), "{code}");
    }

    #[test]
    fn block_comment_text_lands_in_comment_view() {
        let views = line_views("/* LINT-ALLOW(L2-panic-free): reason */ x();");
        assert!(views[0].comment.contains("LINT-ALLOW"));
        assert!(views[0].code.contains("x();"));
    }

    #[test]
    fn comment_markers_inside_strings_are_inert() {
        let src = r#"let url = "http://e.com/*x*/"; let after = 1;"#;
        let code = code_of(src);
        assert!(code.contains("let after = 1;"), "{code}");
        let views = line_views(src);
        assert_eq!(views[0].comment, "", "no comment text should be captured");
    }

    #[test]
    fn line_comment_inside_block_comment_does_not_escape() {
        let src = "/* // line marker\nstill comment */ let x = 1;";
        let code = code_of(src);
        assert!(!code.contains("still"), "{code}");
        assert!(code.contains("let x = 1;"), "{code}");
    }

    // ---- misc invariants the item parser relies on -------------------

    #[test]
    fn string_escape_at_eol_continues_string() {
        // A trailing backslash continues the string onto the next line.
        let src = "let s = \"abc\\\nfn fake() {\";\nlet after = 1;";
        let code = code_of(src);
        assert!(!code.contains("fake"), "{code}");
        assert!(code.contains("let after = 1;"), "{code}");
    }

    #[test]
    fn code_view_lengths_match_input_lines() {
        let src = "fn f() { /* c */ let s = \"x\"; } // tail\nlet c = 'y';";
        for (view, line) in line_views(src).iter().zip(src.split('\n')) {
            assert_eq!(view.code.chars().count(), line.chars().count());
        }
    }
}

/// Byte offsets (per line) of regions gated behind `#[cfg(test)]` (or any
/// `cfg` predicate mentioning `test`): returns a per-line mask where `true`
/// marks a column belonging to a test-only item body.
///
/// Detection: each `#[cfg(…test…)]` attribute arms a pending skip; the next
/// top-level-relative `{` opens the gated body, which is masked through its
/// matching `}`. A `;` before any `{` (e.g. `#[cfg(test)] mod proptests;`)
/// disarms without masking.
pub fn test_gated_mask(views: &[LineView]) -> Vec<Vec<bool>> {
    let mut mask: Vec<Vec<bool>> = views
        .iter()
        .map(|v| vec![false; v.code.chars().count()])
        .collect();

    // Flatten to (line, col, char) stream of the code view.
    let stream: Vec<(usize, usize, char)> = views
        .iter()
        .enumerate()
        .flat_map(|(ln, v)| {
            v.code
                .chars()
                .enumerate()
                .map(move |(col, c)| (ln, col, c))
                .chain(std::iter::once((ln, usize::MAX, '\n')))
        })
        .collect();

    let mut i = 0usize;
    while i < stream.len() {
        let (_, _, c) = stream[i];
        if c == '#' && matches!(stream.get(i + 1), Some((_, _, '['))) {
            // Collect the attribute text up to the matching ']'.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut attr = String::new();
            while j < stream.len() && depth > 0 {
                let ch = stream[j].2;
                match ch {
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    attr.push(ch);
                }
                j += 1;
            }
            let is_test_cfg = attr.trim_start().starts_with("cfg") && contains_word(&attr, "test");
            if is_test_cfg {
                // Find next `{` or `;` (skipping further attributes).
                let mut k = j;
                let mut in_attr = 0i32;
                while k < stream.len() {
                    let ch = stream[k].2;
                    match ch {
                        '[' => in_attr += 1,
                        ']' => in_attr -= 1,
                        '{' if in_attr == 0 => break,
                        ';' if in_attr == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if k < stream.len() && stream[k].2 == '{' {
                    // Mask from the attribute start through the matching '}'.
                    let mut depth = 0i32;
                    let mut m = k;
                    while m < stream.len() {
                        let ch = stream[m].2;
                        match ch {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    for item in &stream[i..=m.min(stream.len() - 1)] {
                        let (ln, col, _) = *item;
                        if col != usize::MAX {
                            mask[ln][col] = true;
                        }
                    }
                    i = m + 1;
                    continue;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whole-word containment (`test` matches in `any(test, loom)` but not in
/// `integration_tests`).
pub fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

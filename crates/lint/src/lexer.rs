//! A minimal, dependency-free lexical pass over Rust source.
//!
//! The linter does not need a full AST: every invariant it enforces (L1–L4)
//! is recognizable from the token stream once comments and string literals
//! are stripped. This module produces, for each source line, a *code view*
//! (the line with comment and string-literal interiors blanked to spaces,
//! byte-for-byte the same length) and a *comment view* (the concatenated
//! comment text of the line, where `LINT-ALLOW` and `SAFETY:` directives
//! live).
//!
//! Handled syntax: `//` line comments, nested `/* */` block comments,
//! `"…"` strings with escapes, raw strings `r"…"` / `r#"…"#` (any number of
//! hashes, plus `b`/`c` prefixes), char literals (disambiguated from
//! lifetimes), and byte strings. This covers everything in the workspace;
//! exotic token sequences would at worst blank slightly too much, which
//! fails safe (a masked token can only *hide* a violation inside a string,
//! never invent one).

/// One source line split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct LineView {
    /// Code with comments and string interiors replaced by spaces.
    /// Same byte length as the original line.
    pub code: String,
    /// Concatenated comment text appearing on this line (both `//` and
    /// `/* */` bodies), without the comment markers.
    pub comment: String,
}

impl LineView {
    /// True when the line contains no code tokens at all (blank or
    /// comment-only) — used when scanning upward for `LINT-ALLOW`.
    pub fn is_code_blank(&self) -> bool {
        self.code.chars().all(|c| c.is_whitespace())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Split `source` into per-line code/comment views.
pub fn line_views(source: &str) -> Vec<LineView> {
    let mut views = Vec::new();
    let mut state = State::Code;
    for line in source.split('\n') {
        let bytes: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0usize;
        // A line comment never continues across lines.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&bytes[i + 2..].iter().collect::<String>());
                        // Blank the rest of the line in the code view.
                        for _ in i..bytes.len() {
                            code.push(' ');
                        }
                        i = bytes.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'b' | 'c' if next == Some('"') && !prev_is_ident(&bytes, i) => {
                        // Plain byte/C string `b"…"`: escapes apply, so treat
                        // as an ordinary string after the prefix.
                        code.push(c);
                        code.push('"');
                        i += 2;
                        state = State::Str;
                    }
                    'r' | 'b' | 'c'
                        if is_raw_string_start(&bytes, i) && !prev_is_ident(&bytes, i) =>
                    {
                        // Consume prefix up to and including the opening quote,
                        // counting hashes.
                        let mut j = i;
                        while bytes.get(j).is_some_and(|&c| matches!(c, 'r' | 'b' | 'c')) {
                            code.push(bytes[j]);
                            j += 1;
                        }
                        let mut hashes = 0u8;
                        while bytes.get(j) == Some(&'#') {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        // bytes[j] is the opening quote.
                        code.push('"');
                        i = j + 1;
                        state = State::RawStr(hashes);
                    }
                    '\'' => {
                        // Lifetime vs char literal: a lifetime is `'ident` not
                        // followed by a closing quote.
                        let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                            && bytes.get(i + 2) != Some(&'\'');
                        code.push('\'');
                        i += 1;
                        if !is_lifetime {
                            state = State::Char;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                // LINT-ALLOW(L2-panic-free): state-machine invariant — LineComment
                // is cleared at line start and never re-entered mid-arm; reaching
                // this arm is a lexer bug worth aborting loudly in tests.
                State::LineComment => unreachable!("handled at line start / takeover above"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                    } else if c == '/' && next == Some('*') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        state = State::BlockComment(depth + 1);
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '"' => {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '\'' => {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }
        // Char literals never span lines; a Char state at EOL is a
        // mis-disambiguated lifetime — reset to Code (the safe direction).
        // Plain strings *can* span lines and keep their state.
        if state == State::Char {
            state = State::Code;
        }
        views.push(LineView { code, comment });
    }
    views
}

/// Is the char before `i` part of an identifier (so `bytes[i]` cannot start
/// a literal prefix)?
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Does a *raw* string literal start at `i`? (`r"`, `r#"`, `br"`, `cr#"` …)
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while let Some(&c) = bytes.get(j) {
        match c {
            'r' if !saw_r => {
                saw_r = true;
                j += 1;
            }
            'b' | 'c' if !saw_r => j += 1,
            _ => break,
        }
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    let mut k = j;
    while bytes.get(k) == Some(&'#') {
        k += 1;
    }
    bytes.get(k) == Some(&'"')
}

/// Does the quote at `i` close a raw string with `hashes` trailing hashes?
fn closes_raw(bytes: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Byte offsets (per line) of regions gated behind `#[cfg(test)]` (or any
/// `cfg` predicate mentioning `test`): returns a per-line mask where `true`
/// marks a column belonging to a test-only item body.
///
/// Detection: each `#[cfg(…test…)]` attribute arms a pending skip; the next
/// top-level-relative `{` opens the gated body, which is masked through its
/// matching `}`. A `;` before any `{` (e.g. `#[cfg(test)] mod proptests;`)
/// disarms without masking.
pub fn test_gated_mask(views: &[LineView]) -> Vec<Vec<bool>> {
    let mut mask: Vec<Vec<bool>> = views
        .iter()
        .map(|v| vec![false; v.code.chars().count()])
        .collect();

    // Flatten to (line, col, char) stream of the code view.
    let stream: Vec<(usize, usize, char)> = views
        .iter()
        .enumerate()
        .flat_map(|(ln, v)| {
            v.code
                .chars()
                .enumerate()
                .map(move |(col, c)| (ln, col, c))
                .chain(std::iter::once((ln, usize::MAX, '\n')))
        })
        .collect();

    let mut i = 0usize;
    while i < stream.len() {
        let (_, _, c) = stream[i];
        if c == '#' && matches!(stream.get(i + 1), Some((_, _, '['))) {
            // Collect the attribute text up to the matching ']'.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut attr = String::new();
            while j < stream.len() && depth > 0 {
                let ch = stream[j].2;
                match ch {
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    attr.push(ch);
                }
                j += 1;
            }
            let is_test_cfg = attr.trim_start().starts_with("cfg") && contains_word(&attr, "test");
            if is_test_cfg {
                // Find next `{` or `;` (skipping further attributes).
                let mut k = j;
                let mut in_attr = 0i32;
                while k < stream.len() {
                    let ch = stream[k].2;
                    match ch {
                        '[' => in_attr += 1,
                        ']' => in_attr -= 1,
                        '{' if in_attr == 0 => break,
                        ';' if in_attr == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if k < stream.len() && stream[k].2 == '{' {
                    // Mask from the attribute start through the matching '}'.
                    let mut depth = 0i32;
                    let mut m = k;
                    while m < stream.len() {
                        let ch = stream[m].2;
                        match ch {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    for item in &stream[i..=m.min(stream.len() - 1)] {
                        let (ln, col, _) = *item;
                        if col != usize::MAX {
                            mask[ln][col] = true;
                        }
                    }
                    i = m + 1;
                    continue;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whole-word containment (`test` matches in `any(test, loom)` but not in
/// `integration_tests`).
pub fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

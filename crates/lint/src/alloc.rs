//! A1-hot-alloc: interprocedural hot-loop allocation analysis.
//!
//! ROADMAP item 1 diagnoses why the parallel hot path loses: inner loops
//! allocate, so per-task overhead swamps the parallelism. This pass makes
//! that regression class statically visible. It combines three ingredients:
//!
//! 1. **Loop structure** from the parser: every call site and allocation
//!    primitive carries its syntactic loop depth (`for`/`while`/
//!    `while let`/`loop`, labeled or not).
//! 2. **A transitive "allocates" summary** over the workspace call graph:
//!    a function allocates if its body contains an allocation primitive
//!    (`Vec::new`, `vec![]`, `.collect()`, `.clone()`, `.to_vec()`,
//!    `format!`, `String::from`, `Box::new`, map `.insert`, …) or if it
//!    calls an allocating function. Each summary entry keeps a shortest
//!    *witness chain* down to the concrete primitive.
//! 3. **A hot-entry traversal**: starting from the hot entry points
//!    (APSP builds, the routing DP, the online per-slot step, the scaler
//!    tick, incremental cache repair — plus any fn marked `LINT-HOT(A1)`),
//!    walk forward through the [`COVERED_FILES`] with a two-state visit
//!    `(fn, in_loop)`: the context flips to *in-loop* when a call edge sits
//!    inside a loop. Any allocation that executes in loop context — a
//!    direct primitive at loop depth > 0, any primitive in a fn reached
//!    through a looped edge, or a looped call into an allocating
//!    *uncovered* fn — is a diagnostic with the shortest call chain from
//!    the entry, T1-style.
//!
//! Coverage boundary: only fns in [`COVERED_FILES`] (or files containing a
//! `LINT-HOT` marker) are traversed and flagged. Calls that leave the
//! covered set are treated as opaque: they are flagged at the call line iff
//! the summary says the callee allocates and the edge is in loop context.
//! This keeps the finding surface reviewable — the hot files — while the
//! summary still sees the whole workspace.
//!
//! Ambiguity rule: a method call with an unknown receiver resolves to the
//! union of same-name workspace methods (see [`crate::callgraph`]). The
//! taint passes keep that over-approximation; A1 does not — an ambiguous
//! call site participates (in the summary and in the hot traversal) only
//! when **every** candidate allocates. A lint that pinned every `.get(i)`
//! slice read in a hot loop to the one allocating `get` method in the
//! workspace would drown the real findings in false positives.
//!
//! Deliberately out of scope: closures handed to `socl_net::par::par_map*`.
//! Each parallel task returns its output, so per-task output allocation is
//! the mechanism, not a defect; treating a par_map closure as a loop body
//! would flag every output row of the APSP build. Syntactic loops only.
//!
//! Waivers are barriers, exactly like T1: `LINT-ALLOW(A1-hot-alloc)` at an
//! allocation line un-seeds that site (for both the direct check and the
//! summary); at a call line it severs that edge.

use crate::callgraph::Graph;
use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, LineView};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Files whose fns are traversed and flagged (workspace-relative). A file
/// containing a `LINT-HOT` marker anywhere joins the set automatically —
/// that is the extension point the fixtures (and future hot files) use.
pub const COVERED_FILES: [&str; 5] = [
    "crates/net/src/paths.rs",
    "crates/net/src/incremental.rs",
    "crates/model/src/routing.rs",
    "crates/sim/src/online.rs",
    "crates/autoscale/src/scaler.rs",
];

/// Fully-qualified hot entry points: the per-slot / per-request / per-build
/// code whose loops dominate BENCH_hotpath. Fns carrying a `LINT-HOT(A1)`
/// marker comment are entries too.
pub const HOT_ENTRIES: [&str; 9] = [
    "socl_net::paths::AllPairs::build",
    "socl_net::paths::AllPairs::build_serial",
    "socl_net::paths::AllPairs::build_with_threads",
    "socl_net::incremental::ApspCache::apply",
    "socl_model::routing::optimal_route",
    "socl_model::routing::greedy_route",
    "socl_model::routing::route_all",
    "socl_sim::online::OnlineSimulator::step",
    "socl_autoscale::scaler::Autoscaler::tick",
];

/// Is this file in the A1 traversal set?
fn covered(rel: &str, marker_files: &BTreeSet<String>) -> bool {
    let p = rel.replace('\\', "/");
    COVERED_FILES.contains(&p.as_str()) || marker_files.contains(&p)
}

fn waived(views: &BTreeMap<&str, Vec<LineView>>, file: &str, line: usize) -> bool {
    let Some(v) = views.get(file) else {
        return false;
    };
    if line == 0 || line > v.len() {
        return false;
    }
    matches!(
        allow_status(v, line - 1, Rule::A1HotAlloc),
        AllowStatus::Allowed
    )
}

/// Does the comment on `line` or the contiguous comment block above carry a
/// `LINT-HOT(A1)` marker? (Same attachment rule as `LINT-ALLOW`.)
fn hot_marked(views: &[LineView], line: usize) -> bool {
    if line == 0 || line > views.len() {
        return false;
    }
    let idx = line - 1;
    let has = |v: &LineView| v.comment.contains("LINT-HOT(A1)");
    if has(&views[idx]) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let v = &views[j];
        if !v.is_code_blank() {
            break;
        }
        if has(v) {
            return true;
        }
        if v.comment.trim().is_empty() && v.code.trim().is_empty() {
            break;
        }
    }
    false
}

/// Run the A1 pass. `files` must be the set the graph was built from.
pub fn check(files: &[(String, String)], graph: &Graph) -> Vec<Diagnostic> {
    let views: BTreeMap<&str, Vec<LineView>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), line_views(src)))
        .collect();
    let marker_files: BTreeSet<String> = files
        .iter()
        .filter(|(_, src)| src.contains("LINT-HOT"))
        .map(|(rel, _)| rel.replace('\\', "/"))
        .collect();

    let n = graph.nodes.len();

    // Edges of one syntactic call site, by site id. An ambiguous method
    // call (`.get(i)` with an unknown receiver) fans out into one edge per
    // same-name candidate; those edges share a site, and A1 only trusts the
    // site when *every* candidate allocates. Otherwise a ubiquitous name
    // like `get` would pin every slice read in a hot loop to the one
    // allocating workspace method that happens to share it.
    let mut site_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (ei, e) in graph.edges.iter().enumerate() {
        site_edges.entry(e.site).or_default().push(ei);
    }
    let site_allocates = |site: usize, allocates: &[bool]| -> bool {
        site_edges
            .get(&site)
            .is_some_and(|v| v.iter().all(|&oi| allocates[graph.edges[oi].to]))
    };

    // ---- Transitive "allocates" summary over the whole graph ----------
    // alloc_parent[i] = Some(callee) on the shortest path toward a direct
    // allocation; alloc_site[i] = the direct primitive when node i itself
    // allocates. BFS from all directly-allocating nodes along reverse
    // (callee → caller) edges; first visit wins → shortest witness.
    let mut alloc_site: Vec<Option<usize>> = vec![None; n]; // index into item.allocs
    let mut allocates: Vec<bool> = vec![false; n];
    let mut alloc_parent: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        for (ai, a) in node.item.allocs.iter().enumerate() {
            if waived(&views, &node.file, a.line) {
                continue;
            }
            alloc_site[ni] = Some(ai);
            allocates[ni] = true;
            queue.push_back(ni);
            break;
        }
    }
    while let Some(ni) = queue.pop_front() {
        for &ei in &graph.rev[ni] {
            let e = graph.edges[ei];
            if allocates[e.from] {
                continue;
            }
            // A waiver on the call line vouches for this call: it does not
            // make the *caller* allocating.
            if waived(&views, &graph.nodes[e.from].file, e.line) {
                continue;
            }
            if !e.certain && !site_allocates(e.site, &allocates) {
                continue;
            }
            allocates[e.from] = true;
            alloc_parent[e.from] = Some(ni);
            queue.push_back(e.from);
        }
    }

    // Witness description for an allocating node: the primitive, plus the
    // chain of intermediate fns when the allocation is indirect.
    let witness = |start: usize| -> String {
        let mut chain = vec![start];
        let mut cur = start;
        while let Some(next) = alloc_parent[cur] {
            chain.push(next);
            cur = next;
        }
        let what = alloc_site[cur]
            .map(|ai| graph.nodes[cur].item.allocs[ai].what.clone())
            .unwrap_or_else(|| "allocation".to_string());
        if chain.len() == 1 {
            format!("`{what}`")
        } else {
            let via: Vec<&str> = chain[1..]
                .iter()
                .map(|&k| graph.nodes[k].item.qual.as_str())
                .collect();
            format!("`{what}` via {}", via.join(" -> "))
        }
    };

    // ---- Hot traversal over the covered files -------------------------
    // Two states per node: reached outside any loop (ctx = false) or inside
    // one (ctx = true). First visit per state wins → shortest chains.
    let state = |ni: usize, ctx: bool| ni * 2 + usize::from(ctx);
    let mut visited = vec![false; n * 2];
    let mut parent: Vec<Option<usize>> = vec![None; n * 2]; // parent *state*
    let mut bfs = VecDeque::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if !covered(&node.file, &marker_files) {
            continue;
        }
        let marked = views
            .get(node.file.as_str())
            .is_some_and(|v| hot_marked(v, node.item.line));
        if HOT_ENTRIES.contains(&node.item.qual.as_str()) || marked {
            visited[state(ni, false)] = true;
            bfs.push_back((ni, false));
        }
    }

    // Render `entry -> … -> node` for a state, plus the entry qual.
    let chain_of = |st: usize, parent: &[Option<usize>]| -> (String, String) {
        let mut chain = vec![st / 2];
        let mut cur = st;
        while let Some(p) = parent[cur] {
            chain.push(p / 2);
            cur = p;
        }
        chain.reverse();
        chain.dedup(); // ctx flips revisit the same fn
        let entry = graph.nodes[chain[0]].item.qual.clone();
        let rendered = chain
            .iter()
            .map(|&k| graph.nodes[k].item.qual.as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        (entry, rendered)
    };

    let mut out = Vec::new();
    let mut emitted: BTreeSet<(String, usize)> = BTreeSet::new();
    while let Some((ni, ctx)) = bfs.pop_front() {
        let st = state(ni, ctx);
        let node = &graph.nodes[ni];

        // Direct allocation primitives that execute in loop context.
        for a in &node.item.allocs {
            if !(ctx || a.loop_depth > 0) || waived(&views, &node.file, a.line) {
                continue;
            }
            if !emitted.insert((node.file.clone(), a.line)) {
                continue;
            }
            let (entry, chain) = chain_of(st, &parent);
            let message = if node.item.qual == entry {
                format!(
                    "`{}` allocates inside a loop of hot entry `{entry}`; hoist \
                     the buffer into a reusable scratch or justify with \
                     `LINT-ALLOW({})`",
                    a.what,
                    Rule::A1HotAlloc.id()
                )
            } else {
                format!(
                    "`{}` allocates in a loop context of hot entry `{entry}`; \
                     call chain: {chain}",
                    a.what
                )
            };
            out.push(Diagnostic {
                file: node.file.clone(),
                line: a.line,
                rule: Rule::A1HotAlloc,
                message,
            });
        }

        for &ei in &graph.fwd[ni] {
            let e = graph.edges[ei];
            // A waiver on the call line is an edge barrier.
            if waived(&views, &node.file, e.line) {
                continue;
            }
            let edge_ctx = ctx || e.loop_depth > 0;
            let callee = &graph.nodes[e.to];
            // Ambiguity gate: an uncertain edge is one maybe-candidate of a
            // name-union; follow or flag it only when every candidate of
            // the site allocates (so whichever method the call really hits,
            // it allocates).
            if !e.certain && !site_allocates(e.site, &allocates) {
                continue;
            }
            if covered(&callee.file, &marker_files) {
                let nxt = state(e.to, edge_ctx);
                if !visited[nxt] {
                    visited[nxt] = true;
                    parent[nxt] = Some(st);
                    bfs.push_back((e.to, edge_ctx));
                }
            } else if edge_ctx && allocates[e.to] {
                // Opaque boundary: flag the looped call into an allocating
                // fn at the call site. Skip if a direct primitive already
                // flagged this line (e.g. `.to_vec()` resolving to a
                // workspace method of the same name).
                if !emitted.insert((node.file.clone(), e.line)) {
                    continue;
                }
                let (entry, chain) = chain_of(st, &parent);
                let message = format!(
                    "call to `{}` allocates ({}) inside a loop of hot entry \
                     `{entry}`; call chain: {chain} -> {}; hoist the \
                     allocation out of the loop or add a `LINT-ALLOW({})` \
                     barrier on this call",
                    callee.item.qual,
                    witness(e.to),
                    callee.item.qual,
                    Rule::A1HotAlloc.id()
                );
                out.push(Diagnostic {
                    file: node.file.clone(),
                    line: e.line,
                    rule: Rule::A1HotAlloc,
                    message,
                });
            }
        }
    }
    out
}

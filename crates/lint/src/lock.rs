//! X1-lock-discipline: static lock hygiene over the workspace.
//!
//! Three hazard shapes, all anchored on the parser's guard live ranges
//! (`let guard = m.lock()…;` → live from the end of the binding statement
//! to the enclosing block close / `drop(guard)` / body end):
//!
//! 1. **Second lock while a guard is live.** Nested acquisitions order
//!    locks implicitly; two call paths nesting in opposite orders deadlock.
//!    The deterministic pool makes this concrete: a worker blocked on a
//!    mutex the dispatcher holds never finishes its chunk.
//! 2. **Guard held across a call that dispatches to the pool or
//!    allocates in a loop** (transitively, via [`crate::conc`] with the
//!    PR 8 ambiguity gate). Dispatching with a lock held serializes the
//!    workers behind the critical section at best, deadlocks at worst;
//!    loop-allocating calls make the critical section long enough to
//!    matter. Direct `par_map*`/`.spawn` sites inside a guard range are
//!    flagged the same way.
//! 3. **Lock inside a sequential loop.** Reacquiring a mutex every
//!    iteration is contention by construction when the receiver is
//!    loop-invariant; hoist the guard above the loop. Locks inside
//!    closures are exempt — a worker closure locking per chunk is the
//!    sanctioned fine-grained pattern (X2/X3 audit those), a sequential
//!    loop locking per iteration is not.
//!
//! Waivers: `LINT-ALLOW(X1-lock-discipline)` on the diagnosis line (the
//! second lock, the call, the dispatch or the in-loop lock) suppresses
//! that finding — edge-barrier placement, like T1/A1.

use crate::callgraph::Graph;
use crate::conc::Summaries;
use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, LineView};
use crate::parser::SyncKind;
use std::collections::{BTreeMap, BTreeSet};

fn waived(views: &BTreeMap<&str, Vec<LineView>>, file: &str, line: usize) -> bool {
    let Some(v) = views.get(file) else {
        return false;
    };
    if line == 0 || line > v.len() {
        return false;
    }
    matches!(
        allow_status(v, line - 1, Rule::X1LockDiscipline),
        AllowStatus::Allowed
    )
}

/// Run the X1 pass. `files` must be the set the graph was built from.
pub fn check(files: &[(String, String)], graph: &Graph, summ: &Summaries) -> Vec<Diagnostic> {
    let views: BTreeMap<&str, Vec<LineView>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), line_views(src)))
        .collect();

    // Ambiguity gate over call sites, shared with the summaries.
    let mut site_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (ei, e) in graph.edges.iter().enumerate() {
        site_edges.entry(e.site).or_default().push(ei);
    }
    let site_all = |site: usize, has: &[bool]| -> bool {
        site_edges
            .get(&site)
            .is_some_and(|v| v.iter().all(|&oi| has[graph.edges[oi].to]))
    };

    let mut out = Vec::new();
    let mut emitted: BTreeSet<(String, usize)> = BTreeSet::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        let item = &node.item;
        let in_closure = |tok: usize| {
            item.closures
                .iter()
                .any(|c| tok >= c.body.0 && tok < c.body.1)
        };

        for g in &item.guards {
            let live = |tok: usize| tok > g.tok && tok < g.end_tok;

            // (1) Second acquisition while this guard is live.
            for s in &item.sync {
                if !matches!(s.kind, SyncKind::Lock | SyncKind::LockHelper) || !live(s.tok) {
                    continue;
                }
                if waived(&views, &node.file, s.line)
                    || !emitted.insert((node.file.clone(), s.line))
                {
                    continue;
                }
                out.push(Diagnostic {
                    file: node.file.clone(),
                    line: s.line,
                    rule: Rule::X1LockDiscipline,
                    message: format!(
                        "second lock (`{}`) while guard `{}` over `{}` (line {}) is \
                         live — implicit lock order, deadlock hazard; drop or scope \
                         the first guard, or justify with `LINT-ALLOW({})`",
                        if s.recv.is_empty() {
                            s.what.clone()
                        } else {
                            s.recv.clone()
                        },
                        g.name,
                        g.recv,
                        g.line,
                        Rule::X1LockDiscipline.id()
                    ),
                });
            }

            // (2a) Direct pool dispatch / spawn inside the guard range.
            for s in &item.sync {
                if !matches!(s.kind, SyncKind::Dispatch | SyncKind::Spawn) || !live(s.tok) {
                    continue;
                }
                if waived(&views, &node.file, s.line)
                    || !emitted.insert((node.file.clone(), s.line))
                {
                    continue;
                }
                out.push(Diagnostic {
                    file: node.file.clone(),
                    line: s.line,
                    rule: Rule::X1LockDiscipline,
                    message: format!(
                        "pool dispatch `{}` while guard `{}` over `{}` (line {}) is \
                         live — workers serialize behind (or deadlock against) the \
                         held lock; release the guard before dispatching",
                        s.what, g.name, g.recv, g.line
                    ),
                });
            }

            // (2b) Calls made while the guard is live whose callee
            // transitively dispatches or allocates in a loop.
            for &ei in &graph.fwd[ni] {
                let e = graph.edges[ei];
                if !live(e.tok) || waived(&views, &node.file, e.line) {
                    continue;
                }
                let callee = &graph.nodes[e.to].item.qual;
                if summ.dispatches.has[e.to]
                    && (e.certain || site_all(e.site, &summ.dispatches.has))
                {
                    if emitted.insert((node.file.clone(), e.line)) {
                        out.push(Diagnostic {
                            file: node.file.clone(),
                            line: e.line,
                            rule: Rule::X1LockDiscipline,
                            message: format!(
                                "call to `{callee}` dispatches to the pool ({}) while \
                                 guard `{}` over `{}` (line {}) is live; release the \
                                 guard first, or justify with `LINT-ALLOW({})`",
                                summ.dispatches.witness(graph, e.to),
                                g.name,
                                g.recv,
                                g.line,
                                Rule::X1LockDiscipline.id()
                            ),
                        });
                    }
                } else if summ.loop_alloc.has[e.to]
                    && (e.certain || site_all(e.site, &summ.loop_alloc.has))
                    && emitted.insert((node.file.clone(), e.line))
                {
                    out.push(Diagnostic {
                        file: node.file.clone(),
                        line: e.line,
                        rule: Rule::X1LockDiscipline,
                        message: format!(
                            "call to `{callee}` allocates in a loop ({}) while guard \
                             `{}` over `{}` (line {}) is live — long critical \
                             section; move the work outside the guard, or justify \
                             with `LINT-ALLOW({})`",
                            summ.loop_alloc.witness(graph, e.to),
                            g.name,
                            g.recv,
                            g.line,
                            Rule::X1LockDiscipline.id()
                        ),
                    });
                }
            }
        }

        // (3) Lock inside a sequential loop (closures exempt — per-chunk
        // locking inside dispatched workers is the sanctioned pattern).
        for s in &item.sync {
            if !matches!(s.kind, SyncKind::Lock | SyncKind::LockHelper)
                || s.loop_depth == 0
                || in_closure(s.tok)
            {
                continue;
            }
            if waived(&views, &node.file, s.line) || !emitted.insert((node.file.clone(), s.line)) {
                continue;
            }
            out.push(Diagnostic {
                file: node.file.clone(),
                line: s.line,
                rule: Rule::X1LockDiscipline,
                message: format!(
                    "lock acquired inside a loop (`{}`) — the mutex is reacquired \
                     every iteration; hoist the guard above the loop, or justify \
                     with `LINT-ALLOW({})`",
                    if s.recv.is_empty() {
                        s.what.clone()
                    } else {
                        s.recv.clone()
                    },
                    Rule::X1LockDiscipline.id()
                ),
            });
        }
    }
    out
}

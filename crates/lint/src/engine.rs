//! Rule engine: file classification, the L1–L4 checks, `LINT-ALLOW`
//! processing, and the workspace walk.

use crate::lexer::{contains_word, line_views, test_gated_mask, LineView};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No raw f64 comparisons (`partial_cmp` calls, NaN-collapsing
    /// `unwrap_or(Ordering::Equal)`, bare `f64` keys in `BinaryHeap`).
    L1FloatCmp,
    /// No `unwrap`/`expect`/`panic!`-family in library code.
    L2PanicFree,
    /// No wall-clock / ambient RNG in solver code.
    L3Time,
    /// No `HashMap`/`HashSet` (unordered iteration) in deterministic code.
    L3Hash,
    /// Every `unsafe` must carry a `// SAFETY:` comment.
    L4Safety,
    /// Interprocedural: no nondeterminism source reachable from a pub
    /// library entry point.
    T1NondetTaint,
    /// Interprocedural: no panic reachable from a pub library entry point.
    T2PanicReach,
    /// Units-of-measure suffix convention over latency/objective arithmetic.
    T3Units,
    /// Interprocedural: no allocation reachable inside a loop of a hot
    /// entry point (APSP builds, routing DP, online per-slot step, scaler
    /// tick, incremental cache repair).
    A1HotAlloc,
    /// Checkpoint codec parity: every snapshot struct field written and
    /// read in declaration order, with shape drift forcing a version bump.
    C1CodecCoverage,
    /// Lock discipline: no second lock while a guard is live, no guard
    /// held across a pool dispatch or loop-allocating call, no hoistable
    /// lock inside a sequential loop.
    X1LockDiscipline,
    /// Closures dispatched to the pool may share mutable state only
    /// through the index-tagged Mutex bucket or per-worker scratch.
    X2CaptureDisjoint,
    /// Parallel aggregation must be index-tagged and re-sorted before the
    /// collection's contents escape.
    X3OrderRestore,
    /// A `LINT-ALLOW`/`LINT-HOT` marker whose removal changes no
    /// diagnostic (reported by `--stale-waivers`).
    W0StaleWaiver,
    /// The item parser could not recover structure from a file.
    P0Parse,
}

impl Rule {
    pub const ALL: [Rule; 15] = [
        Rule::L1FloatCmp,
        Rule::L2PanicFree,
        Rule::L3Time,
        Rule::L3Hash,
        Rule::L4Safety,
        Rule::T1NondetTaint,
        Rule::T2PanicReach,
        Rule::T3Units,
        Rule::A1HotAlloc,
        Rule::C1CodecCoverage,
        Rule::X1LockDiscipline,
        Rule::X2CaptureDisjoint,
        Rule::X3OrderRestore,
        Rule::W0StaleWaiver,
        Rule::P0Parse,
    ];

    /// Stable rule id as written in diagnostics and `LINT-ALLOW(...)`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::L1FloatCmp => "L1-float-cmp",
            Rule::L2PanicFree => "L2-panic-free",
            Rule::L3Time => "L3-nondet-time",
            Rule::L3Hash => "L3-nondet-hash",
            Rule::L4Safety => "L4-unsafe-doc",
            Rule::T1NondetTaint => "T1-nondet-taint",
            Rule::T2PanicReach => "T2-panic-reach",
            Rule::T3Units => "T3-units",
            Rule::A1HotAlloc => "A1-hot-alloc",
            Rule::C1CodecCoverage => "C1-codec-coverage",
            Rule::X1LockDiscipline => "X1-lock-discipline",
            Rule::X2CaptureDisjoint => "X2-capture-disjoint",
            Rule::X3OrderRestore => "X3-order-restore",
            Rule::W0StaleWaiver => "W0-stale-waiver",
            Rule::P0Parse => "P0-parse",
        }
    }

    /// Short rationale shown by `socl-lint rules`.
    pub fn rationale(&self) -> &'static str {
        match self {
            Rule::L1FloatCmp => {
                "raw f64 comparisons (`.partial_cmp()`, `unwrap_or(Equal)` on float \
                 orderings, bare f64 BinaryHeap keys) silently collapse on NaN and \
                 corrupt orderings; use `total_cmp`, `socl_net::fcmp`, or the \
                 NaN-safe heap wrappers"
            }
            Rule::L2PanicFree => {
                "library code must surface failures as `Result`, not \
                 `unwrap`/`expect`/`panic!`; panics in the solver abort whole \
                 experiment sweeps (bins, benches and tests are exempt)"
            }
            Rule::L3Time => {
                "`Instant::now`/`SystemTime::now`/`thread_rng` make runs \
                 irreproducible; route timing through `socl_net::time::Stopwatch` \
                 and randomness through seeded `ChaCha` RNGs (crates/bench exempt)"
            }
            Rule::L3Hash => {
                "`HashMap`/`HashSet` iteration order is randomized per process; \
                 anything that folds or emits in iteration order becomes \
                 nondeterministic — use `BTreeMap`/`BTreeSet` or sort before folding"
            }
            Rule::L4Safety => {
                "every `unsafe` block must justify its soundness with a \
                 `// SAFETY:` comment on or directly above the block"
            }
            Rule::T1NondetTaint => {
                "no nondeterminism source (wall clock, ambient RNG, env/fs \
                 reads, hash-ordered iteration, thread identity) may be \
                 *reachable* through the call graph from a pub library entry \
                 point; waivers act as taint barriers at the source or at a \
                 call edge"
            }
            Rule::T2PanicReach => {
                "no panic-family call may be reachable through the call graph \
                 from a pub library entry point — the interprocedural upgrade \
                 of L2; the four sanctioned panic sites are barriers"
            }
            Rule::T3Units => {
                "latency/objective arithmetic must respect the identifier \
                 unit-suffix convention (`_s`, `_gb`, `_gbps`, `_gflop`, \
                 `_gflops`, …); adding seconds to gigabytes, dividing data by a \
                 non-rate, or calling a unit-ambiguous function is an error"
            }
            Rule::A1HotAlloc => {
                "no allocation primitive (`Vec::new`, `vec![]`, `.collect()`, \
                 `.clone()`, `format!`, …) may execute inside a loop of a hot \
                 entry point (APSP builds, the routing DP, the online per-slot \
                 step, scaler tick, incremental cache repair) — per-iteration \
                 allocation is why the parallel hot path loses; hoist buffers \
                 into reusable scratch structs, or waive with a barrier"
            }
            Rule::C1CodecCoverage => {
                "every field of a checkpointed struct must be written and read \
                 by its codec pair in declaration order (the untagged byte \
                 format makes order part of the schema), and shape changes \
                 must bump CKPT_VERSION via the CKPT-SHAPE marker — otherwise \
                 serialization drift corrupts replay instead of failing lint"
            }
            Rule::X1LockDiscipline => {
                "lock hygiene: a second `.lock()` while a guard is live orders \
                 locks implicitly (deadlock hazard), a guard held across a call \
                 that dispatches to the pool or allocates in a loop serializes \
                 or deadlocks the workers, and a lock inside a sequential loop \
                 is reacquired every iteration — drop/scope guards tightly and \
                 hoist loop-invariant locks"
            }
            Rule::X2CaptureDisjoint => {
                "closures dispatched to the pool (`par_map*`, scoped `.spawn`) \
                 may share mutable state only through the index-tagged Mutex \
                 bucket pattern or per-worker scratch; any other mutable \
                 capture — or a captured fn with interior mutability — makes \
                 the write interleaving scheduler-dependent"
            }
            Rule::X3OrderRestore => {
                "parallel aggregation into a shared collection must push \
                 `(index, value)` tuples and re-sort by the tag before the \
                 contents escape (the `par.rs` idiom); anything else is a \
                 determinism hole the taint pass cannot see, because the \
                 scheduler itself is the nondeterminism source"
            }
            Rule::W0StaleWaiver => {
                "a `LINT-ALLOW`/`LINT-HOT` marker that no longer suppresses \
                 any diagnostic is dead weight that hides future violations \
                 at the same site; `--stale-waivers` re-runs the passes with \
                 each marker masked and reports the ones that change nothing"
            }
            Rule::P0Parse => {
                "the item-level parser must be able to recover fn/impl/mod \
                 structure from every linted file; structural damage here \
                 would silently blind the interprocedural passes"
            }
        }
    }

    fn from_id(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL.iter().copied().find(|r| {
            r.id() == s || r.id().split('-').next() == Some(s) // accept bare "L1"…
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary / CLI / harness code: panic-freedom (L2) is waived.
    Bin,
    /// Test, bench, example or fixture code: skipped entirely.
    Test,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Stable machine-parseable format: `file:line:rule: message`.
        write!(
            f,
            "{}:{}:{}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    let p = rel_path.replace('\\', "/");
    let file_name = p.rsplit('/').next().unwrap_or(&p);
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.contains("/fixtures/")
        || p.starts_with("tests/")
        || p.starts_with("examples/")
        || file_name.starts_with("proptests")
    {
        return FileKind::Test;
    }
    if p.contains("/src/bin/")
        || file_name == "main.rs"
        || p.starts_with("crates/cli/")
        || p.starts_with("crates/bench/")
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// The crate a workspace-relative path belongs to (`""` outside `crates/`).
fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Lint a single file's source text.
///
/// `rel_path` is used for classification, crate-specific exemptions and
/// diagnostics; `kind_override` forces a classification (used by the fixture
/// tests, whose files live under a path that would otherwise classify as
/// `Test`).
pub fn lint_source(
    rel_path: &str,
    source: &str,
    kind_override: Option<FileKind>,
) -> Vec<Diagnostic> {
    let kind = kind_override.unwrap_or_else(|| classify(rel_path));
    if kind == FileKind::Test {
        return Vec::new();
    }
    let krate = crate_of(rel_path);
    let views = line_views(source);
    let gated = test_gated_mask(&views);

    let mut out = Vec::new();
    for (idx, view) in views.iter().enumerate() {
        // Active code: the code view with test-gated columns blanked.
        let active: String = view
            .code
            .chars()
            .enumerate()
            .map(|(col, c)| {
                if gated[idx].get(col).copied().unwrap_or(false) {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        if active.trim().is_empty() {
            continue;
        }
        let line_no = idx + 1;
        let mut report = |rule: Rule, message: String| match allow_status(&views, idx, rule) {
            AllowStatus::Allowed => {}
            AllowStatus::MissingReason => out.push(Diagnostic {
                file: rel_path.to_string(),
                line: line_no,
                rule,
                message: format!(
                    "{message} (LINT-ALLOW present but missing a reason — write \
                         `LINT-ALLOW({}): <why this is sound>`)",
                    rule.id()
                ),
            }),
            AllowStatus::NotAllowed => out.push(Diagnostic {
                file: rel_path.to_string(),
                line: line_no,
                rule,
                message,
            }),
        };

        // ---- L1: raw float comparisons -------------------------------
        if active.contains(".partial_cmp(") || active.contains("::partial_cmp(") {
            report(
                Rule::L1FloatCmp,
                "raw `partial_cmp` call; use `f64::total_cmp` / `socl_net::fcmp` \
                 so NaN cannot collapse the ordering"
                    .to_string(),
            );
        }
        if (active.contains("unwrap_or(Ordering::Equal)")
            || active.contains("unwrap_or(cmp::Ordering::Equal)")
            || active.contains("unwrap_or(std::cmp::Ordering::Equal)"))
            && !active.contains("total_cmp")
        {
            report(
                Rule::L1FloatCmp,
                "`unwrap_or(Ordering::Equal)` silently equates NaN with everything; \
                 use a total order (`total_cmp`)"
                    .to_string(),
            );
        }
        if let Some(pos) = active.find("BinaryHeap<") {
            let tail: String = active[pos..].chars().take(80).collect();
            if contains_word(&tail, "f64")
                && !tail.contains("OrdF64")
                && !tail.contains("HeapEntry")
            {
                report(
                    Rule::L1FloatCmp,
                    "bare `f64` key in a `BinaryHeap` ordering; wrap it in \
                     `socl_net::fcmp::OrdF64` (or a struct with a `total_cmp` Ord impl)"
                        .to_string(),
                );
            }
        }

        // ---- L2: panic-freedom in library code -----------------------
        if kind == FileKind::Lib {
            for (needle, what) in [
                (".unwrap()", "`.unwrap()`"),
                (".expect(", "`.expect(…)`"),
                (".expect_err(", "`.expect_err(…)`"),
            ] {
                if active.contains(needle) {
                    report(
                        Rule::L2PanicFree,
                        format!(
                            "{what} in library code; propagate a `Result`/`Option`, \
                             or justify with `LINT-ALLOW(L2-panic-free): reason`"
                        ),
                    );
                }
            }
            for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
                if find_macro(&active, mac) {
                    report(
                        Rule::L2PanicFree,
                        format!(
                            "`{mac}(…)` in library code; return an error instead, or \
                             justify with `LINT-ALLOW(L2-panic-free): reason`"
                        ),
                    );
                }
            }
        }

        // ---- L3: nondeterminism sources ------------------------------
        if krate != "bench" {
            for needle in [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
            ] {
                if active.contains(needle) {
                    report(
                        Rule::L3Time,
                        format!(
                            "`{needle}` outside crates/bench; use \
                             `socl_net::time::Stopwatch` for timing and seeded RNGs \
                             for randomness"
                        ),
                    );
                }
            }
        }
        for needle in ["HashMap", "HashSet"] {
            if contains_word(&active, needle) {
                report(
                    Rule::L3Hash,
                    format!(
                        "`{needle}` has randomized iteration order; use \
                         `BTreeMap`/`BTreeSet` or a sorted drain so output order is \
                         deterministic"
                    ),
                );
            }
        }

        // ---- L4: unsafe must be documented ---------------------------
        if contains_word(&active, "unsafe") {
            let documented = (idx.saturating_sub(3)..=idx)
                .any(|j| views[j].comment.trim_start().starts_with("SAFETY:"));
            if !documented {
                report(
                    Rule::L4Safety,
                    "`unsafe` without a `// SAFETY:` comment on or directly above \
                     the block"
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Result of scanning for a `LINT-ALLOW` covering (line, rule).
pub(crate) enum AllowStatus {
    Allowed,
    MissingReason,
    NotAllowed,
}

/// A violation on line `idx` is suppressed by `LINT-ALLOW(rule[,rule…]): reason`
/// in a comment on the same line or in the contiguous run of comment-only
/// lines directly above it.
pub(crate) fn allow_status(views: &[LineView], idx: usize, rule: Rule) -> AllowStatus {
    let check = |comment: &str| -> Option<AllowStatus> {
        let pos = comment.find("LINT-ALLOW(")?;
        let rest = &comment[pos + "LINT-ALLOW(".len()..];
        let close = rest.find(')')?;
        let rules = &rest[..close];
        let covered = rules
            .split(',')
            .filter_map(Rule::from_id)
            .any(|r| r == rule);
        if !covered {
            return None;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            Some(AllowStatus::MissingReason)
        } else {
            Some(AllowStatus::Allowed)
        }
    };
    if let Some(st) = check(&views[idx].comment) {
        return st;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let v = &views[j];
        if !v.is_code_blank() {
            break;
        }
        if let Some(st) = check(&v.comment) {
            return st;
        }
        if v.comment.trim().is_empty() && v.code.trim().is_empty() {
            // blank line ends the attached comment block
            break;
        }
    }
    AllowStatus::NotAllowed
}

/// `mac!` occurrence with a non-identifier char before it.
fn find_macro(code: &str, mac: &str) -> bool {
    let pat = format!("{mac}(");
    let bang = mac.to_string();
    let mut start = 0;
    while let Some(pos) = code[start..].find(&bang) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && code[abs..].starts_with(&pat) {
            return true;
        }
        start = abs + bang.len();
    }
    false
}

/// Which pass families to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Passes {
    /// The token-level L1–L4 rules.
    pub token: bool,
    /// The interprocedural T1/T2 taint passes (plus P0 parse diagnostics).
    pub taint: bool,
    /// The T3 units-of-measure pass.
    pub units: bool,
    /// The A1 hot-loop allocation pass (plus P0 parse diagnostics).
    pub alloc: bool,
    /// The C1 checkpoint codec-coverage pass.
    pub codec: bool,
    /// The X1 lock-discipline pass (plus P0 parse diagnostics).
    pub lock: bool,
    /// The X2 spawn-capture-disjointness pass (plus P0 parse diagnostics).
    pub capture: bool,
    /// The X3 order-restoring-reduction pass (plus P0 parse diagnostics).
    pub order: bool,
}

impl Default for Passes {
    fn default() -> Self {
        Passes {
            token: true,
            taint: true,
            units: true,
            alloc: true,
            codec: true,
            lock: true,
            capture: true,
            order: true,
        }
    }
}

const NO_PASSES: Passes = Passes {
    token: false,
    taint: false,
    units: false,
    alloc: false,
    codec: false,
    lock: false,
    capture: false,
    order: false,
};

impl Passes {
    /// Parse a comma-separated `--passes` value
    /// (`token,taint,units,alloc,codec,lock,capture,order`).
    pub fn from_list(list: &str) -> Result<Passes, String> {
        let mut p = NO_PASSES;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match name {
                "token" => p.token = true,
                "taint" => p.taint = true,
                "units" => p.units = true,
                "alloc" => p.alloc = true,
                "codec" => p.codec = true,
                "lock" => p.lock = true,
                "capture" => p.capture = true,
                "order" => p.order = true,
                other => {
                    return Err(format!(
                        "unknown pass `{other}` (token, taint, units, alloc, codec, \
                         lock, capture, order)"
                    ))
                }
            }
        }
        if p == NO_PASSES {
            return Err("empty pass list".to_string());
        }
        Ok(p)
    }

    /// Does this selection need the workspace call graph?
    fn needs_graph(&self) -> bool {
        self.taint || self.alloc || self.lock || self.capture || self.order
    }
}

/// Lint a set of in-memory `(workspace-relative path, source)` files.
///
/// This is the core the CLI, the workspace walk, the fixture tests and the
/// dogfood test all share. Token rules run per file; the taint passes build
/// one call graph over the library-kind files (the linter's own crate is
/// excluded — it reads the filesystem by design); the units pass runs on the
/// covered latency/objective files.
pub fn lint_files(files: &[(String, String)], passes: &Passes) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if passes.token {
        for (rel, src) in files {
            out.extend(lint_source(rel, src, None));
        }
    }
    if passes.units {
        for (rel, src) in files {
            if classify(rel) == FileKind::Lib && crate::units::is_covered(rel) {
                out.extend(crate::units::check_file(rel, src));
            }
        }
    }
    if passes.needs_graph() || passes.codec {
        let lib_files: Vec<(String, String)> = files
            .iter()
            .filter(|(rel, _)| classify(rel) == FileKind::Lib && !rel.starts_with("crates/lint/"))
            .cloned()
            .collect();
        if passes.needs_graph() {
            let graph = crate::callgraph::Graph::build(&lib_files);
            for (file, line, msg) in &graph.parse_errors {
                out.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    rule: Rule::P0Parse,
                    message: format!(
                        "{msg}; the interprocedural passes cannot see through this file"
                    ),
                });
            }
            if passes.taint {
                out.extend(crate::taint::check(&lib_files, &graph));
            }
            if passes.alloc {
                out.extend(crate::alloc::check(&lib_files, &graph));
            }
            if passes.lock || passes.capture || passes.order {
                let summ = crate::conc::Summaries::build(&graph);
                if passes.lock {
                    out.extend(crate::lock::check(&lib_files, &graph, &summ));
                }
                if passes.capture {
                    out.extend(crate::capture::check(&lib_files, &graph, &summ));
                }
                if passes.order {
                    out.extend(crate::reduction::check(&lib_files, &graph));
                }
            }
        }
        if passes.codec {
            out.extend(crate::codec_cov::check(&lib_files));
        }
    }
    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    out.dedup();
    out
}

/// Walk the workspace at `root`, linting every `.rs` file under `crates/*/src`.
///
/// Fixture files under `crates/lint/tests/` are skipped (they are deliberate
/// violations), as are `target/` and hidden directories.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    lint_workspace_passes(root, &Passes::default())
}

/// [`lint_workspace`] with an explicit pass selection.
pub fn lint_workspace_passes(root: &Path, passes: &Passes) -> Result<Vec<Diagnostic>, String> {
    Ok(lint_files(&workspace_files(root)?, passes))
}

/// The `(workspace-relative path, source)` pairs the workspace walk lints:
/// every `.rs` file under `crates/*/src`, skipping hidden dirs, `target/`
/// and `fixtures/`.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/ directory)",
            root.display()
        ));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut pairs: Vec<(String, String)> = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&f).map_err(|e| format!("read {}: {e}", f.display()))?;
        pairs.push((rel, src));
    }
    Ok(pairs)
}

/// Stale-waiver detection: re-run the selected passes with one
/// `LINT-ALLOW(...)`/`LINT-HOT(...)` marker masked at a time; a marker
/// whose masking leaves the diagnostic set bit-identical suppresses
/// nothing and is reported as `W0-stale-waiver` at its line.
///
/// The mask is length-preserving (`LINT-` → `SKIP-` inside the comment),
/// so every other diagnostic keeps its exact line/column and the
/// before/after sets compare cleanly. Markers are only looked for in
/// comments (via the lexer's line views), only in `Lib`/`Bin` files, and
/// never inside `crates/lint/` itself — the linter's sources and docs
/// mention markers by name without meaning them.
pub fn stale_waivers(files: &[(String, String)], passes: &Passes) -> Vec<Diagnostic> {
    let baseline = lint_files(files, passes);
    let mut out = Vec::new();
    for (fi, (rel, src)) in files.iter().enumerate() {
        if classify(rel) == FileKind::Test || rel.starts_with("crates/lint/") {
            continue;
        }
        let views = line_views(src);
        // Byte offset of each line start in `src`, to map (line, col) hits
        // back into the raw source.
        let mut line_starts = vec![0usize];
        for (pos, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(pos + 1);
            }
        }
        for (idx, view) in views.iter().enumerate() {
            let Some(&ls) = line_starts.get(idx) else {
                continue;
            };
            let line_end = line_starts.get(idx + 1).copied().unwrap_or(src.len());
            let raw = &src[ls..line_end];
            for marker in ["LINT-ALLOW(", "LINT-HOT("] {
                if !view.comment.contains(marker) {
                    continue;
                }
                let mut from = 0usize;
                while let Some(col) = raw[from..].find(marker) {
                    let col = from + col;
                    from = col + marker.len();
                    // `view.code` blanks comment bytes in place (same byte
                    // length as the raw line), so a comment-resident marker
                    // has whitespace at its column — a code- or
                    // string-resident lookalike does not survive both tests.
                    let in_code = view
                        .code
                        .as_bytes()
                        .get(col)
                        .is_some_and(|b| !b.is_ascii_whitespace());
                    if in_code {
                        continue;
                    }
                    let at = ls + col;
                    let mut masked = src.clone();
                    masked.replace_range(at..at + 5, "SKIP-");
                    let mut trial: Vec<(String, String)> = files.to_vec();
                    trial[fi].1 = masked;
                    if lint_files(&trial, passes) == baseline {
                        out.push(Diagnostic {
                            file: rel.clone(),
                            line: idx + 1,
                            rule: Rule::W0StaleWaiver,
                            message: format!(
                                "stale `{}...)` marker: masking it changes no \
                                 diagnostic under the selected passes — delete it \
                                 (dead waivers hide future violations at this site)",
                                &marker[..marker.len() - 1]
                            ),
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

/// [`stale_waivers`] over the workspace at `root`.
pub fn stale_waivers_workspace(root: &Path, passes: &Passes) -> Result<Vec<Diagnostic>, String> {
    Ok(stale_waivers(&workspace_files(root)?, passes))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().map(|n| n.to_string_lossy().to_string());
        if let Some(n) = &name {
            if n.starts_with('.') || n == "target" || n == "fixtures" {
                continue;
            }
        }
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Serialize diagnostics as a JSON array (no external deps; the four fields
/// are flat, so hand-rolled string escaping is all that is needed). This is
/// the exact payload `socl-lint --json` prints, so machine consumers and the
/// dogfood test share one renderer.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule.id(),
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

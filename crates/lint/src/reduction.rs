//! X3-order-restore: parallel aggregation into a shared collection must
//! be **index-tagged** and **re-sorted** before the collection's contents
//! escape — the `Mutex<Vec<(usize, Vec<T>)>>` + `sort_by_key` idiom of
//! `socl_net::par` and `socl_serve`'s shard buckets.
//!
//! Workers finish in scheduler order. A bare `guard.push(value)` from a
//! dispatched closure therefore produces a permutation that varies run to
//! run — a determinism hole T1 cannot see, because no nondeterminism
//! *source* (clock, RNG, hash order) is involved; the scheduler itself is
//! the source. Two findings close it:
//!
//! * an **untagged aggregation**: a dispatched closure pushes plain values
//!   (not `(index, value)` tuples) into a captured, locked collection;
//! * a **missing re-sort**: the aggregation is index-tagged, but no
//!   `sort*`/`sort_by_key` on the same collection follows the dispatch in
//!   the dispatching function — tags nobody sorts by restore nothing.
//!
//! `extend`/`append` count as tagged (they splice whole runs whose
//! internal order the producing worker fixed); the tag discipline then
//! lives on whatever produced the runs.
//!
//! Waivers: `LINT-ALLOW(X3-order-restore)` on the aggregation line (for
//! untagged pushes) or the dispatch line (for missing re-sorts).

use crate::callgraph::Graph;
use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, LineView};
use crate::parser::SyncKind;
use std::collections::{BTreeMap, BTreeSet};

fn waived(views: &BTreeMap<&str, Vec<LineView>>, file: &str, line: usize) -> bool {
    let Some(v) = views.get(file) else {
        return false;
    };
    if line == 0 || line > v.len() {
        return false;
    }
    matches!(
        allow_status(v, line - 1, Rule::X3OrderRestore),
        AllowStatus::Allowed
    )
}

/// Run the X3 pass. `files` must be the set the graph was built from.
pub fn check(files: &[(String, String)], graph: &Graph) -> Vec<Diagnostic> {
    let views: BTreeMap<&str, Vec<LineView>> = files
        .iter()
        .map(|(rel, src)| (rel.as_str(), line_views(src)))
        .collect();

    let mut out = Vec::new();
    let mut emitted: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for node in graph.nodes.iter() {
        let item = &node.item;
        for s in &item.sync {
            if !matches!(s.kind, SyncKind::Dispatch | SyncKind::Spawn) {
                continue;
            }
            for &ci in &s.closures {
                let closure = &item.closures[ci];
                for cap in &closure.captures {
                    if !cap.locked || cap.aggregates.is_empty() {
                        continue;
                    }
                    let mut any_tagged = false;
                    for agg in &cap.aggregates {
                        if agg.tagged {
                            any_tagged = true;
                            continue;
                        }
                        if waived(&views, &node.file, agg.line)
                            || !emitted.insert((node.file.clone(), agg.line, cap.name.clone()))
                        {
                            continue;
                        }
                        out.push(Diagnostic {
                            file: node.file.clone(),
                            line: agg.line,
                            rule: Rule::X3OrderRestore,
                            message: format!(
                                "untagged parallel aggregation: closure dispatched \
                                 via `{}` (line {}) pushes plain values into `{}` — \
                                 completion order is scheduler-dependent; push \
                                 `(index, value)` tuples and `sort_by_key` the \
                                 collection after the dispatch, or justify with \
                                 `LINT-ALLOW({})`",
                                s.what,
                                s.line,
                                cap.name,
                                Rule::X3OrderRestore.id()
                            ),
                        });
                    }
                    // Tagged pushes need a deterministic re-sort on the same
                    // collection after the dispatch, in this function.
                    if any_tagged {
                        let sorted = item.sync.iter().any(|t| {
                            t.kind == SyncKind::Sort && t.tok > s.tok && t.recv == cap.name
                        });
                        if sorted
                            || waived(&views, &node.file, s.line)
                            || !emitted.insert((node.file.clone(), s.line, cap.name.clone()))
                        {
                            continue;
                        }
                        out.push(Diagnostic {
                            file: node.file.clone(),
                            line: s.line,
                            rule: Rule::X3OrderRestore,
                            message: format!(
                                "index-tagged aggregation into `{}` is never re-sorted \
                                 after the `{}` dispatch — tags nobody sorts by do not \
                                 restore order; `{}.sort_by_key(|(i, _)| *i)` before \
                                 the contents escape, or justify with \
                                 `LINT-ALLOW({})`",
                                cap.name,
                                s.what,
                                cap.name,
                                Rule::X3OrderRestore.id()
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

//! Shared transitive summaries for the concurrency-discipline passes
//! (X1-lock-discipline, X2-capture-disjoint, X3-order-restore).
//!
//! Each summary answers "does this function, directly or through calls,
//! …" with a shortest witness chain down to the concrete site:
//!
//! * **dispatches** — reach a `par_map*` pool dispatch or a scoped
//!   `.spawn(…)`. X1 uses it to flag guards held across calls that fan
//!   out to the pool.
//! * **allocates** — reach an allocation primitive (the same seed set as
//!   `A1-hot-alloc`).
//! * **loop_alloc** — reach an allocation that executes inside a loop:
//!   a direct primitive at loop depth > 0, a looped call into an
//!   allocating fn, or any call into a loop-allocating fn.
//! * **interior** — reach a `.lock()` / `lock_recover(…)` acquisition.
//!   X2 uses it to flag captured identifiers that resolve to functions
//!   with interior mutability.
//!
//! Ambiguity gate (PR 8 semantics): an edge produced by a name-union over
//! several same-name candidates participates only when **every** candidate
//! of its call site has the property — otherwise a ubiquitous method name
//! would smear the property over the whole workspace.
//!
//! The summaries are deliberately waiver-free: `LINT-ALLOW` is applied by
//! each pass at its diagnosis line (the lock, capture, aggregation or call
//! site it reports), which keeps one marker from silently severing chains
//! for three different rules at once.

use crate::callgraph::Graph;
use crate::parser::SyncKind;
use std::collections::{BTreeMap, VecDeque};

/// One transitive property over the call graph with witness chains.
pub struct Reach {
    /// Does node `i` have the property (directly or transitively)?
    pub has: Vec<bool>,
    /// Next node on the shortest path toward a direct site.
    parent: Vec<Option<usize>>,
    /// For direct holders: what the concrete site is (`par_map`, `lock`,
    /// `vec!`, …).
    what: Vec<Option<String>>,
}

impl Reach {
    /// `"`what`"` for a direct holder, `"`what` via a -> b"` when the
    /// property is reached through intermediate fns. Mirrors A1's witness
    /// renderer so chains read the same across passes.
    pub fn witness(&self, graph: &Graph, start: usize) -> String {
        let mut chain = vec![start];
        let mut cur = start;
        while let Some(next) = self.parent[cur] {
            chain.push(next);
            cur = next;
        }
        let what = self.what[cur].clone().unwrap_or_else(|| "site".to_string());
        if chain.len() == 1 {
            format!("`{what}`")
        } else {
            let via: Vec<&str> = chain[1..]
                .iter()
                .map(|&k| graph.nodes[k].item.qual.as_str())
                .collect();
            format!("`{what}` via {}", via.join(" -> "))
        }
    }
}

/// All summaries, built once per lint run and shared by the X passes.
pub struct Summaries {
    pub dispatches: Reach,
    pub allocates: Reach,
    pub loop_alloc: Reach,
    pub interior: Reach,
}

/// Reverse-BFS from the seeded nodes along callee → caller edges; first
/// visit wins, so `parent` encodes shortest witness chains. `seeds[i]`
/// names node `i`'s direct site when it has one. An uncertain edge is
/// followed only when every candidate of its call site already has the
/// property (the gate closes over the fixpoint because `has` only grows
/// and queue order is breadth-first over a monotone frontier: re-checking
/// a site after more candidates turn positive happens via those
/// candidates' own queue entries).
fn propagate(graph: &Graph, seeds: Vec<Option<String>>) -> Reach {
    let n = graph.nodes.len();
    let mut site_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (ei, e) in graph.edges.iter().enumerate() {
        site_edges.entry(e.site).or_default().push(ei);
    }
    let mut has = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (ni, s) in seeds.iter().enumerate() {
        if s.is_some() {
            has[ni] = true;
            queue.push_back(ni);
        }
    }
    let site_ok = |site: usize, has: &[bool]| -> bool {
        site_edges
            .get(&site)
            .is_some_and(|v| v.iter().all(|&oi| has[graph.edges[oi].to]))
    };
    while let Some(ni) = queue.pop_front() {
        for &ei in &graph.rev[ni] {
            let e = graph.edges[ei];
            if has[e.from] {
                continue;
            }
            if !e.certain && !site_ok(e.site, &has) {
                continue;
            }
            has[e.from] = true;
            parent[e.from] = Some(ni);
            queue.push_back(e.from);
        }
    }
    Reach {
        has,
        parent,
        what: seeds,
    }
}

impl Summaries {
    pub fn build(graph: &Graph) -> Summaries {
        let n = graph.nodes.len();

        // Direct pool dispatch / scoped spawn.
        let dispatch_seeds: Vec<Option<String>> = graph
            .nodes
            .iter()
            .map(|node| {
                node.item
                    .sync
                    .iter()
                    .find(|s| matches!(s.kind, SyncKind::Dispatch | SyncKind::Spawn))
                    .map(|s| s.what.clone())
            })
            .collect();
        let dispatches = propagate(graph, dispatch_seeds);

        // Direct allocation primitive (A1's seed set, un-waived — see the
        // module docs for why the summaries ignore waivers).
        let alloc_seeds: Vec<Option<String>> = graph
            .nodes
            .iter()
            .map(|node| node.item.allocs.first().map(|a| a.what.clone()))
            .collect();
        let allocates = propagate(graph, alloc_seeds);

        // Allocation in loop context: a direct primitive at loop depth > 0
        // seeds the node; a looped call edge into an `allocates` node seeds
        // the caller (the loop is the caller's, the allocation the
        // callee's).
        let mut site_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (ei, e) in graph.edges.iter().enumerate() {
            site_edges.entry(e.site).or_default().push(ei);
        }
        let mut loop_seeds: Vec<Option<String>> = graph
            .nodes
            .iter()
            .map(|node| {
                node.item
                    .allocs
                    .iter()
                    .find(|a| a.loop_depth > 0)
                    .map(|a| a.what.clone())
            })
            .collect();
        for e in &graph.edges {
            if e.loop_depth == 0 || loop_seeds[e.from].is_some() || !allocates.has[e.to] {
                continue;
            }
            if !e.certain {
                let all = site_edges
                    .get(&e.site)
                    .is_some_and(|v| v.iter().all(|&oi| allocates.has[graph.edges[oi].to]));
                if !all {
                    continue;
                }
            }
            loop_seeds[e.from] = Some(format!(
                "looped call to `{}` ({})",
                graph.nodes[e.to].item.qual,
                allocates.witness(graph, e.to)
            ));
        }
        let loop_alloc = propagate(graph, loop_seeds);

        // Direct lock acquisition (interior mutability).
        let interior_seeds: Vec<Option<String>> = graph
            .nodes
            .iter()
            .map(|node| {
                node.item
                    .sync
                    .iter()
                    .find(|s| matches!(s.kind, SyncKind::Lock | SyncKind::LockHelper))
                    .map(|s| s.what.clone())
            })
            .collect();
        let interior = propagate(graph, interior_seeds);

        debug_assert_eq!(dispatches.has.len(), n);
        Summaries {
            dispatches,
            allocates,
            loop_alloc,
            interior,
        }
    }
}

//! T3-units: units-of-measure checking for latency/objective arithmetic.
//!
//! The Eq. 2/7 completion-time model mixes five physical dimensions — data
//! (GB), channel speed (GB/s), work (GFLOP), compute speed (GFLOP/s) and
//! time (s) — and every historical latency-model bug in this codebase was a
//! unit or aggregation mistake. This pass enforces an *identifier-suffix
//! convention* over binary-op expressions in the covered latency/objective
//! files:
//!
//! | suffix        | dimension            |
//! |---------------|----------------------|
//! | `_s`          | seconds              |
//! | `_ms`         | milliseconds         |
//! | `_bytes`      | bytes                |
//! | `_gb`         | gigabytes            |
//! | `_bps`        | bytes per second     |
//! | `_gbps`       | gigabytes per second |
//! | `_cycles`     | CPU cycles           |
//! | `_gflop`      | GFLOP (work)         |
//! | `_hz`         | cycles per second    |
//! | `_gflops`     | GFLOP per second     |
//! | `_s_per_gb`   | seconds per gigabyte |
//!
//! Adding `_s` to `_bytes`, or dividing `_bytes` by anything that is not
//! `_bps` (or another byte quantity), is a diagnostic. Identifiers without a
//! suffix are *unknown*: combining an unknown identifier additively with a
//! known quantity is also a diagnostic — that is what surfaces unsuffixed
//! mixed-unit locals. Anything the checker cannot understand (struct
//! literals, closures-of-closures, exotic expressions) bails silently; this
//! pass is deliberately high-precision, not high-recall.
//!
//! Scope: only the files listed in [`COVERED_FILES`] are checked, so bare
//! identifiers in intentionally dimension-mixing code (the λ-weighted
//! objective) stay legal — the blend terms simply never carry suffixes.

use crate::engine::{allow_status, AllowStatus, Diagnostic, Rule};
use crate::lexer::{line_views, test_gated_mask};
use crate::parser::{tokenize, Tok, TokKind};

/// Files the units pass covers (workspace-relative).
pub const COVERED_FILES: [&str; 4] = [
    "crates/model/src/latency.rs",
    "crates/model/src/objective.rs",
    "crates/model/src/routing.rs",
    "crates/net/src/paths.rs",
];

/// Function names whose call-result dimension is declared here rather than
/// by suffix (pre-existing public API whose names are part of the paper's
/// vocabulary). Suffixed function names (`compute_gflop`) do not need an
/// entry — the suffix table applies to call names too.
pub const FN_UNITS: [(&str, Dim); 8] = [
    ("transfer_time", Dim::S),
    ("return_time", Dim::S),
    ("total", Dim::S), // CompletionBreakdown::total
    ("latency_weight", Dim::SPerGb),
    ("hop_path_weight", Dim::SPerGb),
    ("best_speed", Dim::Gbps),
    ("virtual_speed", Dim::Gbps),
    ("channel_speed", Dim::Gbps),
];

/// Names that are *known-ambiguous* across the workspace (the same name
/// returns different dimensions on different types) and therefore banned in
/// covered arithmetic. `compute` returned GFLOP on `ServiceCatalog` and
/// GFLOP/s on `EdgeNetwork` — the exact confusion this pass exists to kill.
pub const AMBIGUOUS_FNS: [&str; 1] = ["compute"];

/// Method names that preserve their receiver's dimension.
const PRESERVING: [&str; 10] = [
    "min", "max", "abs", "clamp", "floor", "ceil", "round", "copysign", "clone", "to_owned",
];

/// Method names that always yield a dimensionless count.
const COUNT_FNS: [&str; 2] = ["len", "count"];

/// A physical dimension tracked by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    S,
    Ms,
    Bytes,
    Gb,
    Bps,
    Gbps,
    Cycles,
    Gflop,
    Hz,
    Gflops,
    SPerGb,
}

impl Dim {
    pub fn label(self) -> &'static str {
        match self {
            Dim::S => "s",
            Dim::Ms => "ms",
            Dim::Bytes => "bytes",
            Dim::Gb => "GB",
            Dim::Bps => "bytes/s",
            Dim::Gbps => "GB/s",
            Dim::Cycles => "cycles",
            Dim::Gflop => "GFLOP",
            Dim::Hz => "Hz",
            Dim::Gflops => "GFLOP/s",
            Dim::SPerGb => "s/GB",
        }
    }
}

/// The suffix table, longest suffix first so `_s_per_gb` wins over `_gb`
/// and `_gbps` over `_bps`.
pub const SUFFIXES: [(&str, Dim); 11] = [
    ("_s_per_gb", Dim::SPerGb),
    ("_gflop", Dim::Gflop),
    ("_cycles", Dim::Cycles),
    ("_bytes", Dim::Bytes),
    ("_gbps", Dim::Gbps),
    ("_bps", Dim::Bps),
    ("_gflops", Dim::Gflops),
    ("_gb", Dim::Gb),
    ("_hz", Dim::Hz),
    ("_ms", Dim::Ms),
    ("_s", Dim::S),
];

/// Dimension of an identifier per the suffix convention.
pub fn suffix_dim(name: &str) -> Option<Dim> {
    SUFFIXES
        .iter()
        .find(|(suf, _)| name.ends_with(suf))
        .map(|&(_, d)| d)
}

/// Dimension of a call result, by suffix first and the fn table second.
fn call_dim(name: &str) -> Option<Dim> {
    suffix_dim(name).or_else(|| FN_UNITS.iter().find(|(n, _)| *n == name).map(|&(_, d)| d))
}

/// `a / b` result for known dimensions; `Err(())` when the pair has no
/// declared rule (a diagnostic).
fn div_dim(a: Dim, b: Dim) -> Result<Option<Dim>, ()> {
    use Dim::*;
    if a == b {
        return Ok(None); // dimensionless ratio
    }
    Ok(Some(match (a, b) {
        (Gb, Gbps) => S,
        (Bytes, Bps) => S,
        (Gflop, Gflops) => S,
        (Cycles, Hz) => S,
        (Gb, S) => Gbps,
        (Bytes, S) => Bps,
        (Gflop, S) => Gflops,
        (Cycles, S) => Hz,
        (S, Gb) => SPerGb,
        (S, SPerGb) => Gb,
        _ => return Err(()),
    }))
}

/// `a * b` result for known dimensions; unknown pairs bail silently
/// (products legitimately build new dimensions, e.g. variances).
fn mul_dim(a: Dim, b: Dim) -> Option<Dim> {
    use Dim::*;
    let table = |x: Dim, y: Dim| -> Option<Dim> {
        Some(match (x, y) {
            (Gb, SPerGb) => S,
            (Gbps, S) => Gb,
            (Bps, S) => Bytes,
            (Gflops, S) => Gflop,
            (Hz, S) => Cycles,
            _ => return None,
        })
    };
    table(a, b).or_else(|| table(b, a))
}

/// Checker value lattice.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    /// Known dimension.
    Known(Dim),
    /// Numeric literal / dimensionless count: compatible with anything.
    Wild,
    /// A bare identifier (name kept for the diagnostic).
    Unknown(String),
    /// Unparseable / out of scope: poisons its own subtree only.
    Bail,
}

struct Checker<'a> {
    toks: &'a [Tok],
    i: usize,
    /// (line, message) pairs, waiver-filtered by the caller.
    diags: Vec<(usize, String)>,
}

impl<'a> Checker<'a> {
    fn peek(&self, k: usize) -> Option<&TokKind> {
        self.toks.get(self.i + k).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks.get(self.i).map(|t| t.line).unwrap_or(0)
    }

    fn punct(&self, k: usize) -> Option<&'static str> {
        match self.peek(k) {
            Some(TokKind::Punct(p)) => Some(p),
            _ => None,
        }
    }

    /// additive := multiplicative (('+' | '-') multiplicative)*
    fn additive(&mut self) -> Val {
        let mut lhs = self.multiplicative();
        loop {
            let op = match self.punct(0) {
                Some("+") => "+",
                Some("-") => "-",
                _ => break,
            };
            let line = self.line();
            self.i += 1;
            let rhs = self.multiplicative();
            lhs = self.combine_add(lhs, rhs, op, line);
        }
        lhs
    }

    fn combine_add(&mut self, lhs: Val, rhs: Val, op: &str, line: usize) -> Val {
        match (&lhs, &rhs) {
            (Val::Bail, _) | (_, Val::Bail) => Val::Bail,
            (Val::Known(a), Val::Known(b)) => {
                if a == b {
                    lhs
                } else {
                    self.diags.push((
                        line,
                        format!(
                            "`{op}` combines {} with {}; convert one side explicitly",
                            a.label(),
                            b.label()
                        ),
                    ));
                    Val::Bail
                }
            }
            (Val::Known(a), Val::Unknown(n)) | (Val::Unknown(n), Val::Known(a)) => {
                self.diags.push((
                    line,
                    format!(
                        "unsuffixed `{n}` combined (`{op}`) with a {} quantity; \
                         give it a unit suffix (e.g. `{n}_{}`) or convert",
                        a.label(),
                        suffix_hint(*a)
                    ),
                ));
                Val::Bail
            }
            (Val::Known(_), Val::Wild) => lhs,
            (Val::Wild, Val::Known(_)) => rhs,
            (Val::Wild, Val::Wild) => Val::Wild,
            _ => Val::Bail, // Unknown with Unknown/Wild: nothing to check
        }
    }

    /// multiplicative := unary (('*' | '/') unary)*
    fn multiplicative(&mut self) -> Val {
        let mut lhs = self.unary();
        loop {
            let op = match self.punct(0) {
                Some("*") => "*",
                Some("/") => "/",
                _ => break,
            };
            let line = self.line();
            self.i += 1;
            let rhs = self.unary();
            lhs = match (&lhs, &rhs) {
                (Val::Bail, _) | (_, Val::Bail) => Val::Bail,
                (Val::Known(a), Val::Known(b)) => {
                    if op == "/" {
                        match div_dim(*a, *b) {
                            Ok(Some(d)) => Val::Known(d),
                            Ok(None) => Val::Wild,
                            Err(()) => {
                                self.diags.push((
                                    line,
                                    format!(
                                        "dividing {} by {} has no declared unit rule \
                                         (expected e.g. GB ÷ GB/s, GFLOP ÷ GFLOP/s)",
                                        a.label(),
                                        b.label()
                                    ),
                                ));
                                Val::Bail
                            }
                        }
                    } else {
                        match mul_dim(*a, *b) {
                            Some(d) => Val::Known(d),
                            None => Val::Bail,
                        }
                    }
                }
                (Val::Known(_), Val::Wild) => lhs,
                (Val::Wild, Val::Known(b)) if op == "*" => Val::Known(*b),
                _ => Val::Bail,
            };
        }
        lhs
    }

    /// unary := ('-' | '!' | '&' | '*')* postfix
    fn unary(&mut self) -> Val {
        match self.punct(0) {
            Some("-") | Some("!") | Some("&") | Some("*") | Some("&&") => {
                self.i += 1;
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    /// postfix := primary ('.' member | '[' expr ']' | '?' | 'as' type)*
    fn postfix(&mut self) -> Val {
        let mut val = self.primary();
        loop {
            match self.peek(0) {
                Some(TokKind::Punct(".")) => {
                    self.i += 1;
                    match self.peek(0).cloned() {
                        Some(TokKind::Ident(name)) => {
                            self.i += 1;
                            // Turbofish on the member.
                            if self.punct(0) == Some("::") {
                                self.i += 1;
                                self.skip_angles();
                            }
                            if self.punct(0) == Some("(") {
                                self.check_args();
                                val = self.member_call_val(&name, val);
                            } else {
                                // Field access.
                                val = match suffix_dim(&name) {
                                    Some(d) => Val::Known(d),
                                    None => Val::Unknown(name),
                                };
                            }
                        }
                        Some(TokKind::Num(_)) => {
                            // Tuple field: dimension unknown.
                            self.i += 1;
                            val = Val::Bail;
                        }
                        _ => return Val::Bail,
                    }
                }
                Some(TokKind::Punct("[")) => {
                    self.skip_group();
                    // Indexing preserves the container's dimension.
                }
                Some(TokKind::Punct("?")) => self.i += 1,
                Some(TokKind::Ident(k)) if k == "as" => {
                    self.i += 1;
                    // Consume the target type path; casts preserve dimension.
                    while matches!(self.peek(0), Some(TokKind::Ident(_)))
                        || self.punct(0) == Some("::")
                    {
                        self.i += 1;
                    }
                }
                _ => break,
            }
        }
        val
    }

    /// Result dimension of a `.name(…)` call on `recv`.
    fn member_call_val(&mut self, name: &str, recv: Val) -> Val {
        if AMBIGUOUS_FNS.contains(&name) {
            let line = self
                .toks
                .get(self.i.saturating_sub(1))
                .map(|t| t.line)
                .unwrap_or(0);
            self.diags.push((
                line,
                format!(
                    "call to unit-ambiguous `{name}(…)` in covered latency code; \
                     rename the method with a unit suffix (it returns different \
                     dimensions on different types)"
                ),
            ));
            return Val::Bail;
        }
        if PRESERVING.contains(&name) {
            return recv;
        }
        if COUNT_FNS.contains(&name) {
            return Val::Wild;
        }
        match call_dim(name) {
            Some(d) => Val::Known(d),
            None => Val::Bail,
        }
    }

    fn primary(&mut self) -> Val {
        match self.peek(0).cloned() {
            Some(TokKind::Num(_)) => {
                self.i += 1;
                Val::Wild
            }
            Some(TokKind::Punct("(")) => {
                self.i += 1;
                let v = self.additive();
                if self.punct(0) == Some(")") {
                    self.i += 1;
                    v
                } else {
                    // Tuple or unparsed remainder: skip to the close.
                    self.skip_to_close(")");
                    Val::Bail
                }
            }
            Some(TokKind::Ident(first)) => {
                if is_expr_stopper(&first) {
                    return Val::Bail;
                }
                // Path chain a::b::c.
                let mut last = first;
                self.i += 1;
                while self.punct(0) == Some("::") {
                    if matches!(self.peek(1), Some(TokKind::Punct("<"))) {
                        self.i += 1;
                        self.skip_angles();
                        continue;
                    }
                    match self.peek(1).cloned() {
                        Some(TokKind::Ident(seg)) => {
                            last = seg;
                            self.i += 2;
                        }
                        _ => break,
                    }
                }
                if self.punct(0) == Some("(") {
                    if AMBIGUOUS_FNS.contains(&last.as_str()) {
                        let line = self.line();
                        self.diags.push((
                            line,
                            format!(
                                "call to unit-ambiguous `{last}(…)` in covered latency \
                                 code; rename the function with a unit suffix"
                            ),
                        ));
                        self.check_args();
                        return Val::Bail;
                    }
                    self.check_args();
                    match call_dim(&last) {
                        Some(d) => Val::Known(d),
                        None => Val::Bail,
                    }
                } else if self.punct(0) == Some("!") {
                    // Macro: check the arguments, ignore the result.
                    self.i += 1;
                    if matches!(self.punct(0), Some("(") | Some("[")) {
                        self.check_args();
                    } else if self.punct(0) == Some("{") {
                        self.skip_group();
                    }
                    Val::Bail
                } else {
                    match suffix_dim(&last) {
                        Some(d) => Val::Known(d),
                        None => Val::Unknown(last),
                    }
                }
            }
            _ => Val::Bail,
        }
    }

    /// Check each comma-separated argument of a call as its own expression,
    /// consuming the balanced group.
    fn check_args(&mut self) {
        let close = match self.punct(0) {
            Some("(") => ")",
            Some("[") => "]",
            _ => return,
        };
        self.i += 1; // opener
        while self.i < self.toks.len() {
            if self.punct(0) == Some(close) {
                self.i += 1;
                return;
            }
            if self.punct(0) == Some(",") {
                self.i += 1;
                continue;
            }
            let before = self.i;
            let _ = self.additive();
            if self.i == before {
                // Token the expression grammar can't start on (closure
                // pipes, etc.): skip the rest of the group.
                self.skip_to_close(close);
                return;
            }
        }
    }

    fn skip_to_close(&mut self, close: &str) {
        let open = match close {
            ")" => "(",
            "]" => "[",
            _ => "{",
        };
        let mut depth = 1usize;
        while self.i < self.toks.len() {
            match self.punct(0) {
                Some(p) if p == open => depth += 1,
                Some(p) if p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn skip_group(&mut self) {
        let close = match self.punct(0) {
            Some("(") => ")",
            Some("[") => "]",
            Some("{") => "}",
            _ => return,
        };
        self.i += 1;
        self.skip_to_close(close);
    }

    fn skip_angles(&mut self) {
        if self.punct(0) != Some("<") {
            return;
        }
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            match self.punct(0) {
                Some("<") => depth += 1,
                Some(">") => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                Some(";") => return,
                _ => {}
            }
            self.i += 1;
        }
    }
}

/// Keywords at which expression parsing must not start.
fn is_expr_stopper(word: &str) -> bool {
    matches!(
        word,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "where"
            | "in"
            | "as"
            | "dyn"
            | "unsafe"
    )
}

fn suffix_hint(d: Dim) -> &'static str {
    match d {
        Dim::S => "s",
        Dim::Ms => "ms",
        Dim::Bytes => "bytes",
        Dim::Gb => "gb",
        Dim::Bps => "bps",
        Dim::Gbps => "gbps",
        Dim::Cycles => "cycles",
        Dim::Gflop => "gflop",
        Dim::Hz => "hz",
        Dim::Gflops => "gflops",
        Dim::SPerGb => "s_per_gb",
    }
}

/// Is `rel_path` in the covered set?
pub fn is_covered(rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    COVERED_FILES.contains(&p.as_str())
}

/// Run the units pass over one covered file.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let views = line_views(source);
    let mask = test_gated_mask(&views);
    let toks = tokenize(&views, &mask);
    let mut checker = Checker {
        toks: &toks,
        i: 0,
        diags: Vec::new(),
    };

    // Drive: walk the token stream; wherever an expression can start, parse
    // it with the unit grammar. Assignments and compound assignments check
    // the RHS against the LHS dimension.
    while checker.i < toks.len() {
        let before = checker.i;
        let lhs = checker.additive();
        if checker.i == before {
            checker.i += 1;
            continue;
        }
        match checker.punct(0) {
            Some("=") | Some("+=") | Some("-=") => {
                let op = checker.punct(0).unwrap_or("=");
                let line = checker.line();
                checker.i += 1;
                let rhs = checker.additive();
                if let (Val::Known(_), _) | (_, Val::Known(_)) = (&lhs, &rhs) {
                    // `x = y` with both known and unequal, or known/unknown
                    // mixes on compound assignment, reuse the additive rule.
                    if op == "=" {
                        if let (Val::Known(a), Val::Known(b)) = (&lhs, &rhs) {
                            if a != b {
                                checker.diags.push((
                                    line,
                                    format!(
                                        "assigning a {} value to a {} identifier",
                                        b.label(),
                                        a.label()
                                    ),
                                ));
                            }
                        }
                    } else {
                        checker.combine_add(lhs, rhs, op, line);
                    }
                }
            }
            _ => {}
        }
    }

    // Waiver-filter and wrap.
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (line, message) in checker.diags {
        if line == 0 || line > views.len() {
            continue;
        }
        if !seen.insert((line, message.clone())) {
            continue;
        }
        match allow_status(&views, line - 1, Rule::T3Units) {
            AllowStatus::Allowed => {}
            _ => out.push(Diagnostic {
                file: rel_path.to_string(),
                line,
                rule: Rule::T3Units,
                message,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<(usize, String)> {
        check_file("crates/model/src/latency.rs", src)
            .into_iter()
            .map(|d| (d.line, d.message))
            .collect()
    }

    #[test]
    fn adding_seconds_to_bytes_is_flagged() {
        let d = diags("pub fn f(d_s: f64, r_bytes: f64) -> f64 { d_s + r_bytes }");
        assert_eq!(d.len(), 1);
        assert!(d[0].1.contains("combines s with bytes"), "{d:?}");
    }

    #[test]
    fn dividing_bytes_by_bps_is_seconds() {
        // No diagnostic, and the quotient composes additively with seconds.
        let d = diags(
            "pub fn f(r_bytes: f64, rate_bps: f64, t_s: f64) -> f64 { t_s + r_bytes / rate_bps }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dividing_bytes_by_non_rate_is_flagged() {
        let d = diags("pub fn f(r_bytes: f64, f_gflops: f64) -> f64 { r_bytes / f_gflops }");
        assert_eq!(d.len(), 1);
        assert!(d[0].1.contains("no declared unit rule"), "{d:?}");
    }

    #[test]
    fn unsuffixed_ident_with_known_quantity_is_flagged() {
        let d = diags("pub fn f(total: f64, t_s: f64) -> f64 { total + t_s }");
        assert_eq!(d.len(), 1);
        assert!(d[0].1.contains("unsuffixed `total`"), "{d:?}");
    }

    #[test]
    fn literals_are_wild() {
        let d = diags("pub fn f(t_s: f64) -> f64 { t_s + 1.0 - 0.5 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn fn_table_gives_call_results_units() {
        let d = diags("pub fn f(ap: &A, n: u32, q: f64) -> f64 { ap.transfer_time(n, n, q) + q }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].1.contains("unsuffixed `q`"), "{d:?}");
    }

    #[test]
    fn ambiguous_fn_call_is_flagged() {
        let d = diags("pub fn f(cat: &C, m: u32) -> f64 { cat.compute(m) }");
        assert_eq!(d.len(), 1);
        assert!(d[0].1.contains("unit-ambiguous"), "{d:?}");
    }

    #[test]
    fn compound_assign_checks_lhs_dimension() {
        let d = diags("pub fn f(b: &mut B, r_gb: f64, v_gbps: f64) { b.total_s += r_gb / v_gbps; b.total_s += r_gb; }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].1.contains("GB"), "{d:?}");
    }

    #[test]
    fn gflop_over_gflops_is_seconds() {
        let d = diags(
            "pub fn f(q_gflop: f64, c_gflops: f64, t_s: f64) -> f64 { t_s + q_gflop / c_gflops }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suffixed_method_names_carry_units() {
        let d = diags(
            "pub fn f(cat: &C, net: &N, m: u32, t_s: f64) -> f64 { t_s + cat.compute_gflop(m) / net.compute_gflops(m) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn preserving_methods_keep_units() {
        let d = diags("pub fn f(a_s: f64, b_ms: f64) -> f64 { a_s.max(0.0) + b_ms }");
        assert_eq!(d.len(), 1);
        assert!(d[0].1.contains("combines s with ms"), "{d:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let d = diags(
            "pub fn f(d_s: f64, r_bytes: f64) -> f64 {\n    // LINT-ALLOW(T3-units): schema field is a raw byte count by design\n    d_s + r_bytes\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = diags(
            "#[cfg(test)]\nmod tests {\n    fn f(a_s: f64, b_gb: f64) -> f64 { a_s + b_gb }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn uncovered_files_are_skipped_by_is_covered() {
        assert!(is_covered("crates/model/src/latency.rs"));
        assert!(is_covered("crates/net/src/paths.rs"));
        assert!(!is_covered("crates/core/src/combine.rs"));
    }
}

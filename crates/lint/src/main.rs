//! `socl-lint` CLI.
//!
//! ```text
//! socl-lint check [--root <dir>] [--json]
//!                 [--passes token,taint,units,alloc,codec,lock,capture,order]
//!                 [--stale-waivers]
//!                                  lint the workspace (default command);
//!                                  with --stale-waivers, audit the
//!                                  LINT-ALLOW/LINT-HOT markers instead
//! socl-lint rules                  list rules with their rationale
//! ```
//!
//! Exit codes: `0` clean, `1` violations found (including `P0-parse`
//! structural parse failures), `2` internal error (unreadable files, bad
//! arguments, no workspace root). Diagnostics go to stdout, one per line, in
//! the stable `file:line:rule: message` format — or as a JSON array with
//! `--json` — and errors go to stderr.

use socl_lint::engine::{lint_workspace_passes, render_json, stale_waivers_workspace, Passes};
use socl_lint::{find_workspace_root, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut stale = false;
    let mut passes = Passes::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(args[i].as_str()),
            "--json" => json = true,
            "--stale-waivers" => stale = true,
            "--passes" => {
                i += 1;
                match args.get(i) {
                    Some(list) => match Passes::from_list(list) {
                        Ok(p) => passes = p,
                        Err(e) => {
                            eprintln!("socl-lint: --passes: {e}");
                            return ExitCode::from(2);
                        }
                    },
                    None => {
                        eprintln!(
                            "socl-lint: --passes requires a list \
                             (token,taint,units,alloc,codec,lock,capture,order)"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("socl-lint: --root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("socl-lint: unknown argument `{other}` (try `check` or `rules`)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match cmd.unwrap_or("check") {
        "rules" => {
            for r in Rule::ALL {
                println!("{}: {}", r.id(), r.rationale());
            }
            ExitCode::SUCCESS
        }
        _ => {
            let root = match root {
                Some(r) => r,
                None => {
                    let cwd = match std::env::current_dir() {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("socl-lint: cannot determine cwd: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    match find_workspace_root(&cwd) {
                        Some(r) => r,
                        None => {
                            eprintln!(
                                "socl-lint: no workspace root found above {} \
                                 (pass --root)",
                                cwd.display()
                            );
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            let result = if stale {
                stale_waivers_workspace(&root, &passes)
            } else {
                lint_workspace_passes(&root, &passes)
            };
            match result {
                Ok(diags) => {
                    if json {
                        println!("{}", render_json(&diags));
                    } else if diags.is_empty() {
                        println!("socl-lint: clean");
                    } else {
                        for d in &diags {
                            println!("{d}");
                        }
                    }
                    if diags.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("socl-lint: {} violation(s)", diags.len());
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("socl-lint: error: {e}");
                    ExitCode::from(2)
                }
            }
        }
    }
}

//! Item-level parsing of Rust source over the lexer's code views.
//!
//! The interprocedural passes (T1 determinism-taint, T2 panic-reachability)
//! and the units pass (T3) need more structure than per-line tokens: which
//! functions exist, which module/impl they live in, what they call, and
//! which nondeterminism/panic primitives their bodies touch. This module
//! provides exactly that — no external dependency, no full AST.
//!
//! Pipeline: [`crate::lexer::line_views`] blanks comments and string
//! interiors, [`crate::lexer::test_gated_mask`] removes `#[cfg(test)]`
//! bodies, then a tokenizer produces a flat token stream and a single-pass
//! item walker recognizes `mod`/`impl`/`trait`/`fn`/`use` structure. Function
//! bodies are scanned for call sites (free calls, `Path::calls`, `.method()`
//! calls, macros) and for the taint-source primitives of DESIGN.md §6c.
//!
//! The walker is deliberately forgiving: token sequences it does not
//! understand are skipped, and only *structural* damage (unbalanced braces,
//! a `fn` without a body or `;`) is reported as a parse error, which the
//! engine surfaces as a `P0-parse` diagnostic (exit code 1 — distinct from
//! internal errors, which exit 2).

use crate::lexer::{line_views, test_gated_mask, LineView};

/// One token of the code view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// 0-based char column of the token start (used for cfg(test) masking).
    pub col: usize,
    pub kind: TokKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers keep their name, flagged raw).
    Ident(String),
    /// Numeric literal text.
    Num(String),
    /// Lifetime (`'a`), without the quote.
    Lifetime(String),
    /// Operator / punctuation, multi-char ops joined (`::`, `->`, `=>`,
    /// `==`, `!=`, `<=`, `>=`, `&&`, `||`, `+=`, `-=`, `*=`, `/=`, `..`).
    Punct(&'static str),
    /// Any other single char (string-literal quotes survive blanking).
    Other(char),
}

impl TokKind {
    fn punct(&self) -> Option<&'static str> {
        match self {
            TokKind::Punct(p) => Some(p),
            _ => None,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCT2: [&str; 14] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "..",
];

/// Tokenize masked code views into a flat stream.
pub fn tokenize(views: &[LineView], mask: &[Vec<bool>]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (ln, view) in views.iter().enumerate() {
        let chars: Vec<char> = view.code.chars().collect();
        let masked = |i: usize| mask[ln].get(i).copied().unwrap_or(false);
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() || masked(i) {
                i += 1;
                continue;
            }
            let start = i;
            if c.is_alphabetic() || c == '_' {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                // Raw identifier `r#name`: keep the name, it is never a
                // keyword in practice for our item grammar.
                if s == "r" && chars.get(i) == Some(&'#') {
                    let mut j = i + 1;
                    let mut raw = String::new();
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        raw.push(chars[j]);
                        j += 1;
                    }
                    if !raw.is_empty() {
                        i = j;
                        s = raw;
                    }
                }
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Ident(s),
                });
            } else if c.is_ascii_digit() {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `1..2` — don't absorb a range operator into the number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                    // Exponent sign: `1e-9`, `2.5E+3`.
                    if (s.ends_with('e') || s.ends_with('E'))
                        && s.chars().next().is_some_and(|c| c.is_ascii_digit())
                        && matches!(chars.get(i), Some('+') | Some('-'))
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Num(s),
                });
            } else if c == '\'' {
                // The lexer kept lifetimes intact and blanked char-literal
                // interiors (leaving `'  '`). Distinguish: a quote followed
                // by an identifier char is a lifetime.
                if chars
                    .get(i + 1)
                    .is_some_and(|n| n.is_alphabetic() || *n == '_')
                {
                    let mut s = String::new();
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        s.push(chars[i]);
                        i += 1;
                    }
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Lifetime(s),
                    });
                } else {
                    // Blanked char literal `'  '`: skip to the closing quote.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    i = (j + 1).min(chars.len());
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Other('\''),
                    });
                }
            } else if c == '"' {
                // Blanked string literal: skip to the closing quote (which,
                // for raw strings, is followed by hashes the tokenizer can
                // simply emit as punctuation-free skips).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                // Trailing hashes of a raw string terminator.
                let mut k = (j + 1).min(chars.len());
                // Only skip a hash directly after the closing quote (the
                // raw-string terminator); later hashes tokenize normally.
                if k < chars.len() && chars[k] == '#' && chars.get(k.wrapping_sub(1)) == Some(&'"')
                {
                    k += 1;
                }
                i = k.max(j + 1).min(chars.len());
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Other('"'),
                });
            } else {
                // Multi-char operators first.
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                if let Some(p) = PUNCT2.iter().find(|p| **p == two) {
                    // `..=` — absorb the `=` so it can't look like an assign.
                    if *p == ".." && chars.get(i + 2) == Some(&'=') {
                        i += 3;
                    } else {
                        i += 2;
                    }
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Punct(p),
                    });
                } else {
                    i += 1;
                    const SINGLES: &str = "(){}[]<>,;:#!&|+-*/=.?@$%^~";
                    if let Some(pos) = SINGLES.find(c) {
                        // Map to a 'static single-char str.
                        const TABLE: [&str; 28] = [
                            "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", "#", "!", "&",
                            "|", "+", "-", "*", "/", "=", ".", "?", "@", "$", "%", "^", "~",
                            "\u{0}",
                        ];
                        let idx = SINGLES
                            .char_indices()
                            .position(|(p, _)| p == pos)
                            .unwrap_or(27);
                        out.push(Tok {
                            line: ln + 1,
                            col: start,
                            kind: TokKind::Punct(TABLE[idx]),
                        });
                    } else {
                        out.push(Tok {
                            line: ln + 1,
                            col: start,
                            kind: TokKind::Other(c),
                        });
                    }
                }
            }
        }
    }
    out
}

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: usize,
    /// Token index of the first path token in the file's token stream —
    /// lets passes order call sites against guard scopes.
    pub tok: usize,
    /// Path segments as written (`["Stopwatch", "start"]`, `["helper"]`).
    /// For method calls this is the single method name.
    pub path: Vec<String>,
    /// `.name(…)` method-call syntax.
    pub method: bool,
    /// Method call whose receiver token is `self`.
    pub recv_self: bool,
    /// Number of enclosing syntactic loops (`for`/`while`/`while let`/
    /// `loop`, labeled or not) around this call inside its function body.
    pub loop_depth: usize,
}

/// One occurrence of an allocation primitive inside a function body
/// (`Vec::new`, `vec![]`, `.collect()`, `.clone()`, `format!`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 1-based line of the primitive.
    pub line: usize,
    /// The primitive as written, for diagnostics (`Vec::with_capacity`,
    /// `.to_vec()`, `vec!`).
    pub what: String,
    /// Number of enclosing syntactic loops around the site.
    pub loop_depth: usize,
}

/// Category of a taint-source primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `unwrap`/`expect`/`expect_err`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` — the L2 panic family.
    Panic,
    /// Wall clock: `Instant::now`, `SystemTime::now`.
    Time,
    /// Ambient randomness: `thread_rng`, `from_entropy`.
    Rng,
    /// Process environment: `env::var*`, `available_parallelism`.
    Env,
    /// Filesystem reads/writes: `fs::read*`, `fs::write`, `File::open|create`.
    Fs,
    /// Randomized iteration order: `HashMap`/`HashSet`.
    Hash,
    /// Thread identity: `ThreadId`, `thread::current`.
    Thread,
}

/// One occurrence of a taint-source primitive inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceHit {
    pub line: usize,
    pub kind: SourceKind,
    /// The primitive as written, for diagnostics (`SystemTime::now`).
    pub what: String,
}

/// A closure literal inside a function body, with its capture set.
///
/// Captures are *identifiers referenced in the body but bound outside the
/// closure*, recovered at the token level. Locals are over-approximated
/// (closure params, `let`/`for`/match-arm pattern idents, nested-closure
/// params), which errs toward *fewer* reported captures — the safe
/// direction for the concurrency passes, which flag capture misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureInfo {
    /// 1-based line of the opening `|`.
    pub line: usize,
    /// Token index of the opening `|` / `||` in the file's token stream.
    pub pipe_tok: usize,
    /// Token-index range `[start, end)` of the closure body (block bodies
    /// include their braces).
    pub body: (usize, usize),
    /// Identifiers appearing in the parameter patterns between the pipes
    /// (type-position idents included; harmless over-approximation).
    pub params: Vec<String>,
    /// Outer identifiers referenced in the body, with usage classification.
    pub captures: Vec<Capture>,
}

/// One captured identifier of a closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capture {
    pub name: String,
    /// 1-based line of the first use inside the closure body.
    pub line: usize,
    /// First mutating use *outside* the sanctioned lock pattern:
    /// `(line, how)` where `how` is `&mut`, `assignment`, or `.push()`-style
    /// mutator spelling. `None` when every use is a read or lock-mediated.
    pub raw_mut: Option<(usize, String)>,
    /// Some use goes through `.lock()` / `lock_recover(&…)` — the
    /// sanctioned shared-state spelling.
    pub locked: bool,
    /// Some use is in call position `name(…)`.
    pub called: bool,
    /// Lock-guarded aggregation mutations into this capture (`guard.push`
    /// where `guard` was bound from this capture's lock).
    pub aggregates: Vec<AggSite>,
}

/// One lock-guarded aggregation mutation into a captured collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSite {
    pub line: usize,
    /// The mutator as written (`push`, `extend`, …).
    pub what: String,
    /// The pushed value is a tuple literal — the index-tagged
    /// `(index, value)` shape that makes order restorable. Mutators whose
    /// payload shape is invisible at the token level (`extend`, `append`)
    /// are treated as tagged; the re-sort requirement still applies.
    pub tagged: bool,
}

/// Kind of a sync-primitive event inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// `.lock()` method call.
    Lock,
    /// Call to the sanctioned never-panicking guard helper `lock_recover`.
    LockHelper,
    /// `Mutex::new(…)`.
    MutexNew,
    /// `.spawn(…)` (scoped thread spawn).
    Spawn,
    /// `par_map*` family dispatch to the deterministic pool.
    Dispatch,
    /// `.sort*()` — an order-restoring sort on a named collection.
    Sort,
    /// Atomic read-modify-write (`fetch_add`, `store`, `swap`, …).
    AtomicRmw,
}

/// One sync-primitive event inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncSite {
    pub line: usize,
    /// Token index of the event's name token — orders events against guard
    /// scopes and closure bodies.
    pub tok: usize,
    /// Syntactic loop depth at the event.
    pub loop_depth: usize,
    pub kind: SyncKind,
    /// Receiver / locked-collection / sorted-collection base name
    /// (`""` when the receiver is not a plain identifier).
    pub recv: String,
    /// Receiver was indexed (`buckets[s].lock()`), i.e. loop-variant.
    pub recv_indexed: bool,
    /// For `Spawn`/`Dispatch`: indices into [`FnItem::closures`] of the
    /// closure arguments (literal or `let`-bound in the same fn).
    pub closures: Vec<usize>,
    /// The primitive as written (`lock`, `spawn`, `par_map_indexed_with`).
    pub what: String,
}

/// A lock-guard binding (`let [mut] g = …lock()…;`) and its scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardBind {
    pub name: String,
    /// 1-based line of the binding.
    pub line: usize,
    /// Token index of the end of the binding statement — the guard is
    /// *live* in `(tok, end_tok)`, so lock events inside the binding's own
    /// RHS are excluded.
    pub tok: usize,
    /// Token index where the guard dies: the close of the enclosing block,
    /// an explicit `drop(name)`, or the body end.
    pub end_tok: usize,
    /// Base name of the locked collection (`parts` for
    /// `parts.lock()` / `lock_recover(&parts[s])`).
    pub recv: String,
}

/// A parsed function (free fn, inherent/trait method, or default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Fully-qualified path `crate::module::[Type::]name`.
    pub qual: String,
    /// Enclosing impl/trait type name, if any.
    pub type_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (any visibility restriction counts as pub for the
    /// conservative entry-point set).
    pub is_pub: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Allocation primitives in the body.
    pub allocs: Vec<AllocSite>,
    /// Taint-source primitives in the body.
    pub sources: Vec<SourceHit>,
    /// Closure literals in the body (in pipe-token order), with captures.
    pub closures: Vec<ClosureInfo>,
    /// Sync-primitive events in the body (in token order).
    pub sync: Vec<SyncSite>,
    /// Lock-guard bindings in the body with their live scopes.
    pub guards: Vec<GuardBind>,
    /// Token-index range of the body, `[start, end)` where `end` is the
    /// index of the matching `}` in the file's token stream (as produced by
    /// [`tokenize`] over [`crate::lexer::line_views`] +
    /// [`crate::lexer::test_gated_mask`]). Passes that need raw body tokens
    /// (codec coverage) re-tokenize the file — the stream is deterministic,
    /// so indices line up.
    pub body: (usize, usize),
}

/// A named-field struct definition (tuple/unit structs and enums are not
/// recorded — the codec-coverage pass only audits named-field snapshots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields in declaration order.
    pub fields: Vec<StructField>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructField {
    pub name: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// Parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// Named-field struct definitions, in file order.
    pub structs: Vec<StructDef>,
    /// `use` aliases: last segment (or `as` alias) → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Structural problems: (line, message).
    pub errors: Vec<(usize, String)>,
}

/// Module path of a workspace-relative file: `crates/model/src/latency.rs`
/// → (`socl_model`, `["latency"]`); `lib.rs` → crate root; `src/bin/x.rs`
/// and `main.rs` → crate root.
pub fn module_of(rel_path: &str) -> (String, Vec<String>) {
    let p = rel_path.replace('\\', "/");
    let krate = p
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let crate_name = if krate == "socl" || krate.is_empty() {
        "socl".to_string()
    } else {
        format!("socl_{}", krate.replace('-', "_"))
    };
    let mut mods = Vec::new();
    if let Some(tail) = p.split("/src/").nth(1) {
        for seg in tail.split('/') {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if stem == "lib" || stem == "main" || stem == "mod" || stem == "bin" {
                continue;
            }
            mods.push(stem.to_string());
        }
    }
    (crate_name, mods)
}

/// Keywords that can precede an identifier-looking call position but are
/// control flow, not callees.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "const"
            | "static"
            | "where"
            | "as"
            | "dyn"
            | "unsafe"
            | "extern"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "async"
            | "await"
    )
}

/// Parse one file into functions, use-aliases and parse errors.
pub fn parse_file(rel_path: &str, source: &str) -> ParsedFile {
    let views = line_views(source);
    let mask = test_gated_mask(&views);
    let toks = tokenize(&views, &mask);
    let (crate_name, file_mods) = module_of(rel_path);

    let mut out = ParsedFile::default();
    let mut w = Walker {
        toks: &toks,
        i: 0,
        crate_name,
        out: &mut out,
    };
    let mut mods = file_mods;
    w.items(&mut mods, None, 0);
    if w.i < toks.len() {
        let line = toks[w.i].line;
        w.out
            .errors
            .push((line, "unbalanced braces: item walker stopped early".into()));
    }
    out
}

struct Walker<'a> {
    toks: &'a [Tok],
    i: usize,
    crate_name: String,
    out: &'a mut ParsedFile,
}

impl<'a> Walker<'a> {
    fn peek(&self, k: usize) -> Option<&TokKind> {
        self.toks.get(self.i + k).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks.get(self.i).map(|t| t.line).unwrap_or(0)
    }

    /// Skip a balanced `(..)`, `[..]`, `{..}` group starting at the current
    /// opening token. Returns false (and does not move) if not at an opener.
    fn skip_group(&mut self) -> bool {
        let (open, close) = match self.peek(0).and_then(|k| k.punct()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return false,
        };
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some(p) if p == open => depth += 1,
                Some(p) if p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return true;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        false // ran off the end without the matching close
    }

    /// Skip a `<...>` generic group (angle depth, `->` safe: the tokenizer
    /// emits it as a single token).
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some("<") => depth += 1,
                Some(">") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                Some("(") | Some("[") | Some("{") => {
                    self.skip_group();
                    continue;
                }
                Some(";") => return, // malformed; bail without consuming
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Walk items at module/impl level until the matching close brace (depth
    /// tracked by the caller passing `until_close = true` via `depth > 0`).
    fn items(&mut self, mods: &mut Vec<String>, type_name: Option<&str>, depth: usize) {
        while self.i < self.toks.len() {
            let kind = self.toks[self.i].kind.clone();
            match &kind {
                TokKind::Punct("}") => {
                    if depth > 0 {
                        return; // caller consumes
                    }
                    // Stray close at top level: structural error.
                    self.out
                        .errors
                        .push((self.line(), "unmatched `}` at item level".into()));
                    self.i += 1;
                }
                TokKind::Punct("#") => {
                    // Attribute: `#` `!`? `[ .. ]`.
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("!") {
                        self.i += 1;
                    }
                    if !self.skip_group() {
                        // not a bracket group; ignore
                    }
                }
                TokKind::Ident(w) if w == "use" => {
                    self.parse_use();
                }
                TokKind::Ident(w) if w == "mod" => {
                    self.i += 1;
                    let name = match self.peek(0).and_then(|k| k.ident()) {
                        Some(n) => n.to_string(),
                        None => continue,
                    };
                    self.i += 1;
                    match self.peek(0).and_then(|k| k.punct()) {
                        Some("{") => {
                            self.i += 1;
                            mods.push(name);
                            self.items(mods, None, depth + 1);
                            mods.pop();
                            if self.peek(0).and_then(|k| k.punct()) == Some("}") {
                                self.i += 1;
                            } else {
                                self.out.errors.push((
                                    self.line(),
                                    "module body not closed before end of file".into(),
                                ));
                            }
                        }
                        Some(";") => self.i += 1,
                        _ => {}
                    }
                }
                TokKind::Ident(w) if w == "impl" || w == "trait" => {
                    let is_trait = w == "trait";
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("<") {
                        self.skip_angles();
                    }
                    // Collect path tokens until `{`, `for`, `where` or `;`.
                    let mut last_path: Vec<String> = Vec::new();
                    let mut self_ty: Option<String> = None;
                    while self.i < self.toks.len() {
                        match &self.toks[self.i].kind {
                            TokKind::Punct("{") => break,
                            TokKind::Punct(";") => break,
                            TokKind::Ident(k) if k == "for" && !is_trait => {
                                self_ty = None;
                                last_path.clear();
                                self.i += 1;
                            }
                            TokKind::Ident(k) if k == "where" => {
                                // bounds; the `{` still terminates
                                self.i += 1;
                            }
                            TokKind::Ident(seg) => {
                                last_path.push(seg.clone());
                                self.i += 1;
                            }
                            TokKind::Punct("<") => self.skip_angles(),
                            TokKind::Punct("(") => {
                                self.skip_group();
                            }
                            _ => self.i += 1,
                        }
                    }
                    self_ty = self_ty.or_else(|| {
                        last_path
                            .iter()
                            .rev()
                            .find(|s| !is_keyword(s) && !s.is_empty())
                            .cloned()
                    });
                    if self.peek(0).and_then(|k| k.punct()) == Some("{") {
                        self.i += 1;
                        self.items(mods, self_ty.as_deref(), depth + 1);
                        if self.peek(0).and_then(|k| k.punct()) == Some("}") {
                            self.i += 1;
                        } else {
                            self.out.errors.push((
                                self.line(),
                                "impl/trait body not closed before end of file".into(),
                            ));
                        }
                    } else if self.peek(0).and_then(|k| k.punct()) == Some(";") {
                        self.i += 1;
                    }
                }
                TokKind::Ident(w) if w == "fn" => {
                    self.parse_fn(mods, type_name);
                }
                TokKind::Ident(w) if w == "macro_rules" => {
                    // `macro_rules ! name { … }` — skip entirely.
                    self.i += 1;
                    while self.i < self.toks.len()
                        && self.peek(0).and_then(|k| k.punct()) != Some("{")
                    {
                        self.i += 1;
                    }
                    self.skip_group();
                }
                TokKind::Ident(w) if w == "struct" => {
                    self.parse_struct();
                }
                TokKind::Ident(w)
                    if w == "enum"
                        || w == "union"
                        || w == "static"
                        || w == "const"
                        || w == "type"
                        || w == "extern" =>
                {
                    // Skip the item: to `;` or through its brace group.
                    self.i += 1;
                    while self.i < self.toks.len() {
                        match self.peek(0).and_then(|k| k.punct()) {
                            Some(";") => {
                                self.i += 1;
                                break;
                            }
                            Some("{") => {
                                self.skip_group();
                                break;
                            }
                            Some("<") => self.skip_angles(),
                            Some("(") => {
                                // tuple struct — may be followed by `;`
                                self.skip_group();
                            }
                            Some("=") => {
                                // const/static/type initializer: it may
                                // contain calls worth attributing? Items at
                                // module level are evaluated at compile time;
                                // skip to `;`.
                                self.i += 1;
                            }
                            _ => self.i += 1,
                        }
                        // `fn` appearing inside a const initializer is not an
                        // item; the `;`/`{` arms above terminate first.
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parse `struct Name<…> { fields }` into a [`StructDef`]. Tuple and
    /// unit structs are skipped — they have no named fields to audit.
    fn parse_struct(&mut self) {
        let line = self.line();
        self.i += 1; // `struct`
        let name = match self.peek(0).and_then(|k| k.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        // Generics / where clause, then `{ fields }`, `( … );`, or `;`.
        loop {
            match self.peek(0) {
                None => return,
                Some(TokKind::Punct("<")) => self.skip_angles(),
                Some(TokKind::Punct("(")) => {
                    self.skip_group(); // tuple struct body
                }
                Some(TokKind::Punct(";")) => {
                    self.i += 1;
                    return;
                }
                Some(TokKind::Punct("{")) => break,
                _ => self.i += 1,
            }
        }
        self.i += 1; // `{`
        let mut fields = Vec::new();
        // Field level: `#[attr]`* `pub`? `(restriction)`? name `:` type `,`
        while self.i < self.toks.len() {
            match self.peek(0) {
                None => break,
                Some(TokKind::Punct("}")) => {
                    self.i += 1;
                    break;
                }
                Some(TokKind::Punct("#")) => {
                    self.i += 1;
                    self.skip_group();
                }
                Some(TokKind::Punct("(")) => {
                    self.skip_group(); // `pub(crate)` restriction
                }
                Some(TokKind::Ident(s)) if s == "pub" => self.i += 1,
                Some(TokKind::Ident(f)) => {
                    let fname = f.clone();
                    let fline = self.line();
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some(":") {
                        fields.push(StructField {
                            name: fname,
                            line: fline,
                        });
                        self.i += 1;
                    }
                    self.skip_field_type();
                }
                _ => self.i += 1,
            }
        }
        self.out.structs.push(StructDef { name, line, fields });
    }

    /// Skip a struct field's type up to the `,` or `}` that ends it. Angle
    /// depth is tracked so `BTreeMap<u64, f64>`'s comma does not end the
    /// field early.
    fn skip_field_type(&mut self) {
        let mut angle = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some("<") => angle += 1,
                Some(">") => angle = angle.saturating_sub(1),
                Some("(") | Some("[") | Some("{") => {
                    self.skip_group();
                    continue;
                }
                Some(",") if angle == 0 => {
                    self.i += 1;
                    return;
                }
                Some("}") if angle == 0 => return, // caller consumes
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Parse `use a::b::{c, d as e, f::*};` into alias entries.
    fn parse_use(&mut self) {
        self.i += 1; // `use`
        let prefix: Vec<String> = Vec::new();
        self.use_tree(&prefix);
        // Consume trailing `;` if present.
        if self.peek(0).and_then(|k| k.punct()) == Some(";") {
            self.i += 1;
        }
    }

    fn use_tree(&mut self, prefix: &[String]) {
        let mut path: Vec<String> = Vec::new();
        loop {
            match self.peek(0) {
                Some(TokKind::Ident(s)) if s == "as" => {
                    self.i += 1;
                    if let Some(TokKind::Ident(alias)) = self.peek(0) {
                        let alias = alias.clone();
                        let mut full = prefix.to_vec();
                        full.extend(path.iter().cloned());
                        self.out.uses.push((alias, full));
                        self.i += 1;
                    }
                    return;
                }
                Some(TokKind::Ident(s)) => {
                    path.push(s.clone());
                    self.i += 1;
                }
                Some(TokKind::Punct("::")) => {
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("{") {
                        self.i += 1; // `{`
                        let mut base = prefix.to_vec();
                        base.extend(path.iter().cloned());
                        while self.i < self.toks.len() {
                            match self.peek(0).and_then(|k| k.punct()) {
                                Some("}") => {
                                    self.i += 1;
                                    return;
                                }
                                Some(",") => {
                                    self.i += 1;
                                }
                                _ => {
                                    let before = self.i;
                                    let b = base.clone();
                                    self.use_tree(&b);
                                    if self.i == before {
                                        self.i += 1; // malformed entry; keep moving
                                    }
                                }
                            }
                        }
                        return;
                    }
                    if self.peek(0).and_then(|k| k.punct()) == Some("*") {
                        self.i += 1;
                        let mut full = prefix.to_vec();
                        full.extend(path.iter().cloned());
                        self.out.uses.push(("*".into(), full));
                        return;
                    }
                    continue;
                }
                _ => break,
            }
        }
        if let Some(last) = path.last().cloned() {
            let mut full = prefix.to_vec();
            full.extend(path.iter().cloned());
            self.out.uses.push((last, full));
        }
    }

    /// Parse `fn name …  { body }` (or `;` for a bodiless declaration).
    fn parse_fn(&mut self, mods: &[String], type_name: Option<&str>) {
        let fn_line = self.line();
        // Visibility: look back over the few preceding tokens for `pub`.
        // Restricted forms (`pub(crate)`, `pub(super)`, `pub(in …)`) are NOT
        // entry points for the taint passes — they are unreachable from
        // outside the library, so taint only matters if a truly `pub` fn
        // reaches them, and that path is found through the caller anyway.
        let is_pub = {
            let mut k = self.i;
            let mut saw_pub = false;
            let mut restricted = false;
            let mut steps = 0;
            while k > 0 && steps < 8 {
                k -= 1;
                steps += 1;
                match &self.toks[k].kind {
                    TokKind::Ident(s) if s == "pub" => {
                        saw_pub = true;
                        break;
                    }
                    TokKind::Ident(s)
                        if s == "const" || s == "unsafe" || s == "extern" || s == "async" => {}
                    TokKind::Ident(s)
                        if s == "crate" || s == "super" || s == "in" || s == "self" =>
                    {
                        restricted = true;
                    }
                    TokKind::Punct("(") | TokKind::Punct(")") => {}
                    _ => break,
                }
            }
            saw_pub && !restricted
        };
        self.i += 1; // `fn`
        let name = match self.peek(0).and_then(|k| k.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        // Signature: skip generics/args/return/where until `{` or `;`.
        loop {
            match self.peek(0) {
                None => {
                    self.out
                        .errors
                        .push((fn_line, format!("fn `{name}`: signature never ends")));
                    return;
                }
                Some(TokKind::Punct("<")) => self.skip_angles(),
                Some(TokKind::Punct("(")) | Some(TokKind::Punct("[")) => {
                    self.skip_group();
                }
                Some(TokKind::Punct("{")) => break,
                Some(TokKind::Punct(";")) => {
                    self.i += 1;
                    return; // declaration only
                }
                _ => self.i += 1,
            }
        }
        // Body.
        let body_start = self.i + 1;
        if !self.skip_group() {
            self.out
                .errors
                .push((fn_line, format!("fn `{name}`: body not closed")));
        }
        let body_end = self.i.saturating_sub(1); // matching `}` index
        let mut qual = self.crate_name.clone();
        for m in mods {
            qual.push_str("::");
            qual.push_str(m);
        }
        if let Some(t) = type_name {
            qual.push_str("::");
            qual.push_str(t);
        }
        qual.push_str("::");
        qual.push_str(&name);
        let (calls, allocs, sources, nested) = scan_body(
            self.toks,
            body_start,
            body_end,
            &self.crate_name,
            mods,
            type_name,
        );
        let (closures, sync, guards) = scan_sync(self.toks, body_start, body_end);
        self.out.fns.push(FnItem {
            name,
            qual,
            type_name: type_name.map(str::to_string),
            line: fn_line,
            is_pub,
            calls,
            allocs,
            sources,
            closures,
            sync,
            guards,
            body: (body_start, body_end),
        });
        // Nested `fn` items found inside the body parse as their own items.
        for (start, t_name) in nested {
            let mut w = Walker {
                toks: self.toks,
                i: start,
                crate_name: self.crate_name.clone(),
                out: self.out,
            };
            w.parse_fn(mods, t_name.as_deref());
        }
    }
}

/// One open delimiter group during a body scan.
struct GroupCtx {
    /// True when this `{…}` is the body of a `for`/`while`/`loop`.
    is_loop: bool,
}

/// Scan a function body token range for call sites, allocation primitives
/// and source primitives. Returns (calls, allocs, sources, nested fn
/// starts).
///
/// Loop depth is tracked syntactically: a `for`/`while`/`loop` keyword arms
/// a *pending loop* at the current group-nesting level, and the next `{`
/// opened at that same level becomes the loop body. Braces nested inside
/// the header's parentheses (`while let Some(HeapEntry { node, .. }) = …`)
/// sit at a deeper group level, so they never steal the pending marker;
/// labeled loops (`'outer: loop`) work unchanged because the label tokens
/// pass through before the keyword is seen. A `;` or group close at or
/// below the pending level disarms it (e.g. a bare `for` in an HRTB that
/// never grows a body).
#[allow(clippy::type_complexity)]
fn scan_body(
    toks: &[Tok],
    start: usize,
    end: usize,
    _crate_name: &str,
    _mods: &[String],
    type_name: Option<&str>,
) -> (
    Vec<CallSite>,
    Vec<AllocSite>,
    Vec<SourceHit>,
    Vec<(usize, Option<String>)>,
) {
    let mut calls = Vec::new();
    let mut allocs = Vec::new();
    let mut sources = Vec::new();
    let mut nested: Vec<(usize, Option<String>)> = Vec::new();
    let mut groups: Vec<GroupCtx> = Vec::new();
    let mut pending_loop: Option<usize> = None;
    let mut loop_depth = 0usize;
    let mut i = start;
    while i < end.min(toks.len()) {
        match &toks[i].kind {
            TokKind::Punct(p @ ("(" | "[" | "{")) => {
                let is_loop = *p == "{" && pending_loop == Some(groups.len());
                if is_loop {
                    pending_loop = None;
                    loop_depth += 1;
                }
                groups.push(GroupCtx { is_loop });
                i += 1;
            }
            TokKind::Punct(")" | "]" | "}") => {
                if let Some(g) = groups.pop() {
                    if g.is_loop {
                        loop_depth -= 1;
                    }
                }
                if pending_loop.is_some_and(|lvl| groups.len() < lvl) {
                    pending_loop = None;
                }
                i += 1;
            }
            TokKind::Punct(";") => {
                if pending_loop.is_some_and(|lvl| groups.len() <= lvl) {
                    pending_loop = None;
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "for" || w == "while" || w == "loop" => {
                // `for<'a> …` is an HRTB, not a loop header.
                let hrtb = w == "for" && toks.get(i + 1).and_then(|t| t.kind.punct()) == Some("<");
                if !hrtb {
                    pending_loop = Some(groups.len());
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "fn" => {
                // Nested item: record and skip its body so its calls are not
                // attributed to the enclosing fn.
                nested.push((i, type_name.map(str::to_string)));
                // advance past signature to `{` then matching `}`
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < end.min(toks.len()) {
                    match toks[j].kind.punct() {
                        Some("(") | Some("[") => paren += 1,
                        Some(")") | Some("]") => paren -= 1,
                        Some("{") if paren == 0 => break,
                        Some(";") if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j).and_then(|t| t.kind.punct()) == Some("{") {
                    let mut depth = 0i32;
                    while j < end.min(toks.len()) {
                        match toks[j].kind.punct() {
                            Some("{") => depth += 1,
                            Some("}") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                i = j + 1;
            }
            TokKind::Ident(name) if !is_keyword(name) => {
                // Collect the longest path chain `a::b::c` ending here.
                let mut path = vec![name.clone()];
                let line = toks[i].line;
                let mut j = i + 1;
                loop {
                    if toks.get(j).and_then(|t| t.kind.punct()) == Some("::") {
                        // Turbofish `::<T>` — skip the generic group.
                        if toks.get(j + 1).and_then(|t| t.kind.punct()) == Some("<") {
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < toks.len() {
                                match toks[k].kind.punct() {
                                    Some("<") => depth += 1,
                                    Some(">") => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = k + 1;
                            continue;
                        }
                        match toks.get(j + 1).map(|t| &t.kind) {
                            Some(TokKind::Ident(seg)) if !is_keyword(seg) => {
                                path.push(seg.clone());
                                j += 2;
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                let call_line = toks
                    .get(j.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(line);
                let next = toks.get(j).map(|t| &t.kind);
                let is_call = matches!(next, Some(TokKind::Punct("(")));
                let is_macro = matches!(next, Some(TokKind::Punct("!")))
                    && matches!(
                        toks.get(j + 1).and_then(|t| t.kind.punct()),
                        Some("(") | Some("[") | Some("{")
                    );
                // The token *before* the chain decides method-ness.
                let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
                let is_method = path.len() == 1 && matches!(prev, Some(TokKind::Punct(".")));
                let recv_self = is_method
                    && i >= 2
                    && matches!(&toks[i - 2].kind, TokKind::Ident(s) if s == "self");

                if is_macro {
                    if let Some(kind) = panic_macro(&path) {
                        sources.push(SourceHit {
                            line: call_line,
                            kind,
                            what: format!("{}!", path.join("::")),
                        });
                    }
                    if matches!(
                        path.last().map(String::as_str),
                        Some("vec") | Some("format")
                    ) {
                        allocs.push(AllocSite {
                            line: call_line,
                            what: format!("{}!", path.join("::")),
                            loop_depth,
                        });
                    }
                    i = j + 1;
                    continue;
                }
                if is_call {
                    if let Some((kind, what)) = source_call(&path, is_method) {
                        sources.push(SourceHit {
                            line: call_line,
                            kind,
                            what,
                        });
                    } else {
                        if let Some(what) = alloc_call(&path, is_method) {
                            allocs.push(AllocSite {
                                line: call_line,
                                what,
                                loop_depth,
                            });
                        }
                        calls.push(CallSite {
                            line: call_line,
                            tok: i,
                            path: path.clone(),
                            method: is_method,
                            recv_self,
                            loop_depth,
                        });
                    }
                } else {
                    // Bare mention: HashMap/HashSet in type position still
                    // counts as a hash-order source.
                    if let Some(last) = path.last() {
                        if last == "HashMap" || last == "HashSet" {
                            sources.push(SourceHit {
                                line: call_line,
                                kind: SourceKind::Hash,
                                what: last.clone(),
                            });
                        }
                        if last == "ThreadId" {
                            sources.push(SourceHit {
                                line: call_line,
                                kind: SourceKind::Thread,
                                what: last.clone(),
                            });
                        }
                    }
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    (calls, allocs, sources, nested)
}

/// Method names that mutate their receiver in place. Atomic RMW methods
/// are deliberately absent — atomics are a sanctioned shared-state
/// spelling for the concurrency passes.
const MUTATOR_METHODS: [&str; 25] = [
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "extend",
    "extend_from_slice",
    "resize",
    "truncate",
    "append",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "drain",
    "retain",
    "push_str",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "fill",
    "dedup",
];

/// Mutators that *aggregate* values into a collection (the parallel
/// reduction surface X3 audits).
const AGG_METHODS: [&str; 4] = ["push", "extend", "append", "push_back"];

/// `.sort*()` spellings that restore a deterministic order.
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Atomic read-modify-write / store methods.
const ATOMIC_RMW_METHODS: [&str; 9] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The `par_map*` dispatch family of `socl_net::par`.
const PAR_DISPATCH: [&str; 5] = [
    "par_map",
    "par_map_with",
    "par_map_indexed",
    "par_map_indexed_with",
    "par_map_scratch_with",
];

/// Poison-recovery / propagation methods allowed between a lock call and
/// the end of a guard-binding statement.
const GUARD_TAIL_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Index just past the matching close of the group opening at `open`.
/// Returns `end` if unbalanced.
fn past_group(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end.min(toks.len()) {
        match toks[j].kind.punct() {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

/// Base name (and indexed-ness) of the receiver expression ending just
/// before the `.` at `dot`: `parts.lock()` → (`parts`, false),
/// `buckets[s].lock()` → (`buckets`, true), `self.parts.lock()` →
/// (`parts`, false), anything else → (`""`, _).
fn recv_before(toks: &[Tok], dot: usize, start: usize) -> (String, bool) {
    if dot <= start {
        return (String::new(), false);
    }
    match &toks[dot - 1].kind {
        TokKind::Ident(s) if !is_keyword(s) => (s.clone(), false),
        TokKind::Punct("]") => {
            // Walk back to the matching `[`, then the ident before it.
            let mut depth = 0i32;
            let mut j = dot - 1;
            loop {
                match toks[j].kind.punct() {
                    Some("]") => depth += 1,
                    Some("[") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == start {
                    return (String::new(), true);
                }
                j -= 1;
            }
            if j > start {
                if let TokKind::Ident(s) = &toks[j - 1].kind {
                    if !is_keyword(s) {
                        return (s.clone(), true);
                    }
                }
            }
            (String::new(), true)
        }
        _ => (String::new(), false),
    }
}

/// First plain identifier inside the paren group opening at `open` —
/// the locked collection of `lock_recover(&buckets[s])`.
fn first_arg_ident(toks: &[Tok], open: usize, end: usize) -> (String, bool) {
    let close = past_group(toks, open, end).saturating_sub(1);
    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            TokKind::Punct("&" | "(") => j += 1,
            TokKind::Ident(s) if s == "mut" => j += 1,
            TokKind::Ident(s) if !is_keyword(s) => {
                let indexed = toks.get(j + 1).and_then(|t| t.kind.punct()) == Some("[");
                return (s.clone(), indexed);
            }
            _ => break,
        }
    }
    (String::new(), false)
}

/// Find every closure literal in `[start, end)`. Closure starts are `|` /
/// `||` tokens in expression position (after `(` `,` `=` `=>` `{` `;` `:`
/// `&` `|` `||` or `move`/`return`/`else`) — `|` after an identifier or a
/// closing bracket is bitwise-or and is skipped.
fn find_closures(toks: &[Tok], start: usize, end: usize) -> Vec<ClosureInfo> {
    let mut out = Vec::new();
    let mut i = start;
    let end = end.min(toks.len());
    while i < end {
        if !matches!(toks[i].kind.punct(), Some("|") | Some("||")) {
            i += 1;
            continue;
        }
        let opens = match i.checked_sub(1).map(|p| &toks[p].kind) {
            None => true,
            Some(TokKind::Punct(p)) => matches!(
                *p,
                "(" | "," | "=" | "=>" | "{" | ";" | ":" | "&" | "|" | "||"
            ),
            Some(TokKind::Ident(s)) => matches!(s.as_str(), "move" | "return" | "else"),
            _ => false,
        };
        if !opens {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let pipe_tok = i;
        let mut params = Vec::new();
        let mut j = i + 1;
        if toks[i].kind.punct() == Some("|") {
            // Collect all pattern idents up to the closing `|` (depth 0).
            let mut depth = 0usize;
            while j < end {
                match &toks[j].kind {
                    TokKind::Punct("|") if depth == 0 => break,
                    TokKind::Punct("(" | "[" | "<") => depth += 1,
                    TokKind::Punct(")" | "]" | ">") => depth = depth.saturating_sub(1),
                    TokKind::Ident(s) if !is_keyword(s) => params.push(s.clone()),
                    _ => {}
                }
                j += 1;
            }
            j += 1; // past the closing `|`
        }
        // Optional `-> Type` before a block body.
        if toks.get(j).and_then(|t| t.kind.punct()) == Some("->") {
            j += 1;
            let mut depth = 0usize;
            while j < end {
                match toks[j].kind.punct() {
                    Some("{") if depth == 0 => break,
                    Some("(" | "[" | "<") => depth += 1,
                    Some(")" | "]" | ">") => depth = depth.saturating_sub(1),
                    Some(";" | ",") if depth == 0 => break, // malformed; bail
                    _ => {}
                }
                j += 1;
            }
        }
        let body_start = j;
        let body_end = if toks.get(j).and_then(|t| t.kind.punct()) == Some("{") {
            past_group(toks, j, end)
        } else {
            // Expression body: runs to a `,`/`;` at depth 0 or the closer
            // of the group the closure sits in.
            let mut depth = 0i32;
            while j < end {
                match toks[j].kind.punct() {
                    Some("(" | "[" | "{") => depth += 1,
                    Some(")" | "]" | "}") => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Some("," | ";") if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            j
        };
        out.push(ClosureInfo {
            line,
            pipe_tok,
            body: (body_start, body_end.max(body_start)),
            params,
            captures: Vec::new(),
        });
        // Continue scanning *inside* the body so nested closures are found.
        i = body_start.max(i + 1);
    }
    out
}

/// `let [mut] name = <closure literal>` bindings: name → closure index.
fn closure_bindings(toks: &[Tok], closures: &[ClosureInfo]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (k, c) in closures.iter().enumerate() {
        let mut j = c.pipe_tok;
        if j > 0 && toks[j - 1].kind.ident() == Some("move") {
            j -= 1;
        }
        if j == 0 || toks[j - 1].kind.punct() != Some("=") {
            continue;
        }
        j -= 1;
        let Some(TokKind::Ident(name)) = j.checked_sub(1).map(|p| &toks[p].kind) else {
            continue;
        };
        if is_keyword(name) {
            continue;
        }
        let mut b = j - 1;
        if b > 0 && toks[b - 1].kind.ident() == Some("mut") {
            b -= 1;
        }
        if b > 0 && toks[b - 1].kind.ident() == Some("let") {
            out.push((name.clone(), k));
        }
    }
    out
}

/// Closure arguments of a call whose paren group opens at `open`: literal
/// closures directly inside the group (outermost only) plus bare-ident
/// arguments naming a `let`-bound closure of the same fn.
fn arg_closures(
    toks: &[Tok],
    open: usize,
    end: usize,
    closures: &[ClosureInfo],
    bindings: &[(String, usize)],
) -> Vec<usize> {
    let close = past_group(toks, open, end).saturating_sub(1);
    let mut out: Vec<usize> = Vec::new();
    for (k, c) in closures.iter().enumerate() {
        if c.pipe_tok <= open || c.pipe_tok >= close {
            continue;
        }
        let nested = out.iter().any(|&p: &usize| {
            let prev = &closures[p];
            c.pipe_tok >= prev.body.0 && c.pipe_tok < prev.body.1
        });
        if !nested {
            out.push(k);
        }
    }
    for j in open + 1..close.min(toks.len()) {
        let TokKind::Ident(name) = &toks[j].kind else {
            continue;
        };
        let prev_ok = matches!(toks[j - 1].kind.punct(), Some("(" | ","));
        let next_ok = matches!(
            toks.get(j + 1).and_then(|t| t.kind.punct()),
            Some(",") | Some(")")
        );
        if prev_ok && next_ok {
            if let Some(&(_, k)) = bindings.iter().find(|(n, _)| n == name) {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Scan a function body for closures, sync-primitive events and guard
/// bindings — the structure behind the X1/X2/X3 concurrency passes.
fn scan_sync(
    toks: &[Tok],
    start: usize,
    end: usize,
) -> (Vec<ClosureInfo>, Vec<SyncSite>, Vec<GuardBind>) {
    let end = end.min(toks.len());
    let mut closures = find_closures(toks, start, end);
    let bindings = closure_bindings(toks, &closures);

    let mut sync: Vec<SyncSite> = Vec::new();
    let mut guards: Vec<GuardBind> = Vec::new();
    let mut guard_depths: Vec<usize> = Vec::new();
    let mut open_guards: Vec<usize> = Vec::new();
    let mut groups: Vec<bool> = Vec::new(); // is_loop per open group
    let mut pending_loop: Option<usize> = None;
    let mut loop_depth = 0usize;
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct(p @ ("(" | "[" | "{")) => {
                let is_loop = *p == "{" && pending_loop == Some(groups.len());
                if is_loop {
                    pending_loop = None;
                    loop_depth += 1;
                }
                groups.push(is_loop);
                i += 1;
            }
            TokKind::Punct(")" | "]" | "}") => {
                let depth_before = groups.len();
                if let Some(l) = groups.pop() {
                    if l {
                        loop_depth -= 1;
                    }
                }
                if pending_loop.is_some_and(|lvl| groups.len() < lvl) {
                    pending_loop = None;
                }
                // Guards bound at this nesting level die here.
                for &gi in &open_guards {
                    if guards[gi].end_tok == usize::MAX && guard_depths[gi] == depth_before {
                        guards[gi].end_tok = i;
                    }
                }
                open_guards.retain(|&gi| guards[gi].end_tok == usize::MAX);
                i += 1;
            }
            TokKind::Punct(";") => {
                if pending_loop.is_some_and(|lvl| groups.len() <= lvl) {
                    pending_loop = None;
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "for" || w == "while" || w == "loop" => {
                let hrtb = w == "for" && toks.get(i + 1).and_then(|t| t.kind.punct()) == Some("<");
                if !hrtb {
                    pending_loop = Some(groups.len());
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "fn" => {
                // Nested item: skip its body so its sync events and guards
                // are not attributed to the enclosing fn (they get their
                // own FnItem, like calls in `scan_body`).
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < end {
                    match toks[j].kind.punct() {
                        Some("(") | Some("[") => paren += 1,
                        Some(")") | Some("]") => paren -= 1,
                        Some("{") if paren == 0 => break,
                        Some(";") if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = if toks.get(j).and_then(|t| t.kind.punct()) == Some("{") {
                    past_group(toks, j, end)
                } else {
                    j + 1
                }
                .max(i + 1);
            }
            TokKind::Ident(w)
                if w == "drop" && toks.get(i + 1).and_then(|t| t.kind.punct()) == Some("(") =>
            {
                if let Some(TokKind::Ident(name)) = toks.get(i + 2).map(|t| &t.kind) {
                    if toks.get(i + 3).and_then(|t| t.kind.punct()) == Some(")") {
                        for &gi in &open_guards {
                            if guards[gi].end_tok == usize::MAX && guards[gi].name == *name {
                                guards[gi].end_tok = i;
                            }
                        }
                        open_guards.retain(|&gi| guards[gi].end_tok == usize::MAX);
                    }
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "let" => {
                if let Some((bind, depth)) = guard_binding(toks, i, end, groups.len()) {
                    guard_depths.push(depth);
                    open_guards.push(guards.len());
                    guards.push(bind);
                }
                i += 1;
            }
            TokKind::Punct(".") => {
                if let (Some(TokKind::Ident(m)), Some("(")) = (
                    toks.get(i + 1).map(|t| &t.kind),
                    toks.get(i + 2).and_then(|t| t.kind.punct()),
                ) {
                    let line = toks[i + 1].line;
                    let tok = i + 1;
                    let m = m.as_str();
                    if m == "lock" {
                        let (recv, recv_indexed) = recv_before(toks, i, start);
                        sync.push(SyncSite {
                            line,
                            tok,
                            loop_depth,
                            kind: SyncKind::Lock,
                            recv,
                            recv_indexed,
                            closures: Vec::new(),
                            what: "lock".into(),
                        });
                    } else if m == "spawn" {
                        let args = arg_closures(toks, i + 2, end, &closures, &bindings);
                        sync.push(SyncSite {
                            line,
                            tok,
                            loop_depth,
                            kind: SyncKind::Spawn,
                            recv: String::new(),
                            recv_indexed: false,
                            closures: args,
                            what: "spawn".into(),
                        });
                    } else if SORT_METHODS.contains(&m) {
                        let (recv, recv_indexed) = recv_before(toks, i, start);
                        sync.push(SyncSite {
                            line,
                            tok,
                            loop_depth,
                            kind: SyncKind::Sort,
                            recv,
                            recv_indexed,
                            closures: Vec::new(),
                            what: m.to_string(),
                        });
                    } else if ATOMIC_RMW_METHODS.contains(&m) {
                        let (recv, recv_indexed) = recv_before(toks, i, start);
                        sync.push(SyncSite {
                            line,
                            tok,
                            loop_depth,
                            kind: SyncKind::AtomicRmw,
                            recv,
                            recv_indexed,
                            closures: Vec::new(),
                            what: m.to_string(),
                        });
                    }
                }
                i += 1;
            }
            TokKind::Ident(name) if !is_keyword(name) => {
                let prev_p = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
                let is_method = matches!(prev_p, Some(TokKind::Punct(".")));
                let next_p = toks.get(i + 1).and_then(|t| t.kind.punct());
                if !is_method && next_p == Some("(") {
                    if name == "lock_recover" {
                        let (recv, recv_indexed) = first_arg_ident(toks, i + 1, end);
                        sync.push(SyncSite {
                            line: toks[i].line,
                            tok: i,
                            loop_depth,
                            kind: SyncKind::LockHelper,
                            recv,
                            recv_indexed,
                            closures: Vec::new(),
                            what: "lock_recover".into(),
                        });
                    } else if PAR_DISPATCH.contains(&name.as_str()) {
                        let args = arg_closures(toks, i + 1, end, &closures, &bindings);
                        sync.push(SyncSite {
                            line: toks[i].line,
                            tok: i,
                            loop_depth,
                            kind: SyncKind::Dispatch,
                            recv: String::new(),
                            recv_indexed: false,
                            closures: args,
                            what: name.clone(),
                        });
                    } else if name == "new"
                        && i >= 2
                        && toks[i - 1].kind.punct() == Some("::")
                        && toks[i - 2].kind.ident() == Some("Mutex")
                    {
                        sync.push(SyncSite {
                            line: toks[i].line,
                            tok: i,
                            loop_depth,
                            kind: SyncKind::MutexNew,
                            recv: String::new(),
                            recv_indexed: false,
                            closures: Vec::new(),
                            what: "Mutex::new".into(),
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    for g in &mut guards {
        if g.end_tok == usize::MAX {
            g.end_tok = end;
        }
    }
    compute_captures(toks, &mut closures, &guards);
    (closures, sync, guards)
}

/// Parse `let [mut] name = <lock expr>;` at the `let` token `i`. The RHS
/// must *be* the lock acquisition — possibly wrapped in a poison-recovery
/// `match` or chained through `.unwrap()`-style tails — so that
/// `let n = m.lock().unwrap().len();` (guard dropped at statement end)
/// does not register a live guard. Returns the binding plus the
/// group-stack depth it was bound at.
fn guard_binding(toks: &[Tok], i: usize, end: usize, depth: usize) -> Option<(GuardBind, usize)> {
    let mut j = i + 1;
    if toks.get(j)?.kind.ident() == Some("mut") {
        j += 1;
    }
    let name = match &toks.get(j)?.kind {
        TokKind::Ident(s) if !is_keyword(s) => s.clone(),
        _ => return None,
    };
    j += 1;
    // Optional `: Type` annotation before the `=`.
    if toks.get(j)?.kind.punct() == Some(":") {
        let mut d = 0usize;
        j += 1;
        while j < end {
            match toks[j].kind.punct() {
                Some("=") if d == 0 => break,
                Some("(" | "[" | "<") => d += 1,
                Some(")" | "]" | ">") => d = d.saturating_sub(1),
                Some(";") if d == 0 => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j)?.kind.punct() != Some("=") {
        return None;
    }
    let rhs = j + 1;
    if rhs >= end {
        return None;
    }
    // Statement end: `;` at group depth 0 relative to the `let`.
    let mut stmt_end = rhs;
    let mut d = 0i32;
    while stmt_end < end {
        match toks[stmt_end].kind.punct() {
            Some("(" | "[" | "{") => d += 1,
            Some(")" | "]" | "}") => {
                if d == 0 {
                    break;
                }
                d -= 1;
            }
            Some(";") if d == 0 => break,
            _ => {}
        }
        stmt_end += 1;
    }
    // Locate the lock call inside the RHS.
    let wrapped_in_match = toks[rhs].kind.ident() == Some("match");
    let mut recv = String::new();
    let mut lock_close = None;
    let mut k = rhs;
    while k < stmt_end {
        if toks[k].kind.punct() == Some(".")
            && toks.get(k + 1).and_then(|t| t.kind.ident()) == Some("lock")
            && toks.get(k + 2).and_then(|t| t.kind.punct()) == Some("(")
        {
            recv = recv_before(toks, k, rhs).0;
            lock_close = Some(past_group(toks, k + 2, stmt_end));
            break;
        }
        if toks[k].kind.ident() == Some("lock_recover")
            && toks.get(k + 1).and_then(|t| t.kind.punct()) == Some("(")
            && k.checked_sub(1)
                .is_none_or(|p| toks[p].kind.punct() != Some("."))
        {
            recv = first_arg_ident(toks, k + 1, stmt_end).0;
            lock_close = Some(past_group(toks, k + 1, stmt_end));
            break;
        }
        k += 1;
    }
    let mut t = lock_close?;
    // After the lock call only poison-recovery tails may follow (unless
    // the whole RHS is a `match` over the lock result).
    if !wrapped_in_match {
        while t < stmt_end {
            match toks[t].kind.punct() {
                Some("?") => t += 1,
                Some(".") => {
                    let m = toks.get(t + 1).and_then(|tk| tk.kind.ident())?;
                    if !GUARD_TAIL_METHODS.contains(&m) {
                        return None;
                    }
                    if toks.get(t + 2).and_then(|tk| tk.kind.punct()) == Some("(") {
                        t = past_group(toks, t + 2, stmt_end);
                    } else {
                        return None;
                    }
                }
                _ => return None,
            }
        }
    }
    Some((
        GuardBind {
            name,
            line: toks[i].line,
            tok: stmt_end,
            end_tok: usize::MAX,
            recv,
        },
        depth,
    ))
}

/// Add idents bound by `let`/`for`/match-arm patterns in `[start, end)`
/// to `locals`. Over-approximating the bound set is safe: it only shrinks
/// the capture set, and shrinking errs toward fewer diagnostics.
fn collect_locals(toks: &[Tok], start: usize, end: usize, locals: &mut Vec<String>) {
    let not_path = |toks: &[Tok], j: usize| {
        toks.get(j + 1).and_then(|t| t.kind.punct()) != Some("::")
            && j.checked_sub(1)
                .is_none_or(|p| toks[p].kind.punct() != Some("::"))
    };
    let mut i = start;
    while i < end {
        match toks[i].kind.ident() {
            Some("let") => {
                let mut d = 0usize;
                let mut j = i + 1;
                while j < end {
                    match &toks[j].kind {
                        TokKind::Punct("=" | ";") if d == 0 => break,
                        TokKind::Punct(":") if d == 0 => {
                            // Type annotation: skip ahead to `=` / `;`.
                            while j < end && !matches!(toks[j].kind.punct(), Some("=" | ";")) {
                                j += 1;
                            }
                            break;
                        }
                        TokKind::Punct("(" | "[" | "<") => d += 1,
                        TokKind::Punct(")" | "]" | ">") => d = d.saturating_sub(1),
                        TokKind::Ident(s) if !is_keyword(s) && not_path(toks, j) => {
                            locals.push(s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            Some("for") => {
                // `for <pat> in ...`; skip HRTB `for<'a>`.
                if toks.get(i + 1).and_then(|t| t.kind.punct()) == Some("<") {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                while j < end {
                    match &toks[j].kind {
                        TokKind::Ident(s) if s == "in" => break,
                        TokKind::Punct("{") => break,
                        TokKind::Ident(s) if !is_keyword(s) && not_path(toks, j) => {
                            locals.push(s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            _ => {
                // Match-arm patterns: idents bound left of `=>`, back to the
                // arm's start (a `,` `{` `;` at backward depth 0).
                if toks[i].kind.punct() == Some("=>") {
                    let mut d = 0i32;
                    let mut j = i;
                    while j > start {
                        j -= 1;
                        match &toks[j].kind {
                            TokKind::Punct(")" | "]") => d += 1,
                            TokKind::Punct("(" | "[") => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            TokKind::Punct("," | "{" | ";") if d == 0 => break,
                            TokKind::Ident(s)
                                if !is_keyword(s)
                                    && not_path(toks, j)
                                    && toks.get(j + 1).and_then(|t| t.kind.punct())
                                        != Some("(") =>
                            {
                                locals.push(s.clone());
                            }
                            _ => {}
                        }
                    }
                }
                i += 1;
            }
        }
    }
}

/// Aggregation calls reachable from just past a lock call's closing paren
/// through a poison-recovery chain: `.lock().unwrap().push((i, v))`.
fn chain_aggs(toks: &[Tok], mut i: usize, end: usize) -> Vec<AggSite> {
    let mut out = Vec::new();
    while i < end {
        match toks[i].kind.punct() {
            Some("?") => i += 1,
            Some(".") => {
                let Some(m) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
                    break;
                };
                let open = i + 2;
                if toks.get(open).and_then(|t| t.kind.punct()) != Some("(") {
                    break;
                }
                if AGG_METHODS.contains(&m) {
                    let tagged =
                        m != "push" || toks.get(open + 1).and_then(|t| t.kind.punct()) == Some("(");
                    out.push(AggSite {
                        line: toks[i + 1].line,
                        what: m.to_string(),
                        tagged,
                    });
                    break;
                } else if GUARD_TAIL_METHODS.contains(&m) {
                    i = past_group(toks, open, end);
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    out
}

/// Resolve each closure's capture set: identifiers referenced in the body
/// but not bound within it, with token-level usage classification
/// (`&mut` borrow / mutator method / assignment → `raw_mut`; `.lock()` or
/// `lock_recover(&..)` → `locked`; call position → `called`; aggregation
/// through a guard → `aggregates`).
fn compute_captures(toks: &[Tok], closures: &mut [ClosureInfo], guards: &[GuardBind]) {
    let mut all: Vec<Vec<Capture>> = Vec::with_capacity(closures.len());
    for c in closures.iter() {
        let (start, end) = c.body;
        let end = end.min(toks.len());
        let mut locals: Vec<String> = c.params.clone();
        for other in closures.iter() {
            if other.pipe_tok >= start && other.pipe_tok < end {
                locals.extend(other.params.iter().cloned());
            }
        }
        collect_locals(toks, start, end, &mut locals);
        let mut caps: Vec<Capture> = Vec::new();
        let mut i = start;
        while i < end {
            let TokKind::Ident(name) = &toks[i].kind else {
                i += 1;
                continue;
            };
            if is_keyword(name) || locals.iter().any(|l| l == name) {
                i += 1;
                continue;
            }
            let prev_punct = i
                .checked_sub(1)
                .and_then(|p| toks.get(p))
                .and_then(|t| t.kind.punct());
            let next_punct = toks.get(i + 1).and_then(|t| t.kind.punct());
            // Field/method names, path segments, macros and `name:` labels
            // are not value uses.
            if matches!(prev_punct, Some("." | "::"))
                || matches!(next_punct, Some("::" | "!" | ":"))
            {
                i += 1;
                continue;
            }
            let pos = match caps.iter().position(|cap| cap.name == *name) {
                Some(p) => p,
                None => {
                    caps.push(Capture {
                        name: name.clone(),
                        line: toks[i].line,
                        raw_mut: None,
                        locked: false,
                        called: false,
                        aggregates: Vec::new(),
                    });
                    caps.len() - 1
                }
            };
            let entry = &mut caps[pos];
            if next_punct == Some("(") {
                entry.called = true;
            }
            // `&mut name`
            if i >= 2
                && toks[i - 1].kind.ident() == Some("mut")
                && toks[i - 2].kind.punct() == Some("&")
            {
                entry
                    .raw_mut
                    .get_or_insert((toks[i].line, "&mut borrow".into()));
            }
            // `lock_recover(&name ...)` argument.
            if i >= 3
                && toks[i - 1].kind.punct() == Some("&")
                && toks[i - 2].kind.punct() == Some("(")
                && toks[i - 3].kind.ident() == Some("lock_recover")
            {
                entry.locked = true;
                let after = past_group(toks, i - 2, end);
                entry.aggregates.extend(chain_aggs(toks, after, end));
            }
            // Projection walk: `name([idx] | .field)*` followed by a
            // mutator method, a lock, or an assignment operator.
            let mut j = i + 1;
            loop {
                match toks.get(j).and_then(|t| t.kind.punct()) {
                    Some("[") => j = past_group(toks, j, end),
                    Some(".") => {
                        let Some(m) = toks.get(j + 1).and_then(|t| t.kind.ident()) else {
                            break;
                        };
                        if toks.get(j + 2).and_then(|t| t.kind.punct()) == Some("(") {
                            if m == "lock" {
                                entry.locked = true;
                                let after = past_group(toks, j + 2, end);
                                entry.aggregates.extend(chain_aggs(toks, after, end));
                            } else if MUTATOR_METHODS.contains(&m) {
                                entry
                                    .raw_mut
                                    .get_or_insert((toks[j + 1].line, format!(".{m}()")));
                            }
                            break;
                        }
                        j += 2;
                    }
                    Some("=" | "+=" | "-=" | "*=" | "/=") => {
                        entry
                            .raw_mut
                            .get_or_insert((toks[i].line, "assignment".into()));
                        break;
                    }
                    _ => break,
                }
            }
            i += 1;
        }
        // Guard-alias aggregation: a guard bound inside this body over a
        // captured mutex makes every `guard.push(..)` an aggregation on
        // the capture.
        for g in guards.iter().filter(|g| g.tok >= start && g.tok < end) {
            let Some(cap_idx) = caps.iter().position(|cap| cap.name == g.recv) else {
                continue;
            };
            caps[cap_idx].locked = true;
            let gend = g.end_tok.min(end);
            let mut j = g.tok;
            while j < gend {
                if toks[j].kind.ident() == Some(g.name.as_str())
                    && toks.get(j + 1).and_then(|t| t.kind.punct()) == Some(".")
                {
                    if let Some(m) = toks.get(j + 2).and_then(|t| t.kind.ident()) {
                        if AGG_METHODS.contains(&m)
                            && toks.get(j + 3).and_then(|t| t.kind.punct()) == Some("(")
                        {
                            let tagged = m != "push"
                                || toks.get(j + 4).and_then(|t| t.kind.punct()) == Some("(");
                            caps[cap_idx].aggregates.push(AggSite {
                                line: toks[j + 2].line,
                                what: m.to_string(),
                                tagged,
                            });
                        }
                    }
                }
                j += 1;
            }
        }
        all.push(caps);
    }
    for (c, caps) in closures.iter_mut().zip(all) {
        c.captures = caps;
    }
}
/// and `.extend` are deliberately excluded — they are the amortized-reuse
/// idiom the A1 fixes hoist *into*. `Rc::clone`/`Arc::clone` (refcount
/// bumps) fall through because only `new`/`with_capacity`/`from` count on
/// the path form.
fn alloc_call(path: &[String], is_method: bool) -> Option<String> {
    let last = path.last()?.as_str();
    if is_method {
        return match last {
            "collect" | "to_vec" | "to_owned" | "to_string" | "clone" | "insert" => {
                Some(format!(".{last}()"))
            }
            _ => None,
        };
    }
    let prev = path.len().checked_sub(2).map(|k| path[k].as_str())?;
    let container = matches!(
        prev,
        "Vec" | "String" | "Box" | "BTreeMap" | "BTreeSet" | "VecDeque" | "Rc" | "Arc"
    );
    if container && matches!(last, "new" | "with_capacity" | "from") {
        Some(path.join("::"))
    } else {
        None
    }
}

fn panic_macro(path: &[String]) -> Option<SourceKind> {
    let last = path.last()?;
    match last.as_str() {
        "panic" | "unreachable" | "todo" | "unimplemented" => Some(SourceKind::Panic),
        _ => None,
    }
}

/// Classify a call-path as a taint-source primitive, if it is one.
fn source_call(path: &[String], is_method: bool) -> Option<(SourceKind, String)> {
    let last = path.last()?.as_str();
    let prev = path.len().checked_sub(2).map(|k| path[k].as_str());
    let written = path.join("::");
    if is_method {
        return match last {
            "unwrap" | "expect" | "expect_err" => Some((SourceKind::Panic, format!(".{last}()"))),
            "from_entropy" => Some((SourceKind::Rng, written)),
            _ => None,
        };
    }
    match (prev, last) {
        (Some("Instant"), "now") | (Some("SystemTime"), "now") => Some((SourceKind::Time, written)),
        (_, "thread_rng") => Some((SourceKind::Rng, written)),
        (_, "from_entropy") => Some((SourceKind::Rng, written)),
        (Some("env"), "var") | (Some("env"), "var_os") | (Some("env"), "vars") => {
            Some((SourceKind::Env, written))
        }
        (_, "available_parallelism") => Some((SourceKind::Env, written)),
        (Some("fs"), _)
            if matches!(
                last,
                "read" | "read_to_string" | "read_dir" | "write" | "metadata" | "canonicalize"
            ) =>
        {
            Some((SourceKind::Fs, written))
        }
        (Some("File"), "open") | (Some("File"), "create") => Some((SourceKind::Fs, written)),
        (Some("thread"), "current") => Some((SourceKind::Thread, written)),
        (Some("HashMap"), _) | (Some("HashSet"), _) => Some((SourceKind::Hash, written)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/model/src/demo.rs", src)
    }

    #[test]
    fn module_paths_resolve() {
        assert_eq!(
            module_of("crates/model/src/latency.rs"),
            ("socl_model".into(), vec!["latency".into()])
        );
        assert_eq!(
            module_of("crates/net/src/lib.rs"),
            ("socl_net".into(), vec![])
        );
        assert_eq!(
            module_of("crates/bench/src/bin/hotpath.rs"),
            ("socl_bench".into(), vec!["hotpath".into()])
        );
    }

    #[test]
    fn free_fn_and_calls() {
        let p = parse("pub fn alpha() { beta(); let x = gamma::delta(1, 2); }\nfn beta() {}");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.qual, "socl_model::demo::alpha");
        assert!(a.is_pub);
        let callees: Vec<String> = a.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(callees, vec!["beta", "gamma::delta"]);
        assert!(!p.fns[1].is_pub);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let src = "struct S;\nimpl S {\n  pub fn new() -> Self { S }\n  fn helper(&self) { self.new_thing(); other(); }\n}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::S::new");
        assert_eq!(p.fns[1].qual, "socl_model::demo::S::helper");
        let h = &p.fns[1];
        assert!(h
            .calls
            .iter()
            .any(|c| c.method && c.recv_self && c.path == ["new_thing"]));
        assert!(h.calls.iter().any(|c| !c.method && c.path == ["other"]));
    }

    #[test]
    fn trait_impl_uses_self_type_not_trait() {
        let src = "impl fmt::Display for Rule {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { x() }\n}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::Rule::fmt");
    }

    #[test]
    fn inline_mod_extends_path() {
        let src = "mod inner {\n  pub fn f() {}\n}\nfn g() {}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::inner::f");
        assert_eq!(p.fns[1].qual, "socl_model::demo::g");
    }

    #[test]
    fn cfg_test_bodies_are_invisible() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n  fn fake() { x.unwrap(); }\n}";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn sources_are_detected() {
        let src = "fn f() {\n  let t = std::time::Instant::now();\n  x.unwrap();\n  panic!(\"boom\");\n  let v = std::env::var(\"X\");\n}";
        let p = parse(src);
        let kinds: Vec<SourceKind> = p.fns[0].sources.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SourceKind::Time,
                SourceKind::Panic,
                SourceKind::Panic,
                SourceKind::Env
            ]
        );
        assert_eq!(p.fns[0].sources[0].line, 2);
        assert_eq!(p.fns[0].sources[3].line, 5);
    }

    #[test]
    fn use_aliases_are_collected() {
        let src = "use socl_net::time::Stopwatch;\nuse crate::latency::{completion_time, CompletionBreakdown as CB};\nuse std::collections::*;";
        let p = parse(src);
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "Stopwatch" && f.join("::") == "socl_net::time::Stopwatch"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "completion_time"
                && f.join("::") == "crate::latency::completion_time"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "CB" && f.join("::") == "crate::latency::CompletionBreakdown"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "*" && f.join("::") == "std::collections"));
    }

    #[test]
    fn unbalanced_braces_are_a_parse_error() {
        let p = parse("fn broken() { if x { y(); }\n");
        assert!(!p.errors.is_empty());
    }

    #[test]
    fn turbofish_and_generics_do_not_derail() {
        let src = "fn f() { let v = Vec::<f64>::with_capacity(n); g::<A, B>(x); }";
        let p = parse(src);
        let callees: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(
            callees.contains(&"Vec::with_capacity".to_string()),
            "{callees:?}"
        );
        assert!(callees.contains(&"g".to_string()), "{callees:?}");
    }

    #[test]
    fn loop_depth_tracks_for_while_loop_nesting() {
        let src = "fn f() {\n  setup();\n  for i in 0..n {\n    one(i);\n    while ready() {\n      two();\n    }\n  }\n  teardown();\n}";
        let p = parse(src);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("setup"), 0);
        assert_eq!(depth_of("one"), 1);
        assert_eq!(depth_of("ready"), 1); // loop header belongs outside its own body
        assert_eq!(depth_of("two"), 2);
        assert_eq!(depth_of("teardown"), 0);
    }

    #[test]
    fn labeled_loop_and_while_let_have_loop_bodies() {
        let src = "fn f() {\n  'outer: loop {\n    inner_a();\n    while let Some(Wrap { x, .. }) = it.next() {\n      inner_b(x);\n      if x > 3 { break 'outer; }\n    }\n  }\n}";
        let p = parse(src);
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("inner_a"), 1);
        assert_eq!(depth_of("inner_b"), 2);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f() {\n  let g: Box<dyn for<'a> Fn(&'a u8)> = mk();\n  { after(); }\n}";
        let p = parse(src);
        let after = p.fns[0].calls.iter().find(|c| c.path == ["after"]).unwrap();
        assert_eq!(after.loop_depth, 0);
    }

    #[test]
    fn alloc_sites_record_loop_depth() {
        let src = "fn f() {\n  let base = Vec::with_capacity(4);\n  for i in 0..n {\n    let row = vec![0.0; n];\n    let s = x.to_vec();\n    keep.push(i);\n  }\n}";
        let p = parse(src);
        let allocs: Vec<(&str, usize)> = p.fns[0]
            .allocs
            .iter()
            .map(|a| (a.what.as_str(), a.loop_depth))
            .collect();
        assert_eq!(
            allocs,
            vec![
                ("Vec::with_capacity", 0),
                ("vec!", 1),
                (".to_vec()", 1), // `.push` is the reuse idiom, never an alloc site
            ]
        );
    }

    #[test]
    fn closure_braces_do_not_change_loop_depth() {
        let src = "fn f() {\n  let out = par_map(&xs, |x| { inner(x) });\n  for i in 0..n { looped(); }\n}";
        let p = parse(src);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("inner"), 0);
        assert_eq!(depth_of("looped"), 1);
    }

    #[test]
    fn struct_fields_parse_in_declaration_order() {
        let src = "pub struct Snap {\n  pub seed: u64,\n  pub(crate) table: BTreeMap<u64, Vec<f64>>,\n  #[allow(dead_code)]\n  flags: u8,\n}\nstruct Unit;\nstruct Tuple(u8, u8);";
        let p = parse(src);
        // Unit/tuple structs are not recorded — no named fields to audit.
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Snap");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["seed", "table", "flags"]);
        assert_eq!(s.fields[1].line, 3);
    }

    #[test]
    fn generic_struct_with_where_clause_parses() {
        let src = "struct W<T> where T: Clone {\n  inner: T,\n  count: usize,\n}\nfn after() {}";
        let p = parse(src);
        assert_eq!(p.structs.len(), 1);
        let names: Vec<&str> = p.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["inner", "count"]);
        assert_eq!(p.fns.len(), 1); // walker resumes cleanly after the struct
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() {\n  fn inner() { hidden(); }\n  visible();\n}";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let oc: Vec<String> = outer.calls.iter().map(|c| c.path.join("::")).collect();
        let ic: Vec<String> = inner.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(oc, vec!["visible"]);
        assert_eq!(ic, vec!["hidden"]);
    }

    #[test]
    fn captures_classify_mut_lock_and_call() {
        let src = "fn f() {\n  let mut acc = Vec::new();\n  let shared = Mutex::new(Vec::new());\n  par_map_with(&xs, threads, |x| {\n    acc.push(x);\n    let mut g = shared.lock().unwrap();\n    g.push((x, compute(x)));\n    helper(x)\n  });\n}";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.closures.len(), 1, "{:?}", f.closures);
        let cap = |n: &str| f.closures[0].captures.iter().find(|c| c.name == n);
        let acc = cap("acc").expect("acc captured");
        assert_eq!(acc.raw_mut.as_ref().unwrap().1, ".push()");
        assert!(!acc.locked);
        let shared = cap("shared").expect("shared captured");
        assert!(shared.locked && shared.raw_mut.is_none());
        assert_eq!(shared.aggregates.len(), 1);
        assert_eq!(shared.aggregates[0].what, "push");
        assert!(shared.aggregates[0].tagged, "tuple push is index-tagged");
        assert!(cap("compute").unwrap().called);
        assert!(cap("helper").unwrap().called);
        assert!(cap("x").is_none(), "params are not captures");
        assert!(cap("g").is_none(), "guard locals are not captures");
    }

    #[test]
    fn sync_sites_record_dispatch_spawn_lock_sort() {
        let src = "fn f() {\n  let parts = Mutex::new(Vec::new());\n  std::thread::scope(|s| {\n    s.spawn(|| {\n      let mut g = parts.lock().unwrap();\n      g.push((0, work()));\n    });\n  });\n  let mut parts = parts.into_inner().unwrap();\n  parts.sort_by_key(|p| p.0);\n}";
        let p = parse(src);
        let f = &p.fns[0];
        let kind = |k: SyncKind| f.sync.iter().filter(|s| s.kind == k).collect::<Vec<_>>();
        assert_eq!(kind(SyncKind::MutexNew).len(), 1);
        let spawns = kind(SyncKind::Spawn);
        assert_eq!(spawns.len(), 1);
        assert_eq!(spawns[0].closures.len(), 1, "spawn links its closure arg");
        let locks = kind(SyncKind::Lock);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].recv, "parts");
        let sorts = kind(SyncKind::Sort);
        assert_eq!(sorts.len(), 1);
        assert_eq!(sorts[0].recv, "parts");
        assert_eq!(f.guards.len(), 1);
        assert_eq!(f.guards[0].recv, "parts");
        // The spawned closure aggregates into `parts` through the guard.
        let spawned = &f.closures[spawns[0].closures[0]];
        let parts_cap = spawned
            .captures
            .iter()
            .find(|c| c.name == "parts")
            .expect("parts captured");
        assert!(parts_cap.locked);
        assert!(parts_cap.aggregates.iter().any(|a| a.tagged));
    }

    #[test]
    fn let_bound_closure_links_to_dispatch_by_name() {
        let src = "fn f() {\n  let run = |x| out.push(x);\n  par_map(&xs, run);\n}";
        let p = parse(src);
        let f = &p.fns[0];
        let d = f
            .sync
            .iter()
            .find(|s| s.kind == SyncKind::Dispatch)
            .expect("dispatch recorded");
        assert_eq!(d.what, "par_map");
        assert_eq!(d.closures.len(), 1, "named closure arg links back");
        let c = &f.closures[d.closures[0]];
        let out = c.captures.iter().find(|c| c.name == "out").unwrap();
        assert!(out.raw_mut.is_some());
    }

    #[test]
    fn guard_scopes_end_at_drop_and_value_lets_are_not_guards() {
        let src = "fn f() {\n  let g = m.lock().unwrap();\n  use_it(&g);\n  drop(g);\n  let h = m.lock().unwrap();\n  let n = m.lock().unwrap().len();\n}";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.guards.len(), 2, "{:?}", f.guards);
        assert_eq!(f.guards[0].name, "g");
        assert!(
            f.guards[0].end_tok < f.guards[1].tok,
            "drop(g) ends the first guard before h is bound"
        );
        assert!(
            !f.guards.iter().any(|g| g.name == "n"),
            "a value extracted through the guard is not a live guard"
        );
    }

    #[test]
    fn match_wrapped_guard_and_lock_recover_bind_guards() {
        let src = "fn f() {\n  let mut a = match buckets[s].lock() { Ok(g) => g, Err(p) => p.into_inner() };\n  let b = lock_recover(&buckets[s]);\n}";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.guards.len(), 2, "{:?}", f.guards);
        assert_eq!(f.guards[0].name, "a");
        assert_eq!(f.guards[0].recv, "buckets");
        assert_eq!(f.guards[1].name, "b");
        assert_eq!(f.guards[1].recv, "buckets");
        let helper = f
            .sync
            .iter()
            .find(|s| s.kind == SyncKind::LockHelper)
            .expect("lock_recover event");
        assert!(helper.recv_indexed, "indexed bucket receiver");
    }

    #[test]
    fn lock_events_record_loop_depth() {
        let src = "fn f() {\n  let a = m.lock().unwrap();\n  drop(a);\n  for i in 0..n {\n    let g = m.lock().unwrap();\n    g.push(i);\n  }\n}";
        let p = parse(src);
        let f = &p.fns[0];
        let locks: Vec<usize> = f
            .sync
            .iter()
            .filter(|s| s.kind == SyncKind::Lock)
            .map(|s| s.loop_depth)
            .collect();
        assert_eq!(locks, vec![0, 1]);
    }

    #[test]
    fn untagged_push_through_guard_is_untagged() {
        let src = "fn f() {\n  par_map(&xs, |x| {\n    let mut g = acc.lock().unwrap();\n    g.push(x);\n  });\n}";
        let p = parse(src);
        let f = &p.fns[0];
        let c = &f.closures[0];
        let acc = c.captures.iter().find(|c| c.name == "acc").unwrap();
        assert!(acc.locked);
        assert_eq!(acc.aggregates.len(), 1);
        assert!(!acc.aggregates[0].tagged, "plain push is not index-tagged");
    }
}

//! Item-level parsing of Rust source over the lexer's code views.
//!
//! The interprocedural passes (T1 determinism-taint, T2 panic-reachability)
//! and the units pass (T3) need more structure than per-line tokens: which
//! functions exist, which module/impl they live in, what they call, and
//! which nondeterminism/panic primitives their bodies touch. This module
//! provides exactly that — no external dependency, no full AST.
//!
//! Pipeline: [`crate::lexer::line_views`] blanks comments and string
//! interiors, [`crate::lexer::test_gated_mask`] removes `#[cfg(test)]`
//! bodies, then a tokenizer produces a flat token stream and a single-pass
//! item walker recognizes `mod`/`impl`/`trait`/`fn`/`use` structure. Function
//! bodies are scanned for call sites (free calls, `Path::calls`, `.method()`
//! calls, macros) and for the taint-source primitives of DESIGN.md §6c.
//!
//! The walker is deliberately forgiving: token sequences it does not
//! understand are skipped, and only *structural* damage (unbalanced braces,
//! a `fn` without a body or `;`) is reported as a parse error, which the
//! engine surfaces as a `P0-parse` diagnostic (exit code 1 — distinct from
//! internal errors, which exit 2).

use crate::lexer::{line_views, test_gated_mask, LineView};

/// One token of the code view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// 0-based char column of the token start (used for cfg(test) masking).
    pub col: usize,
    pub kind: TokKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers keep their name, flagged raw).
    Ident(String),
    /// Numeric literal text.
    Num(String),
    /// Lifetime (`'a`), without the quote.
    Lifetime(String),
    /// Operator / punctuation, multi-char ops joined (`::`, `->`, `=>`,
    /// `==`, `!=`, `<=`, `>=`, `&&`, `||`, `+=`, `-=`, `*=`, `/=`, `..`).
    Punct(&'static str),
    /// Any other single char (string-literal quotes survive blanking).
    Other(char),
}

impl TokKind {
    fn punct(&self) -> Option<&'static str> {
        match self {
            TokKind::Punct(p) => Some(p),
            _ => None,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCT2: [&str; 14] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "..",
];

/// Tokenize masked code views into a flat stream.
pub fn tokenize(views: &[LineView], mask: &[Vec<bool>]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (ln, view) in views.iter().enumerate() {
        let chars: Vec<char> = view.code.chars().collect();
        let masked = |i: usize| mask[ln].get(i).copied().unwrap_or(false);
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() || masked(i) {
                i += 1;
                continue;
            }
            let start = i;
            if c.is_alphabetic() || c == '_' {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                // Raw identifier `r#name`: keep the name, it is never a
                // keyword in practice for our item grammar.
                if s == "r" && chars.get(i) == Some(&'#') {
                    let mut j = i + 1;
                    let mut raw = String::new();
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        raw.push(chars[j]);
                        j += 1;
                    }
                    if !raw.is_empty() {
                        i = j;
                        s = raw;
                    }
                }
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Ident(s),
                });
            } else if c.is_ascii_digit() {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `1..2` — don't absorb a range operator into the number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                    // Exponent sign: `1e-9`, `2.5E+3`.
                    if (s.ends_with('e') || s.ends_with('E'))
                        && s.chars().next().is_some_and(|c| c.is_ascii_digit())
                        && matches!(chars.get(i), Some('+') | Some('-'))
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Num(s),
                });
            } else if c == '\'' {
                // The lexer kept lifetimes intact and blanked char-literal
                // interiors (leaving `'  '`). Distinguish: a quote followed
                // by an identifier char is a lifetime.
                if chars
                    .get(i + 1)
                    .is_some_and(|n| n.is_alphabetic() || *n == '_')
                {
                    let mut s = String::new();
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        s.push(chars[i]);
                        i += 1;
                    }
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Lifetime(s),
                    });
                } else {
                    // Blanked char literal `'  '`: skip to the closing quote.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    i = (j + 1).min(chars.len());
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Other('\''),
                    });
                }
            } else if c == '"' {
                // Blanked string literal: skip to the closing quote (which,
                // for raw strings, is followed by hashes the tokenizer can
                // simply emit as punctuation-free skips).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                // Trailing hashes of a raw string terminator.
                let mut k = (j + 1).min(chars.len());
                while k < chars.len()
                    && chars[k] == '#'
                    && chars.get(k.wrapping_sub(1)) == Some(&'"')
                {
                    // only skip hashes directly after the closing quote
                    k += 1;
                    break;
                }
                i = k.max(j + 1).min(chars.len());
                out.push(Tok {
                    line: ln + 1,
                    col: start,
                    kind: TokKind::Other('"'),
                });
            } else {
                // Multi-char operators first.
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                if let Some(p) = PUNCT2.iter().find(|p| **p == two) {
                    // `..=` — absorb the `=` so it can't look like an assign.
                    if *p == ".." && chars.get(i + 2) == Some(&'=') {
                        i += 3;
                    } else {
                        i += 2;
                    }
                    out.push(Tok {
                        line: ln + 1,
                        col: start,
                        kind: TokKind::Punct(p),
                    });
                } else {
                    i += 1;
                    const SINGLES: &str = "(){}[]<>,;:#!&|+-*/=.?@$%^~";
                    if let Some(pos) = SINGLES.find(c) {
                        // Map to a 'static single-char str.
                        const TABLE: [&str; 28] = [
                            "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", "#", "!", "&",
                            "|", "+", "-", "*", "/", "=", ".", "?", "@", "$", "%", "^", "~",
                            "\u{0}",
                        ];
                        let idx = SINGLES
                            .char_indices()
                            .position(|(p, _)| p == pos)
                            .unwrap_or(27);
                        out.push(Tok {
                            line: ln + 1,
                            col: start,
                            kind: TokKind::Punct(TABLE[idx]),
                        });
                    } else {
                        out.push(Tok {
                            line: ln + 1,
                            col: start,
                            kind: TokKind::Other(c),
                        });
                    }
                }
            }
        }
    }
    out
}

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: usize,
    /// Path segments as written (`["Stopwatch", "start"]`, `["helper"]`).
    /// For method calls this is the single method name.
    pub path: Vec<String>,
    /// `.name(…)` method-call syntax.
    pub method: bool,
    /// Method call whose receiver token is `self`.
    pub recv_self: bool,
    /// Number of enclosing syntactic loops (`for`/`while`/`while let`/
    /// `loop`, labeled or not) around this call inside its function body.
    pub loop_depth: usize,
}

/// One occurrence of an allocation primitive inside a function body
/// (`Vec::new`, `vec![]`, `.collect()`, `.clone()`, `format!`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 1-based line of the primitive.
    pub line: usize,
    /// The primitive as written, for diagnostics (`Vec::with_capacity`,
    /// `.to_vec()`, `vec!`).
    pub what: String,
    /// Number of enclosing syntactic loops around the site.
    pub loop_depth: usize,
}

/// Category of a taint-source primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `unwrap`/`expect`/`expect_err`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` — the L2 panic family.
    Panic,
    /// Wall clock: `Instant::now`, `SystemTime::now`.
    Time,
    /// Ambient randomness: `thread_rng`, `from_entropy`.
    Rng,
    /// Process environment: `env::var*`, `available_parallelism`.
    Env,
    /// Filesystem reads/writes: `fs::read*`, `fs::write`, `File::open|create`.
    Fs,
    /// Randomized iteration order: `HashMap`/`HashSet`.
    Hash,
    /// Thread identity: `ThreadId`, `thread::current`.
    Thread,
}

/// One occurrence of a taint-source primitive inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceHit {
    pub line: usize,
    pub kind: SourceKind,
    /// The primitive as written, for diagnostics (`SystemTime::now`).
    pub what: String,
}

/// A parsed function (free fn, inherent/trait method, or default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Fully-qualified path `crate::module::[Type::]name`.
    pub qual: String,
    /// Enclosing impl/trait type name, if any.
    pub type_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (any visibility restriction counts as pub for the
    /// conservative entry-point set).
    pub is_pub: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Allocation primitives in the body.
    pub allocs: Vec<AllocSite>,
    /// Taint-source primitives in the body.
    pub sources: Vec<SourceHit>,
    /// Token-index range of the body, `[start, end)` where `end` is the
    /// index of the matching `}` in the file's token stream (as produced by
    /// [`tokenize`] over [`crate::lexer::line_views`] +
    /// [`crate::lexer::test_gated_mask`]). Passes that need raw body tokens
    /// (codec coverage) re-tokenize the file — the stream is deterministic,
    /// so indices line up.
    pub body: (usize, usize),
}

/// A named-field struct definition (tuple/unit structs and enums are not
/// recorded — the codec-coverage pass only audits named-field snapshots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields in declaration order.
    pub fields: Vec<StructField>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructField {
    pub name: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// Parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// Named-field struct definitions, in file order.
    pub structs: Vec<StructDef>,
    /// `use` aliases: last segment (or `as` alias) → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Structural problems: (line, message).
    pub errors: Vec<(usize, String)>,
}

/// Module path of a workspace-relative file: `crates/model/src/latency.rs`
/// → (`socl_model`, `["latency"]`); `lib.rs` → crate root; `src/bin/x.rs`
/// and `main.rs` → crate root.
pub fn module_of(rel_path: &str) -> (String, Vec<String>) {
    let p = rel_path.replace('\\', "/");
    let krate = p
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let crate_name = if krate == "socl" || krate.is_empty() {
        "socl".to_string()
    } else {
        format!("socl_{}", krate.replace('-', "_"))
    };
    let mut mods = Vec::new();
    if let Some(tail) = p.split("/src/").nth(1) {
        for seg in tail.split('/') {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if stem == "lib" || stem == "main" || stem == "mod" || stem == "bin" {
                continue;
            }
            mods.push(stem.to_string());
        }
    }
    (crate_name, mods)
}

/// Keywords that can precede an identifier-looking call position but are
/// control flow, not callees.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "const"
            | "static"
            | "where"
            | "as"
            | "dyn"
            | "unsafe"
            | "extern"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "async"
            | "await"
    )
}

/// Parse one file into functions, use-aliases and parse errors.
pub fn parse_file(rel_path: &str, source: &str) -> ParsedFile {
    let views = line_views(source);
    let mask = test_gated_mask(&views);
    let toks = tokenize(&views, &mask);
    let (crate_name, file_mods) = module_of(rel_path);

    let mut out = ParsedFile::default();
    let mut w = Walker {
        toks: &toks,
        i: 0,
        crate_name,
        out: &mut out,
    };
    let mut mods = file_mods;
    w.items(&mut mods, None, 0);
    if w.i < toks.len() {
        let line = toks[w.i].line;
        w.out
            .errors
            .push((line, "unbalanced braces: item walker stopped early".into()));
    }
    out
}

struct Walker<'a> {
    toks: &'a [Tok],
    i: usize,
    crate_name: String,
    out: &'a mut ParsedFile,
}

impl<'a> Walker<'a> {
    fn peek(&self, k: usize) -> Option<&TokKind> {
        self.toks.get(self.i + k).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks.get(self.i).map(|t| t.line).unwrap_or(0)
    }

    /// Skip a balanced `(..)`, `[..]`, `{..}` group starting at the current
    /// opening token. Returns false (and does not move) if not at an opener.
    fn skip_group(&mut self) -> bool {
        let (open, close) = match self.peek(0).and_then(|k| k.punct()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return false,
        };
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some(p) if p == open => depth += 1,
                Some(p) if p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return true;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        false // ran off the end without the matching close
    }

    /// Skip a `<...>` generic group (angle depth, `->` safe: the tokenizer
    /// emits it as a single token).
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some("<") => depth += 1,
                Some(">") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                Some("(") | Some("[") | Some("{") => {
                    self.skip_group();
                    continue;
                }
                Some(";") => return, // malformed; bail without consuming
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Walk items at module/impl level until the matching close brace (depth
    /// tracked by the caller passing `until_close = true` via `depth > 0`).
    fn items(&mut self, mods: &mut Vec<String>, type_name: Option<&str>, depth: usize) {
        while self.i < self.toks.len() {
            let kind = self.toks[self.i].kind.clone();
            match &kind {
                TokKind::Punct("}") => {
                    if depth > 0 {
                        return; // caller consumes
                    }
                    // Stray close at top level: structural error.
                    self.out
                        .errors
                        .push((self.line(), "unmatched `}` at item level".into()));
                    self.i += 1;
                }
                TokKind::Punct("#") => {
                    // Attribute: `#` `!`? `[ .. ]`.
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("!") {
                        self.i += 1;
                    }
                    if !self.skip_group() {
                        // not a bracket group; ignore
                    }
                }
                TokKind::Ident(w) if w == "use" => {
                    self.parse_use();
                }
                TokKind::Ident(w) if w == "mod" => {
                    self.i += 1;
                    let name = match self.peek(0).and_then(|k| k.ident()) {
                        Some(n) => n.to_string(),
                        None => continue,
                    };
                    self.i += 1;
                    match self.peek(0).and_then(|k| k.punct()) {
                        Some("{") => {
                            self.i += 1;
                            mods.push(name);
                            self.items(mods, None, depth + 1);
                            mods.pop();
                            if self.peek(0).and_then(|k| k.punct()) == Some("}") {
                                self.i += 1;
                            } else {
                                self.out.errors.push((
                                    self.line(),
                                    "module body not closed before end of file".into(),
                                ));
                            }
                        }
                        Some(";") => self.i += 1,
                        _ => {}
                    }
                }
                TokKind::Ident(w) if w == "impl" || w == "trait" => {
                    let is_trait = w == "trait";
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("<") {
                        self.skip_angles();
                    }
                    // Collect path tokens until `{`, `for`, `where` or `;`.
                    let mut last_path: Vec<String> = Vec::new();
                    let mut self_ty: Option<String> = None;
                    while self.i < self.toks.len() {
                        match &self.toks[self.i].kind {
                            TokKind::Punct("{") => break,
                            TokKind::Punct(";") => break,
                            TokKind::Ident(k) if k == "for" && !is_trait => {
                                self_ty = None;
                                last_path.clear();
                                self.i += 1;
                            }
                            TokKind::Ident(k) if k == "where" => {
                                // bounds; the `{` still terminates
                                self.i += 1;
                            }
                            TokKind::Ident(seg) => {
                                last_path.push(seg.clone());
                                self.i += 1;
                            }
                            TokKind::Punct("<") => self.skip_angles(),
                            TokKind::Punct("(") => {
                                self.skip_group();
                            }
                            _ => self.i += 1,
                        }
                    }
                    self_ty = self_ty.or_else(|| {
                        last_path
                            .iter()
                            .rev()
                            .find(|s| !is_keyword(s) && !s.is_empty())
                            .cloned()
                    });
                    if self.peek(0).and_then(|k| k.punct()) == Some("{") {
                        self.i += 1;
                        self.items(mods, self_ty.as_deref(), depth + 1);
                        if self.peek(0).and_then(|k| k.punct()) == Some("}") {
                            self.i += 1;
                        } else {
                            self.out.errors.push((
                                self.line(),
                                "impl/trait body not closed before end of file".into(),
                            ));
                        }
                    } else if self.peek(0).and_then(|k| k.punct()) == Some(";") {
                        self.i += 1;
                    }
                }
                TokKind::Ident(w) if w == "fn" => {
                    self.parse_fn(mods, type_name);
                }
                TokKind::Ident(w) if w == "macro_rules" => {
                    // `macro_rules ! name { … }` — skip entirely.
                    self.i += 1;
                    while self.i < self.toks.len()
                        && self.peek(0).and_then(|k| k.punct()) != Some("{")
                    {
                        self.i += 1;
                    }
                    self.skip_group();
                }
                TokKind::Ident(w) if w == "struct" => {
                    self.parse_struct();
                }
                TokKind::Ident(w)
                    if w == "enum"
                        || w == "union"
                        || w == "static"
                        || w == "const"
                        || w == "type"
                        || w == "extern" =>
                {
                    // Skip the item: to `;` or through its brace group.
                    self.i += 1;
                    while self.i < self.toks.len() {
                        match self.peek(0).and_then(|k| k.punct()) {
                            Some(";") => {
                                self.i += 1;
                                break;
                            }
                            Some("{") => {
                                self.skip_group();
                                break;
                            }
                            Some("<") => self.skip_angles(),
                            Some("(") => {
                                // tuple struct — may be followed by `;`
                                self.skip_group();
                            }
                            Some("=") => {
                                // const/static/type initializer: it may
                                // contain calls worth attributing? Items at
                                // module level are evaluated at compile time;
                                // skip to `;`.
                                self.i += 1;
                            }
                            _ => self.i += 1,
                        }
                        // `fn` appearing inside a const initializer is not an
                        // item; the `;`/`{` arms above terminate first.
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parse `struct Name<…> { fields }` into a [`StructDef`]. Tuple and
    /// unit structs are skipped — they have no named fields to audit.
    fn parse_struct(&mut self) {
        let line = self.line();
        self.i += 1; // `struct`
        let name = match self.peek(0).and_then(|k| k.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        // Generics / where clause, then `{ fields }`, `( … );`, or `;`.
        loop {
            match self.peek(0) {
                None => return,
                Some(TokKind::Punct("<")) => self.skip_angles(),
                Some(TokKind::Punct("(")) => {
                    self.skip_group(); // tuple struct body
                }
                Some(TokKind::Punct(";")) => {
                    self.i += 1;
                    return;
                }
                Some(TokKind::Punct("{")) => break,
                _ => self.i += 1,
            }
        }
        self.i += 1; // `{`
        let mut fields = Vec::new();
        // Field level: `#[attr]`* `pub`? `(restriction)`? name `:` type `,`
        while self.i < self.toks.len() {
            match self.peek(0) {
                None => break,
                Some(TokKind::Punct("}")) => {
                    self.i += 1;
                    break;
                }
                Some(TokKind::Punct("#")) => {
                    self.i += 1;
                    self.skip_group();
                }
                Some(TokKind::Punct("(")) => {
                    self.skip_group(); // `pub(crate)` restriction
                }
                Some(TokKind::Ident(s)) if s == "pub" => self.i += 1,
                Some(TokKind::Ident(f)) => {
                    let fname = f.clone();
                    let fline = self.line();
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some(":") {
                        fields.push(StructField {
                            name: fname,
                            line: fline,
                        });
                        self.i += 1;
                    }
                    self.skip_field_type();
                }
                _ => self.i += 1,
            }
        }
        self.out.structs.push(StructDef { name, line, fields });
    }

    /// Skip a struct field's type up to the `,` or `}` that ends it. Angle
    /// depth is tracked so `BTreeMap<u64, f64>`'s comma does not end the
    /// field early.
    fn skip_field_type(&mut self) {
        let mut angle = 0usize;
        while self.i < self.toks.len() {
            match self.peek(0).and_then(|k| k.punct()) {
                Some("<") => angle += 1,
                Some(">") => angle = angle.saturating_sub(1),
                Some("(") | Some("[") | Some("{") => {
                    self.skip_group();
                    continue;
                }
                Some(",") if angle == 0 => {
                    self.i += 1;
                    return;
                }
                Some("}") if angle == 0 => return, // caller consumes
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Parse `use a::b::{c, d as e, f::*};` into alias entries.
    fn parse_use(&mut self) {
        self.i += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        // Consume trailing `;` if present.
        if self.peek(0).and_then(|k| k.punct()) == Some(";") {
            self.i += 1;
        }
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let mut path: Vec<String> = Vec::new();
        loop {
            match self.peek(0) {
                Some(TokKind::Ident(s)) if s == "as" => {
                    self.i += 1;
                    if let Some(TokKind::Ident(alias)) = self.peek(0) {
                        let alias = alias.clone();
                        let mut full = prefix.clone();
                        full.extend(path.iter().cloned());
                        self.out.uses.push((alias, full));
                        self.i += 1;
                    }
                    return;
                }
                Some(TokKind::Ident(s)) => {
                    path.push(s.clone());
                    self.i += 1;
                }
                Some(TokKind::Punct("::")) => {
                    self.i += 1;
                    if self.peek(0).and_then(|k| k.punct()) == Some("{") {
                        self.i += 1; // `{`
                        let mut base = prefix.clone();
                        base.extend(path.iter().cloned());
                        while self.i < self.toks.len() {
                            match self.peek(0).and_then(|k| k.punct()) {
                                Some("}") => {
                                    self.i += 1;
                                    return;
                                }
                                Some(",") => {
                                    self.i += 1;
                                }
                                _ => {
                                    let before = self.i;
                                    let mut b = base.clone();
                                    self.use_tree(&mut b);
                                    if self.i == before {
                                        self.i += 1; // malformed entry; keep moving
                                    }
                                }
                            }
                        }
                        return;
                    }
                    if self.peek(0).and_then(|k| k.punct()) == Some("*") {
                        self.i += 1;
                        let mut full = prefix.clone();
                        full.extend(path.iter().cloned());
                        self.out.uses.push(("*".into(), full));
                        return;
                    }
                    continue;
                }
                _ => break,
            }
        }
        if let Some(last) = path.last().cloned() {
            let mut full = prefix.clone();
            full.extend(path.iter().cloned());
            self.out.uses.push((last, full));
        }
    }

    /// Parse `fn name …  { body }` (or `;` for a bodiless declaration).
    fn parse_fn(&mut self, mods: &[String], type_name: Option<&str>) {
        let fn_line = self.line();
        // Visibility: look back over the few preceding tokens for `pub`.
        // Restricted forms (`pub(crate)`, `pub(super)`, `pub(in …)`) are NOT
        // entry points for the taint passes — they are unreachable from
        // outside the library, so taint only matters if a truly `pub` fn
        // reaches them, and that path is found through the caller anyway.
        let is_pub = {
            let mut k = self.i;
            let mut saw_pub = false;
            let mut restricted = false;
            let mut steps = 0;
            while k > 0 && steps < 8 {
                k -= 1;
                steps += 1;
                match &self.toks[k].kind {
                    TokKind::Ident(s) if s == "pub" => {
                        saw_pub = true;
                        break;
                    }
                    TokKind::Ident(s)
                        if s == "const" || s == "unsafe" || s == "extern" || s == "async" => {}
                    TokKind::Ident(s)
                        if s == "crate" || s == "super" || s == "in" || s == "self" =>
                    {
                        restricted = true;
                    }
                    TokKind::Punct("(") | TokKind::Punct(")") => {}
                    _ => break,
                }
            }
            saw_pub && !restricted
        };
        self.i += 1; // `fn`
        let name = match self.peek(0).and_then(|k| k.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        // Signature: skip generics/args/return/where until `{` or `;`.
        loop {
            match self.peek(0) {
                None => {
                    self.out
                        .errors
                        .push((fn_line, format!("fn `{name}`: signature never ends")));
                    return;
                }
                Some(TokKind::Punct("<")) => self.skip_angles(),
                Some(TokKind::Punct("(")) | Some(TokKind::Punct("[")) => {
                    self.skip_group();
                }
                Some(TokKind::Punct("{")) => break,
                Some(TokKind::Punct(";")) => {
                    self.i += 1;
                    return; // declaration only
                }
                _ => self.i += 1,
            }
        }
        // Body.
        let body_start = self.i + 1;
        if !self.skip_group() {
            self.out
                .errors
                .push((fn_line, format!("fn `{name}`: body not closed")));
        }
        let body_end = self.i.saturating_sub(1); // matching `}` index
        let mut qual = self.crate_name.clone();
        for m in mods {
            qual.push_str("::");
            qual.push_str(m);
        }
        if let Some(t) = type_name {
            qual.push_str("::");
            qual.push_str(t);
        }
        qual.push_str("::");
        qual.push_str(&name);
        let (calls, allocs, sources, nested) = scan_body(
            self.toks,
            body_start,
            body_end,
            &self.crate_name,
            mods,
            type_name,
        );
        self.out.fns.push(FnItem {
            name,
            qual,
            type_name: type_name.map(str::to_string),
            line: fn_line,
            is_pub,
            calls,
            allocs,
            sources,
            body: (body_start, body_end),
        });
        // Nested `fn` items found inside the body parse as their own items.
        for (start, t_name) in nested {
            let mut w = Walker {
                toks: self.toks,
                i: start,
                crate_name: self.crate_name.clone(),
                out: self.out,
            };
            w.parse_fn(mods, t_name.as_deref());
        }
    }
}

/// One open delimiter group during a body scan.
struct GroupCtx {
    /// True when this `{…}` is the body of a `for`/`while`/`loop`.
    is_loop: bool,
}

/// Scan a function body token range for call sites, allocation primitives
/// and source primitives. Returns (calls, allocs, sources, nested fn
/// starts).
///
/// Loop depth is tracked syntactically: a `for`/`while`/`loop` keyword arms
/// a *pending loop* at the current group-nesting level, and the next `{`
/// opened at that same level becomes the loop body. Braces nested inside
/// the header's parentheses (`while let Some(HeapEntry { node, .. }) = …`)
/// sit at a deeper group level, so they never steal the pending marker;
/// labeled loops (`'outer: loop`) work unchanged because the label tokens
/// pass through before the keyword is seen. A `;` or group close at or
/// below the pending level disarms it (e.g. a bare `for` in an HRTB that
/// never grows a body).
#[allow(clippy::type_complexity)]
fn scan_body(
    toks: &[Tok],
    start: usize,
    end: usize,
    _crate_name: &str,
    _mods: &[String],
    type_name: Option<&str>,
) -> (
    Vec<CallSite>,
    Vec<AllocSite>,
    Vec<SourceHit>,
    Vec<(usize, Option<String>)>,
) {
    let mut calls = Vec::new();
    let mut allocs = Vec::new();
    let mut sources = Vec::new();
    let mut nested: Vec<(usize, Option<String>)> = Vec::new();
    let mut groups: Vec<GroupCtx> = Vec::new();
    let mut pending_loop: Option<usize> = None;
    let mut loop_depth = 0usize;
    let mut i = start;
    while i < end.min(toks.len()) {
        match &toks[i].kind {
            TokKind::Punct(p @ ("(" | "[" | "{")) => {
                let is_loop = *p == "{" && pending_loop == Some(groups.len());
                if is_loop {
                    pending_loop = None;
                    loop_depth += 1;
                }
                groups.push(GroupCtx { is_loop });
                i += 1;
            }
            TokKind::Punct(")" | "]" | "}") => {
                if let Some(g) = groups.pop() {
                    if g.is_loop {
                        loop_depth -= 1;
                    }
                }
                if pending_loop.is_some_and(|lvl| groups.len() < lvl) {
                    pending_loop = None;
                }
                i += 1;
            }
            TokKind::Punct(";") => {
                if pending_loop.is_some_and(|lvl| groups.len() <= lvl) {
                    pending_loop = None;
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "for" || w == "while" || w == "loop" => {
                // `for<'a> …` is an HRTB, not a loop header.
                let hrtb = w == "for" && toks.get(i + 1).and_then(|t| t.kind.punct()) == Some("<");
                if !hrtb {
                    pending_loop = Some(groups.len());
                }
                i += 1;
            }
            TokKind::Ident(w) if w == "fn" => {
                // Nested item: record and skip its body so its calls are not
                // attributed to the enclosing fn.
                nested.push((i, type_name.map(str::to_string)));
                // advance past signature to `{` then matching `}`
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < end.min(toks.len()) {
                    match toks[j].kind.punct() {
                        Some("(") | Some("[") => paren += 1,
                        Some(")") | Some("]") => paren -= 1,
                        Some("{") if paren == 0 => break,
                        Some(";") if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j).and_then(|t| t.kind.punct()) == Some("{") {
                    let mut depth = 0i32;
                    while j < end.min(toks.len()) {
                        match toks[j].kind.punct() {
                            Some("{") => depth += 1,
                            Some("}") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                i = j + 1;
            }
            TokKind::Ident(name) if !is_keyword(name) => {
                // Collect the longest path chain `a::b::c` ending here.
                let mut path = vec![name.clone()];
                let line = toks[i].line;
                let mut j = i + 1;
                loop {
                    if toks.get(j).and_then(|t| t.kind.punct()) == Some("::") {
                        // Turbofish `::<T>` — skip the generic group.
                        if toks.get(j + 1).and_then(|t| t.kind.punct()) == Some("<") {
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < toks.len() {
                                match toks[k].kind.punct() {
                                    Some("<") => depth += 1,
                                    Some(">") => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = k + 1;
                            continue;
                        }
                        match toks.get(j + 1).map(|t| &t.kind) {
                            Some(TokKind::Ident(seg)) if !is_keyword(seg) => {
                                path.push(seg.clone());
                                j += 2;
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                let call_line = toks
                    .get(j.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(line);
                let next = toks.get(j).map(|t| &t.kind);
                let is_call = matches!(next, Some(TokKind::Punct("(")));
                let is_macro = matches!(next, Some(TokKind::Punct("!")))
                    && matches!(
                        toks.get(j + 1).and_then(|t| t.kind.punct()),
                        Some("(") | Some("[") | Some("{")
                    );
                // The token *before* the chain decides method-ness.
                let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
                let is_method = path.len() == 1 && matches!(prev, Some(TokKind::Punct(".")));
                let recv_self = is_method
                    && i >= 2
                    && matches!(&toks[i - 2].kind, TokKind::Ident(s) if s == "self");

                if is_macro {
                    if let Some(kind) = panic_macro(&path) {
                        sources.push(SourceHit {
                            line: call_line,
                            kind,
                            what: format!("{}!", path.join("::")),
                        });
                    }
                    if matches!(
                        path.last().map(String::as_str),
                        Some("vec") | Some("format")
                    ) {
                        allocs.push(AllocSite {
                            line: call_line,
                            what: format!("{}!", path.join("::")),
                            loop_depth,
                        });
                    }
                    i = j + 1;
                    continue;
                }
                if is_call {
                    if let Some((kind, what)) = source_call(&path, is_method) {
                        sources.push(SourceHit {
                            line: call_line,
                            kind,
                            what,
                        });
                    } else {
                        if let Some(what) = alloc_call(&path, is_method) {
                            allocs.push(AllocSite {
                                line: call_line,
                                what,
                                loop_depth,
                            });
                        }
                        calls.push(CallSite {
                            line: call_line,
                            path: path.clone(),
                            method: is_method,
                            recv_self,
                            loop_depth,
                        });
                    }
                } else {
                    // Bare mention: HashMap/HashSet in type position still
                    // counts as a hash-order source.
                    if let Some(last) = path.last() {
                        if last == "HashMap" || last == "HashSet" {
                            sources.push(SourceHit {
                                line: call_line,
                                kind: SourceKind::Hash,
                                what: last.clone(),
                            });
                        }
                        if last == "ThreadId" {
                            sources.push(SourceHit {
                                line: call_line,
                                kind: SourceKind::Thread,
                                what: last.clone(),
                            });
                        }
                    }
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    (calls, allocs, sources, nested)
}

/// Classify a call-path as an allocation primitive, if it is one. `.push`
/// and `.extend` are deliberately excluded — they are the amortized-reuse
/// idiom the A1 fixes hoist *into*. `Rc::clone`/`Arc::clone` (refcount
/// bumps) fall through because only `new`/`with_capacity`/`from` count on
/// the path form.
fn alloc_call(path: &[String], is_method: bool) -> Option<String> {
    let last = path.last()?.as_str();
    if is_method {
        return match last {
            "collect" | "to_vec" | "to_owned" | "to_string" | "clone" | "insert" => {
                Some(format!(".{last}()"))
            }
            _ => None,
        };
    }
    let prev = path.len().checked_sub(2).map(|k| path[k].as_str())?;
    let container = matches!(
        prev,
        "Vec" | "String" | "Box" | "BTreeMap" | "BTreeSet" | "VecDeque" | "Rc" | "Arc"
    );
    if container && matches!(last, "new" | "with_capacity" | "from") {
        Some(path.join("::"))
    } else {
        None
    }
}

fn panic_macro(path: &[String]) -> Option<SourceKind> {
    let last = path.last()?;
    match last.as_str() {
        "panic" | "unreachable" | "todo" | "unimplemented" => Some(SourceKind::Panic),
        _ => None,
    }
}

/// Classify a call-path as a taint-source primitive, if it is one.
fn source_call(path: &[String], is_method: bool) -> Option<(SourceKind, String)> {
    let last = path.last()?.as_str();
    let prev = path.len().checked_sub(2).map(|k| path[k].as_str());
    let written = path.join("::");
    if is_method {
        return match last {
            "unwrap" | "expect" | "expect_err" => Some((SourceKind::Panic, format!(".{last}()"))),
            "from_entropy" => Some((SourceKind::Rng, written)),
            _ => None,
        };
    }
    match (prev, last) {
        (Some("Instant"), "now") | (Some("SystemTime"), "now") => Some((SourceKind::Time, written)),
        (_, "thread_rng") => Some((SourceKind::Rng, written)),
        (_, "from_entropy") => Some((SourceKind::Rng, written)),
        (Some("env"), "var") | (Some("env"), "var_os") | (Some("env"), "vars") => {
            Some((SourceKind::Env, written))
        }
        (_, "available_parallelism") => Some((SourceKind::Env, written)),
        (Some("fs"), _)
            if matches!(
                last,
                "read" | "read_to_string" | "read_dir" | "write" | "metadata" | "canonicalize"
            ) =>
        {
            Some((SourceKind::Fs, written))
        }
        (Some("File"), "open") | (Some("File"), "create") => Some((SourceKind::Fs, written)),
        (Some("thread"), "current") => Some((SourceKind::Thread, written)),
        (Some("HashMap"), _) | (Some("HashSet"), _) => Some((SourceKind::Hash, written)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/model/src/demo.rs", src)
    }

    #[test]
    fn module_paths_resolve() {
        assert_eq!(
            module_of("crates/model/src/latency.rs"),
            ("socl_model".into(), vec!["latency".into()])
        );
        assert_eq!(
            module_of("crates/net/src/lib.rs"),
            ("socl_net".into(), vec![])
        );
        assert_eq!(
            module_of("crates/bench/src/bin/hotpath.rs"),
            ("socl_bench".into(), vec!["hotpath".into()])
        );
    }

    #[test]
    fn free_fn_and_calls() {
        let p = parse("pub fn alpha() { beta(); let x = gamma::delta(1, 2); }\nfn beta() {}");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.qual, "socl_model::demo::alpha");
        assert!(a.is_pub);
        let callees: Vec<String> = a.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(callees, vec!["beta", "gamma::delta"]);
        assert!(!p.fns[1].is_pub);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let src = "struct S;\nimpl S {\n  pub fn new() -> Self { S }\n  fn helper(&self) { self.new_thing(); other(); }\n}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::S::new");
        assert_eq!(p.fns[1].qual, "socl_model::demo::S::helper");
        let h = &p.fns[1];
        assert!(h
            .calls
            .iter()
            .any(|c| c.method && c.recv_self && c.path == ["new_thing"]));
        assert!(h.calls.iter().any(|c| !c.method && c.path == ["other"]));
    }

    #[test]
    fn trait_impl_uses_self_type_not_trait() {
        let src = "impl fmt::Display for Rule {\n  fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { x() }\n}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::Rule::fmt");
    }

    #[test]
    fn inline_mod_extends_path() {
        let src = "mod inner {\n  pub fn f() {}\n}\nfn g() {}";
        let p = parse(src);
        assert_eq!(p.fns[0].qual, "socl_model::demo::inner::f");
        assert_eq!(p.fns[1].qual, "socl_model::demo::g");
    }

    #[test]
    fn cfg_test_bodies_are_invisible() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n  fn fake() { x.unwrap(); }\n}";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn sources_are_detected() {
        let src = "fn f() {\n  let t = std::time::Instant::now();\n  x.unwrap();\n  panic!(\"boom\");\n  let v = std::env::var(\"X\");\n}";
        let p = parse(src);
        let kinds: Vec<SourceKind> = p.fns[0].sources.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SourceKind::Time,
                SourceKind::Panic,
                SourceKind::Panic,
                SourceKind::Env
            ]
        );
        assert_eq!(p.fns[0].sources[0].line, 2);
        assert_eq!(p.fns[0].sources[3].line, 5);
    }

    #[test]
    fn use_aliases_are_collected() {
        let src = "use socl_net::time::Stopwatch;\nuse crate::latency::{completion_time, CompletionBreakdown as CB};\nuse std::collections::*;";
        let p = parse(src);
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "Stopwatch" && f.join("::") == "socl_net::time::Stopwatch"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "completion_time"
                && f.join("::") == "crate::latency::completion_time"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "CB" && f.join("::") == "crate::latency::CompletionBreakdown"));
        assert!(p
            .uses
            .iter()
            .any(|(a, f)| a == "*" && f.join("::") == "std::collections"));
    }

    #[test]
    fn unbalanced_braces_are_a_parse_error() {
        let p = parse("fn broken() { if x { y(); }\n");
        assert!(!p.errors.is_empty());
    }

    #[test]
    fn turbofish_and_generics_do_not_derail() {
        let src = "fn f() { let v = Vec::<f64>::with_capacity(n); g::<A, B>(x); }";
        let p = parse(src);
        let callees: Vec<String> = p.fns[0].calls.iter().map(|c| c.path.join("::")).collect();
        assert!(
            callees.contains(&"Vec::with_capacity".to_string()),
            "{callees:?}"
        );
        assert!(callees.contains(&"g".to_string()), "{callees:?}");
    }

    #[test]
    fn loop_depth_tracks_for_while_loop_nesting() {
        let src = "fn f() {\n  setup();\n  for i in 0..n {\n    one(i);\n    while ready() {\n      two();\n    }\n  }\n  teardown();\n}";
        let p = parse(src);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("setup"), 0);
        assert_eq!(depth_of("one"), 1);
        assert_eq!(depth_of("ready"), 1); // loop header belongs outside its own body
        assert_eq!(depth_of("two"), 2);
        assert_eq!(depth_of("teardown"), 0);
    }

    #[test]
    fn labeled_loop_and_while_let_have_loop_bodies() {
        let src = "fn f() {\n  'outer: loop {\n    inner_a();\n    while let Some(Wrap { x, .. }) = it.next() {\n      inner_b(x);\n      if x > 3 { break 'outer; }\n    }\n  }\n}";
        let p = parse(src);
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("inner_a"), 1);
        assert_eq!(depth_of("inner_b"), 2);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f() {\n  let g: Box<dyn for<'a> Fn(&'a u8)> = mk();\n  { after(); }\n}";
        let p = parse(src);
        let after = p.fns[0].calls.iter().find(|c| c.path == ["after"]).unwrap();
        assert_eq!(after.loop_depth, 0);
    }

    #[test]
    fn alloc_sites_record_loop_depth() {
        let src = "fn f() {\n  let base = Vec::with_capacity(4);\n  for i in 0..n {\n    let row = vec![0.0; n];\n    let s = x.to_vec();\n    keep.push(i);\n  }\n}";
        let p = parse(src);
        let allocs: Vec<(&str, usize)> = p.fns[0]
            .allocs
            .iter()
            .map(|a| (a.what.as_str(), a.loop_depth))
            .collect();
        assert_eq!(
            allocs,
            vec![
                ("Vec::with_capacity", 0),
                ("vec!", 1),
                (".to_vec()", 1), // `.push` is the reuse idiom, never an alloc site
            ]
        );
    }

    #[test]
    fn closure_braces_do_not_change_loop_depth() {
        let src = "fn f() {\n  let out = par_map(&xs, |x| { inner(x) });\n  for i in 0..n { looped(); }\n}";
        let p = parse(src);
        let depth_of = |name: &str| {
            p.fns[0]
                .calls
                .iter()
                .find(|c| c.path == [name])
                .unwrap()
                .loop_depth
        };
        assert_eq!(depth_of("inner"), 0);
        assert_eq!(depth_of("looped"), 1);
    }

    #[test]
    fn struct_fields_parse_in_declaration_order() {
        let src = "pub struct Snap {\n  pub seed: u64,\n  pub(crate) table: BTreeMap<u64, Vec<f64>>,\n  #[allow(dead_code)]\n  flags: u8,\n}\nstruct Unit;\nstruct Tuple(u8, u8);";
        let p = parse(src);
        // Unit/tuple structs are not recorded — no named fields to audit.
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Snap");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["seed", "table", "flags"]);
        assert_eq!(s.fields[1].line, 3);
    }

    #[test]
    fn generic_struct_with_where_clause_parses() {
        let src = "struct W<T> where T: Clone {\n  inner: T,\n  count: usize,\n}\nfn after() {}";
        let p = parse(src);
        assert_eq!(p.structs.len(), 1);
        let names: Vec<&str> = p.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["inner", "count"]);
        assert_eq!(p.fns.len(), 1); // walker resumes cleanly after the struct
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() {\n  fn inner() { hidden(); }\n  visible();\n}";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let oc: Vec<String> = outer.calls.iter().map(|c| c.path.join("::")).collect();
        let ic: Vec<String> = inner.calls.iter().map(|c| c.path.join("::")).collect();
        assert_eq!(oc, vec!["visible"]);
        assert_eq!(ic, vec!["hidden"]);
    }
}

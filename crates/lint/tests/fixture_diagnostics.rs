//! Fixture-driven contract tests for the linter.
//!
//! Each fixture under `tests/fixtures/` is a deliberately violating (or
//! deliberately clean) source file; these tests pin the *exact* diagnostics
//! — rule id and 1-based line — the engine must produce, so any change to
//! the detection logic shows up as a precise diff, not a count drift.

use socl_lint::{lint_source, lint_workspace, Diagnostic, FileKind, Rule};

/// Lint a fixture as library-kind code under a synthetic workspace path
/// (the fixtures' real path would classify as `Test` and be skipped).
fn lint_lib(name: &str, src: &str) -> Vec<(usize, Rule)> {
    let path = format!("crates/model/src/{name}");
    lint_source(&path, src, Some(FileKind::Lib))
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn l1_float_comparisons_are_pinned() {
    let got = lint_lib("bad_l1.rs", include_str!("fixtures/bad_l1.rs"));
    assert_eq!(
        got,
        vec![
            (7, Rule::L1FloatCmp),   // .partial_cmp(
            (7, Rule::L1FloatCmp),   // unwrap_or(Ordering::Equal)
            (11, Rule::L1FloatCmp),  // .partial_cmp(
            (11, Rule::L2PanicFree), // .expect( on the same line
            (14, Rule::L1FloatCmp),  // bare f64 BinaryHeap key
        ]
    );
}

#[test]
fn l2_panic_family_is_pinned() {
    let got = lint_lib("bad_l2.rs", include_str!("fixtures/bad_l2.rs"));
    assert_eq!(
        got,
        vec![
            (3, Rule::L2PanicFree),  // .unwrap()
            (7, Rule::L2PanicFree),  // .expect(
            (11, Rule::L2PanicFree), // todo!
            (17, Rule::L2PanicFree), // unreachable!
        ]
    );
}

#[test]
fn l3_nondeterminism_is_pinned() {
    let got = lint_lib("bad_l3.rs", include_str!("fixtures/bad_l3.rs"));
    assert_eq!(
        got,
        vec![
            (2, Rule::L3Hash), // use ... HashMap
            (6, Rule::L3Time), // Instant::now
            (7, Rule::L3Hash), // HashMap type + ctor: one diagnostic per line
        ]
    );
}

#[test]
fn l4_unsafe_documentation_is_pinned() {
    let got = lint_lib("bad_l4.rs", include_str!("fixtures/bad_l4.rs"));
    // Line 3 has no SAFETY comment; line 10 is documented two lines above.
    assert_eq!(got, vec![(3, Rule::L4Safety)]);
}

#[test]
fn allowlist_semantics_are_pinned() {
    let src = include_str!("fixtures/allowlist.rs");
    let diags = lint_source("crates/model/src/allowlist.rs", src, Some(FileKind::Lib));
    let got: Vec<(usize, Rule)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        got,
        vec![
            (13, Rule::L2PanicFree), // LINT-ALLOW without a reason
            (18, Rule::L2PanicFree), // LINT-ALLOW for a different rule
            (24, Rule::L2PanicFree), // blank line detaches the waiver comment
        ]
    );
    // A reason-less waiver is reported *as* such, so the fix is obvious.
    assert!(
        diags[0].message.contains("missing a reason"),
        "{}",
        diags[0].message
    );
    // The other two are ordinary violations, not waiver complaints.
    assert!(!diags[1].message.contains("missing a reason"));
    assert!(!diags[2].message.contains("missing a reason"));
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let got = lint_lib("clean.rs", include_str!("fixtures/clean.rs"));
    assert_eq!(got, Vec::new(), "clean fixture must lint clean");
}

#[test]
fn bin_kind_waives_l2_but_not_l1_l3() {
    // L2 (panic-freedom) applies to library code only; bins may unwrap.
    let l2 = lint_source(
        "crates/cli/src/main.rs",
        include_str!("fixtures/bad_l2.rs"),
        Some(FileKind::Bin),
    );
    assert_eq!(l2, Vec::new());
    // L1 and L3 still apply to bins.
    let l1 = lint_source(
        "crates/cli/src/main.rs",
        include_str!("fixtures/bad_l1.rs"),
        Some(FileKind::Bin),
    );
    let rules: Vec<Rule> = l1.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec![
            Rule::L1FloatCmp,
            Rule::L1FloatCmp,
            Rule::L1FloatCmp,
            Rule::L1FloatCmp
        ]
    );
    let l3 = lint_source(
        "crates/cli/src/main.rs",
        include_str!("fixtures/bad_l3.rs"),
        Some(FileKind::Bin),
    );
    assert_eq!(l3.len(), 3);
}

#[test]
fn test_kind_is_fully_exempt() {
    for src in [
        include_str!("fixtures/bad_l1.rs"),
        include_str!("fixtures/bad_l2.rs"),
        include_str!("fixtures/bad_l3.rs"),
        include_str!("fixtures/bad_l4.rs"),
    ] {
        let got = lint_source("crates/model/src/x.rs", src, Some(FileKind::Test));
        assert_eq!(got, Vec::new());
    }
}

#[test]
fn bench_crate_is_exempt_from_wall_clock_rule() {
    // crates/bench owns timing by design; L3-nondet-time does not apply
    // there, but the hash-order rule still does.
    let got = lint_source(
        "crates/bench/src/lib.rs",
        include_str!("fixtures/bad_l3.rs"),
        Some(FileKind::Lib),
    );
    let rules: Vec<(usize, Rule)> = got.into_iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(rules, vec![(2, Rule::L3Hash), (7, Rule::L3Hash)]);
}

#[test]
fn diagnostic_display_format_is_stable() {
    let d = Diagnostic {
        file: "crates/model/src/stats.rs".to_string(),
        line: 42,
        rule: Rule::L1FloatCmp,
        message: "raw `partial_cmp` call".to_string(),
    };
    // `file:line:rule: message` — machine-parseable, promised by DESIGN.md.
    assert_eq!(
        d.to_string(),
        "crates/model/src/stats.rs:42:L1-float-cmp: raw `partial_cmp` call"
    );
}

#[test]
fn workspace_dogfood_is_clean() {
    // The repository itself must satisfy its own invariants — all eight
    // passes, including the X concurrency suite. Integration tests run
    // with the package directory (or workspace root) as cwd; walk upward
    // to the workspace root either way.
    let cwd = std::env::current_dir().expect("cwd");
    let root = socl_lint::find_workspace_root(&cwd).expect("workspace root not found");
    let diags = lint_workspace(&root).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_waivers_are_all_load_bearing() {
    // Every committed `LINT-ALLOW`/`LINT-HOT` marker must still suppress
    // at least one diagnostic; dead waivers hide future violations.
    let cwd = std::env::current_dir().expect("cwd");
    let root = socl_lint::find_workspace_root(&cwd).expect("workspace root not found");
    let stale =
        socl_lint::engine::stale_waivers_workspace(&root, &socl_lint::engine::Passes::default())
            .expect("workspace walk failed");
    assert!(
        stale.is_empty(),
        "workspace has {} stale waiver(s):\n{}",
        stale.len(),
        stale
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

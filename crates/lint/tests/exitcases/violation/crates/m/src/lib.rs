//! Exit-code fixture: one L2/T2 violation reachable from a pub fn.

pub fn first(v: &[f64]) -> f64 {
    *v.first().unwrap()
}

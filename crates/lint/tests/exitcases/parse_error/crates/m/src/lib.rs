//! Exit-code fixture: structurally broken source (unclosed fn body).

pub fn truncated() {
    let x = 1;

//! Exit-code fixture: a fully clean library.

/// Add two seconds quantities.
pub fn sum_s(a_s: f64, b_s: f64) -> f64 {
    a_s + b_s
}

//! Exit-code fixture: clean code carrying one dead waiver — `check`
//! exits 0, `check --stale-waivers` exits 1 with a `W0-stale-waiver`.

/// Add two seconds quantities.
pub fn sum_s(a_s: f64, b_s: f64) -> f64 {
    // LINT-ALLOW(L2-panic-free): dead waiver — nothing below panics.
    a_s + b_s
}

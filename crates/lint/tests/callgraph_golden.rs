//! Golden tests pinning the resolved callees of a handful of real workspace
//! functions. These are the anchor points of the interprocedural passes: if
//! a parser or resolution change silently drops edges (breaking taint
//! propagation) or invents them (causing false positives), one of these
//! assertions moves.
//!
//! The expectations list *workspace-local* callees only (`socl_*` quals);
//! std/external calls resolve to no node and are not recorded as edges.

use socl_lint::callgraph::Graph;
use socl_lint::find_workspace_root;
use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().map(|n| n.to_string_lossy().to_string());
        if let Some(n) = &name {
            if n.starts_with('.') || n == "target" || n == "fixtures" {
                continue;
            }
        }
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn workspace_graph() -> Graph {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test must run inside the workspace");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    let pairs: Vec<(String, String)> = files
        .into_iter()
        .filter(|f| f.components().any(|c| c.as_os_str() == "src"))
        .map(|f| {
            let rel = f
                .strip_prefix(&root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&f).expect("workspace file is readable");
            (rel, src)
        })
        .collect();
    Graph::build(&pairs)
}

/// Assert `qual` resolves to a node whose callee set contains every entry in
/// `must_have` and none in `must_not_have`.
fn assert_callees(graph: &Graph, qual: &str, must_have: &[&str], must_not_have: &[&str]) {
    assert!(
        graph.node_by_qual(qual).is_some(),
        "function `{qual}` not found in the call graph — was it renamed?"
    );
    let callees = graph.callees_of(qual);
    for want in must_have {
        assert!(
            callees.iter().any(|c| c == want),
            "`{qual}` should call `{want}`; resolved callees: {callees:?}"
        );
    }
    for bad in must_not_have {
        assert!(
            !callees.iter().any(|c| c == bad),
            "`{qual}` should NOT call `{bad}`; resolved callees: {callees:?}"
        );
    }
}

/// Repair delegates to the placement-level repair and the storage check,
/// but never re-enters the solver pipeline or the wall clock.
#[test]
fn repair_with_replicas_callees() {
    let g = workspace_graph();
    assert_callees(
        &g,
        "socl_core::online::repair_with_replicas",
        &[
            "socl_core::online::repair_placement",
            "socl_core::online::storage_fit",
            "socl_model::placement::ReplicaCounts::set",
            "socl_net::graph::EdgeNetwork::storage",
        ],
        &[
            "socl_core::combine::Combiner::run",
            "socl_net::time::Stopwatch::start",
        ],
    );
}

/// The simplex driver loop only touches the tableau and the NaN-safe float
/// comparison — the pivot itself is the sole mutation edge.
#[test]
fn simplex_optimize_callees() {
    let g = workspace_graph();
    assert_callees(
        &g,
        "socl_milp::simplex::Tableau::optimize",
        &[
            "socl_milp::simplex::Tableau::at",
            "socl_milp::simplex::Tableau::pivot",
            "socl_net::fcmp::lt",
        ],
        &["socl_milp::simplex::solve_lp"],
    );
}

/// The routing DP prices every step through the completion-time model and
/// the unit-suffixed accessors introduced for the T3 pass. Since the
/// scratch-buffer refactor (rule A1-hot-alloc) the DP body lives in
/// `optimal_route_with`; `optimal_route` is a thin allocating wrapper.
#[test]
fn optimal_route_callees() {
    let g = workspace_graph();
    assert_callees(
        &g,
        "socl_model::routing::optimal_route",
        &[
            "socl_model::routing::RouteScratch::new",
            "socl_model::routing::optimal_route_with",
        ],
        &["socl_model::objective::evaluate"],
    );
    assert_callees(
        &g,
        "socl_model::routing::optimal_route_with",
        &[
            "socl_model::latency::completion_time",
            "socl_model::service::ServiceCatalog::compute_gflop",
            "socl_net::graph::EdgeNetwork::compute_gflops",
            "socl_net::paths::AllPairs::transfer_time",
            "socl_net::paths::AllPairs::return_time",
        ],
        &["socl_model::objective::evaluate"],
    );
}

/// The objective evaluates by routing every request (possibly in parallel);
/// the routing edge is what carries T1/T2 taint into the objective if the
/// DP ever regresses.
#[test]
fn objective_evaluate_callees() {
    let g = workspace_graph();
    assert_callees(
        &g,
        "socl_model::objective::evaluate",
        &[
            "socl_model::routing::optimal_route",
            "socl_model::latency::CompletionBreakdown::total",
            "socl_model::placement::Placement::deployment_cost",
            "socl_net::par::par_map_with",
        ],
        &["socl_model::latency::completion_time"],
    );
}

/// The JDR baseline ranks nodes by capacity and uses only the sanctioned
/// Stopwatch wrapper for its runtime report — the taint barrier the L3
/// waiver in `socl_net::time` documents.
#[test]
fn jdr_baseline_callees() {
    let g = workspace_graph();
    assert_callees(
        &g,
        "socl_baselines::jdr::jdr",
        &[
            "socl_baselines::common::ensure_coverage",
            "socl_baselines::jdr::capacity_ranking",
            "socl_baselines::jdr::fits",
            "socl_net::paths::AllPairs::best_speed",
            "socl_net::time::Stopwatch::start",
            "socl_net::time::Stopwatch::elapsed",
        ],
        &["socl_model::objective::evaluate"],
    );
}

//! Fixture-driven contract tests for the concurrency-discipline passes
//! (`X1-lock-discipline`, `X2-capture-disjoint`, `X3-order-restore`) and
//! the `--stale-waivers` audit.
//!
//! Each `bad_x*.rs` fixture is a mutant of a sanctioned idiom — the
//! double-lock, the guard held across a dispatch, the sort-removal mutant
//! of the index-tagged bucket — and these tests pin the *exact*
//! `(line, rule)` pairs plus the load-bearing message fragments (witness
//! chains, capture names), so detection changes show up as precise diffs.

use socl_lint::engine::{lint_files, stale_waivers, Passes};
use socl_lint::{Diagnostic, Rule};

/// Lint `src` as a library file with only the passes in `list` enabled.
fn lint_with(name: &str, src: &str, list: &str) -> Vec<Diagnostic> {
    let files = vec![(format!("crates/model/src/{name}"), src.to_string())];
    lint_files(&files, &Passes::from_list(list).expect("pass list"))
}

fn lines_rules(diags: &[Diagnostic]) -> Vec<(usize, Rule)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn x1_lock_discipline_is_pinned() {
    let diags = lint_with("bad_x1.rs", include_str!("fixtures/bad_x1.rs"), "lock");
    assert_eq!(
        lines_rules(&diags),
        vec![
            (8, Rule::X1LockDiscipline),  // second lock while `g` live
            (15, Rule::X1LockDiscipline), // par_map dispatch while `g` live
            (25, Rule::X1LockDiscipline), // call to fan_out (dispatches)
            (34, Rule::X1LockDiscipline), // lock inside a sequential loop
        ],
        "{diags:#?}"
    );
    // The double lock names both guards so the order is auditable.
    assert!(
        diags[0].message.contains("guard `g` over `a`"),
        "{}",
        diags[0].message
    );
    // The interprocedural finding carries the witness chain to the sink.
    assert!(diags[2].message.contains("fan_out"), "{}", diags[2].message);
    assert!(
        diags[2].message.contains("dispatches to the pool"),
        "{}",
        diags[2].message
    );
    // The in-loop lock is a hoisting hint, not a deadlock claim.
    assert!(diags[3].message.contains("hoist"), "{}", diags[3].message);
    // `waived_double_lock` (line 44) is suppressed by its waiver.
    assert!(diags.iter().all(|d| d.line < 40), "{diags:#?}");
}

#[test]
fn x2_capture_disjoint_is_pinned() {
    let diags = lint_with("bad_x2.rs", include_str!("fixtures/bad_x2.rs"), "capture");
    assert_eq!(
        lines_rules(&diags),
        vec![
            (18, Rule::X2CaptureDisjoint), // `total += …` in spawned closure
            (25, Rule::X2CaptureDisjoint), // captured `bump` takes a lock
        ],
        "{diags:#?}"
    );
    assert!(
        diags[0].message.contains("mutates captured `total`"),
        "{}",
        diags[0].message
    );
    // The call-resolution finding names the callee and its lock witness.
    assert!(
        diags[1].message.contains("captured `bump`"),
        "{}",
        diags[1].message
    );
    assert!(
        diags[1].message.contains("takes a lock"),
        "{}",
        diags[1].message
    );
    // `waived_mutating_capture` is suppressed by its waiver.
    assert!(diags.iter().all(|d| d.line < 28), "{diags:#?}");
}

#[test]
fn x3_order_restore_is_pinned() {
    let diags = lint_with("bad_x3.rs", include_str!("fixtures/bad_x3.rs"), "order");
    assert_eq!(
        lines_rules(&diags),
        vec![
            (11, Rule::X3OrderRestore), // untagged push into `parts`
            (21, Rule::X3OrderRestore), // sort-removal mutant: no re-sort
        ],
        "{diags:#?}"
    );
    assert!(
        diags[0]
            .message
            .contains("pushes plain values into `parts`"),
        "{}",
        diags[0].message
    );
    // The missing-sort mutant names the exact fix, field-precisely.
    assert!(
        diags[1].message.contains("parts.sort_by_key(|(i, _)| *i)"),
        "{}",
        diags[1].message
    );
    // `waived_untagged` is suppressed by its waiver.
    assert!(diags.iter().all(|d| d.line < 30), "{diags:#?}");
}

#[test]
fn sanctioned_idioms_lint_clean() {
    let diags = lint_with(
        "conc_clean.rs",
        include_str!("fixtures/conc_clean.rs"),
        "lock,capture,order",
    );
    assert_eq!(diags, Vec::new(), "sanctioned idioms must lint clean");
}

#[test]
fn x2_ambiguity_gate_requires_unanimous_candidates() {
    // Two workspace fns named `poke`: one locks, one does not. The
    // bare-name union is not unanimous, so the captured-call finding must
    // stay silent — same gate as PR 8's A1.
    let locking = r#"
use std::sync::Mutex;
static S: Mutex<u32> = Mutex::new(0);
pub fn poke(n: u32) -> u32 {
    let mut g = S.lock().unwrap();
    *g += n;
    *g
}
"#;
    let pure = "pub fn poke(n: u32) -> u32 {\n    n + 1\n}\n";
    let dispatch = "pub fn run(xs: &[u32], poke: impl Fn(u32) -> u32 + Sync) -> Vec<u32> {\n    par_map(xs, |x| poke(*x))\n}\n";
    let ambiguous = vec![
        ("crates/model/src/a.rs".to_string(), locking.to_string()),
        ("crates/model/src/b.rs".to_string(), pure.to_string()),
        ("crates/model/src/run.rs".to_string(), dispatch.to_string()),
    ];
    let passes = Passes::from_list("capture").unwrap();
    assert_eq!(lint_files(&ambiguous, &passes), Vec::new());

    // Drop the pure twin: the union becomes unanimous and the finding fires.
    let unanimous = vec![ambiguous[0].clone(), ambiguous[2].clone()];
    let diags = lint_files(&unanimous, &passes);
    assert_eq!(
        lines_rules(&diags),
        vec![(2, Rule::X2CaptureDisjoint)],
        "{diags:#?}"
    );
}

#[test]
fn stale_waiver_audit_separates_live_from_dead() {
    let live = "pub fn f(x: Option<u32>) -> u32 {\n    \
                // LINT-ALLOW(L2-panic-free): fixture — always Some here.\n    \
                x.unwrap()\n}\n";
    let dead = "pub fn g(x: u32) -> u32 {\n    \
                // LINT-ALLOW(L2-panic-free): nothing on the next line panics.\n    \
                x + 1\n}\n";
    let files = vec![
        ("crates/model/src/w1.rs".to_string(), live.to_string()),
        ("crates/model/src/w2.rs".to_string(), dead.to_string()),
    ];
    let diags = stale_waivers(&files, &Passes::default());
    assert_eq!(
        lines_rules(&diags),
        vec![(2, Rule::W0StaleWaiver)],
        "{diags:#?}"
    );
    assert_eq!(diags[0].file, "crates/model/src/w2.rs");
    assert!(diags[0].message.contains("stale"), "{}", diags[0].message);
}

#[test]
fn stale_waiver_audit_skips_tests_and_the_linter_itself() {
    let dead = "pub fn g(x: u32) -> u32 {\n    \
                // LINT-ALLOW(L2-panic-free): dead waiver.\n    \
                x + 1\n}\n";
    for path in ["crates/model/tests/t.rs", "crates/lint/src/x.rs"] {
        let files = vec![(path.to_string(), dead.to_string())];
        assert_eq!(
            stale_waivers(&files, &Passes::default()),
            Vec::new(),
            "{path} must be exempt from the waiver audit"
        );
    }
}

//! Clean fixture for the X passes: the sanctioned idioms exactly as
//! `socl_net::par` writes them — index-tagged Mutex bucket drained by
//! `lock_recover`, re-sorted before escape, and per-worker scratch.
use std::sync::{Mutex, MutexGuard};

pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub fn tagged_sorted(xs: &[u32]) -> Vec<(usize, u32)> {
    let parts: Mutex<Vec<(usize, u32)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, x) in xs.iter().enumerate() {
            scope.spawn(move || {
                let mut g = lock_recover(&parts);
                g.push((i, *x));
            });
        }
    });
    let mut parts = parts.into_inner().unwrap_or_else(|p| p.into_inner());
    parts.sort_by_key(|(i, _)| *i);
    parts
}

pub fn scratch_workers(xs: &[u32]) -> Vec<u32> {
    par_map_scratch_with(xs, 4, Vec::new, |scratch: &mut Vec<u32>, x: &u32| {
        scratch.clear();
        scratch.push(*x + 1);
        scratch[0]
    })
}

// Fixture: deliberate L3 nondeterminism violations.
use std::collections::HashMap;
use std::time::Instant;

pub fn timed_count(keys: &[u32]) -> (usize, f64) {
    let t = Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    (m.len(), t.elapsed().as_secs_f64())
}

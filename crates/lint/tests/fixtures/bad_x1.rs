//! X1 fixture: one lock-discipline violation per function, plus a waived
//! twin. Linted by `concurrency_fixtures.rs` with only the `lock` pass
//! enabled, so the `unwrap()`s here stay out of the pinned output.
use std::sync::Mutex;

pub fn double_lock(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock().unwrap();
    let h = b.lock().unwrap();
    *g + *h
}

pub fn guard_across_dispatch(m: &Mutex<u32>, xs: &[u32]) -> Vec<u32> {
    let g = m.lock().unwrap();
    let base = *g;
    par_map(xs, |x| *x + base)
}

fn fan_out(xs: &[u32]) -> Vec<u32> {
    par_map(xs, |x| *x + 1)
}

pub fn guard_across_call(m: &Mutex<u32>, xs: &[u32]) -> Vec<u32> {
    let g = m.lock().unwrap();
    let keep = *g;
    let out = fan_out(xs);
    drop(g);
    let _ = keep;
    out
}

pub fn lock_in_loop(m: &Mutex<u32>, xs: &[u32]) -> u32 {
    let mut total = 0;
    for x in xs {
        let g = m.lock().unwrap();
        total += *g + *x;
    }
    total
}

pub fn waived_double_lock(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let g = a.lock().unwrap();
    // LINT-ALLOW(X1-lock-discipline): fixed a-then-b order is documented at
    // every call site; this fixture pins the waiver-barrier semantics.
    let h = b.lock().unwrap();
    *g + *h
}

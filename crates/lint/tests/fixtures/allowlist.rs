// Fixture: LINT-ALLOW waiver semantics.
pub fn justified(x: Option<u32>) -> u32 {
    // LINT-ALLOW(L2-panic-free): fixture demonstrates a justified waiver.
    x.unwrap()
}

pub fn justified_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // LINT-ALLOW(L2-panic-free): same-line waivers also count.
}

pub fn missing_reason(x: Option<u32>) -> u32 {
    // LINT-ALLOW(L2-panic-free)
    x.unwrap()
}

pub fn wrong_rule(x: Option<u32>) -> u32 {
    // LINT-ALLOW(L1): a waiver for a different rule does not apply.
    x.unwrap()
}

pub fn detached(x: Option<u32>) -> u32 {
    // LINT-ALLOW(L2-panic-free): a blank line detaches the comment block.

    x.unwrap()
}

// Fixture: L4-unsafe-doc — one undocumented `unsafe`, one documented.
pub fn first_undocumented(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn first_documented(xs: &[u32]) -> u32 {
    debug_assert!(!xs.is_empty());
    // SAFETY: every caller checks `is_empty` first; the debug_assert above
    // enforces the contract in test builds.
    unsafe { *xs.get_unchecked(0) }
}

// Fixture: fully conforming library code — zero diagnostics expected.
use std::collections::BTreeMap;

pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn take(x: Option<u32>) -> Option<u32> {
    x
}

pub fn counts(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

// Mentioning partial_cmp or unwrap in a comment is fine; so is defining a
// method *named* partial_cmp (the checks match call syntax, not words).
impl PartialOrd for Wrapper {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.cmp(&other.0))
    }
}

#[derive(PartialEq, Eq)]
pub struct Wrapper(u32);

pub fn strings_are_masked() -> &'static str {
    "calling .unwrap() or Instant::now() inside a string is not code"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_under_cfg_test() {
        assert_eq!(Some(1u32).unwrap(), 1);
        let t = std::time::Instant::now();
        let _ = t.elapsed();
    }
}

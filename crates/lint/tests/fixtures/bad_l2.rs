// Fixture: deliberate L2-panic-free violations (library-kind file).
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Result<u32, String>) -> u32 {
    x.expect("boom")
}

pub fn later() -> u32 {
    todo!("implement")
}

pub fn never(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

// Fixture: deliberate L1-float-cmp violations. Never compiled; read by
// `fixture_diagnostics.rs`, which asserts the exact (rule, line) output.
use std::cmp::Ordering;
use std::collections::BinaryHeap;

pub fn sort_scores(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}

pub fn best(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}

pub fn frontier() -> BinaryHeap<(f64, usize)> {
    BinaryHeap::new()
}

//! X2 fixture: capture-disjointness violations. Linted with only the
//! `capture` pass enabled. `bump` locks a global, so a dispatched closure
//! calling a captured `bump` serializes the workers on hidden state.
use std::sync::Mutex;

static TALLY: Mutex<u32> = Mutex::new(0);

pub fn bump(n: u32) -> u32 {
    let mut g = TALLY.lock().unwrap();
    *g += n;
    *g
}

pub fn mutating_capture(xs: &[u32]) -> u32 {
    let mut total = 0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            total += xs.len() as u32;
        });
    });
    total
}

pub fn hidden_serialization(xs: &[u32], bump: impl Fn(u32) -> u32 + Sync) -> Vec<u32> {
    par_map(xs, |x| bump(*x))
}

pub fn waived_mutating_capture(xs: &[u32]) -> u32 {
    let mut total = 0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // LINT-ALLOW(X2-capture-disjoint): single worker; the scope
            // joins before `total` is read again.
            total += xs.len() as u32;
        });
    });
    total
}

//! X3 fixture: order-restoring-reduction violations. Linted with only the
//! `order` pass enabled. `tagged_unsorted` is the sort-removal mutant of
//! the sanctioned `(index, value)` + `sort_by_key` bucket idiom.
use std::sync::Mutex;

pub fn untagged(xs: &[u32]) -> Vec<u32> {
    let parts: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut g = parts.lock().unwrap();
            g.push(xs.len() as u32);
        });
    });
    parts.into_inner().unwrap()
}

pub fn tagged_unsorted(xs: &[u32]) -> Vec<(usize, u32)> {
    let parts: Mutex<Vec<(usize, u32)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, x) in xs.iter().enumerate() {
            scope.spawn(move || {
                let mut g = parts.lock().unwrap();
                g.push((i, *x));
            });
        }
    });
    parts.into_inner().unwrap()
}

pub fn waived_untagged(xs: &[u32]) -> Vec<u32> {
    let parts: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut g = parts.lock().unwrap();
            // LINT-ALLOW(X3-order-restore): single worker, single push —
            // there is no completion order to restore.
            g.push(xs.len() as u32);
        });
    });
    parts.into_inner().unwrap()
}

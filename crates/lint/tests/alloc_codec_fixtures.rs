//! Contract tests for the A1-hot-alloc and C1-codec-coverage passes over
//! in-memory mini-workspaces, pinning exact `(rule, file, line)` triples and
//! the rendered call chains / remediation text. The chain is part of the
//! linter's interface — it is what a developer follows to decide where to
//! hoist a buffer or place a waiver barrier — so a resolution or summary
//! change that reroutes, truncates, or drops a diagnostic must fail here.

use socl_lint::engine::{lint_files, Passes};
use socl_lint::Rule;

fn alloc_only() -> Passes {
    Passes::from_list("alloc").expect("pass list parses")
}

fn codec_only() -> Passes {
    Passes::from_list("codec").expect("pass list parses")
}

fn files(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// 64-bit FNV-1a, mirroring the C1 shape hash so fixtures can pin exact
/// marker values instead of copying opaque constants.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- A1 ----

/// An allocation two hops below a `LINT-HOT(A1)` entry, reached through a
/// labeled `while let` loop (the P0-parse constructs), is reported at the
/// primitive with the full chain from the entry.
#[test]
fn a1_loop_chain_is_pinned() {
    let ws = files(&[(
        "crates/model/src/hotfix.rs",
        "// LINT-HOT(A1)\n\
         pub fn slot_step(mut jobs: Vec<usize>) -> usize {\n\
             let mut acc = 0;\n\
             'slots: while let Some(n) = jobs.pop() {\n\
                 if n == 0 {\n\
                     break 'slots;\n\
                 }\n\
                 acc += widen(n);\n\
             }\n\
             acc\n\
         }\n\
         fn widen(n: usize) -> usize {\n\
             let row = vec![0u8; n];\n\
             row.len()\n\
         }\n",
    )]);
    let diags = lint_files(&ws, &alloc_only());
    let a1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::A1HotAlloc)
        .collect();
    assert_eq!(a1.len(), 1, "diags: {diags:?}");
    assert_eq!(a1[0].file, "crates/model/src/hotfix.rs");
    assert_eq!(a1[0].line, 13, "expected the `vec![0u8; n]` line");
    assert!(
        a1[0]
            .message
            .contains("call chain: socl_model::hotfix::slot_step -> socl_model::hotfix::widen"),
        "chain text changed: {}",
        a1[0].message
    );
}

/// A looped call leaving the covered set is flagged *at the call line* with
/// the summary's witness — the opaque-boundary rule.
#[test]
fn a1_boundary_call_is_flagged_at_the_call_site() {
    let ws = files(&[
        (
            "crates/model/src/hotfix.rs",
            "use crate::helper_pool::make_row;\n\
             // LINT-HOT(A1)\n\
             pub fn sweep(n: usize) -> usize {\n\
                 let mut total = 1;\n\
                 while total < n {\n\
                     total += make_row(total).len();\n\
                 }\n\
                 total\n\
             }\n",
        ),
        (
            "crates/model/src/helper_pool.rs",
            "pub(crate) fn make_row(n: usize) -> Vec<u32> {\n\
                 (0..n as u32).collect()\n\
             }\n",
        ),
    ]);
    let diags = lint_files(&ws, &alloc_only());
    let a1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::A1HotAlloc)
        .collect();
    assert_eq!(a1.len(), 1, "diags: {diags:?}");
    assert_eq!(a1[0].file, "crates/model/src/hotfix.rs");
    assert_eq!(a1[0].line, 6, "expected the `make_row(total)` call line");
    assert!(
        a1[0]
            .message
            .contains("call to `socl_model::helper_pool::make_row` allocates"),
        "boundary message changed: {}",
        a1[0].message
    );
    assert!(
        a1[0].message.contains("`.collect()`"),
        "witness should name the concrete primitive: {}",
        a1[0].message
    );
}

/// A `LINT-ALLOW(A1-hot-alloc)` on the call line is an edge barrier: the
/// same workspace as above lints clean with the waiver in place.
#[test]
fn a1_waiver_is_an_edge_barrier() {
    let ws = files(&[
        (
            "crates/model/src/hotfix.rs",
            "use crate::helper_pool::make_row;\n\
             // LINT-HOT(A1)\n\
             pub fn sweep(n: usize) -> usize {\n\
                 let mut total = 1;\n\
                 while total < n {\n\
                     // LINT-ALLOW(A1-hot-alloc): rows are pooled upstream\n\
                     total += make_row(total).len();\n\
                 }\n\
                 total\n\
             }\n",
        ),
        (
            "crates/model/src/helper_pool.rs",
            "pub(crate) fn make_row(n: usize) -> Vec<u32> {\n\
                 (0..n as u32).collect()\n\
             }\n",
        ),
    ]);
    let diags = lint_files(&ws, &alloc_only());
    assert_eq!(diags, Vec::new(), "waived edge must sever the finding");
}

/// The ambiguity rule: a method call that resolves to a *name union* only
/// participates when every candidate allocates. One allocation-free
/// candidate kills the finding; making all candidates allocate restores it.
#[test]
fn a1_ambiguous_union_requires_all_candidates_to_allocate() {
    let hot = (
        "crates/model/src/hotreg.rs",
        "use crate::cachemap::CacheMap;\n\
         // LINT-HOT(A1)\n\
         pub fn hot_probe(table: &CacheMap, n: usize) -> usize {\n\
             let mut acc = 0;\n\
             for i in 0..n {\n\
                 acc += table.get(i);\n\
             }\n\
             acc\n\
         }\n",
    );
    let alloc_get = (
        "crates/model/src/cachemap.rs",
        "pub struct CacheMap {\n\
             rows: Vec<Vec<u32>>,\n\
         }\n\
         impl CacheMap {\n\
             pub fn get(&self, k: usize) -> usize {\n\
                 self.rows[k].to_vec().len()\n\
             }\n\
         }\n",
    );
    // A second same-name method that does NOT allocate makes the union
    // uncertain-and-mixed: no finding.
    let clean_get = (
        "crates/model/src/flatrow.rs",
        "pub struct FlatRow {\n\
             xs: Vec<u32>,\n\
         }\n\
         impl FlatRow {\n\
             pub fn get(&self, k: usize) -> usize {\n\
                 self.xs[k] as usize\n\
             }\n\
         }\n",
    );
    let mixed = files(&[hot, alloc_get, clean_get]);
    let diags = lint_files(&mixed, &alloc_only());
    assert_eq!(
        diags,
        Vec::new(),
        "a mixed name-union must not pin the allocating candidate"
    );

    // Same workspace, but the second candidate allocates too — now every
    // candidate of the site allocates and the looped call is a finding.
    let alloc_get2 = (
        "crates/model/src/flatrow.rs",
        "pub struct FlatRow {\n\
             xs: Vec<u32>,\n\
         }\n\
         impl FlatRow {\n\
             pub fn get(&self, k: usize) -> usize {\n\
                 self.xs.to_vec()[k] as usize\n\
             }\n\
         }\n",
    );
    let all_alloc = files(&[hot, alloc_get, alloc_get2]);
    let diags = lint_files(&all_alloc, &alloc_only());
    let a1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::A1HotAlloc)
        .collect();
    assert_eq!(a1.len(), 1, "diags: {diags:?}");
    assert_eq!(a1[0].file, "crates/model/src/hotreg.rs");
    assert_eq!(a1[0].line, 6, "expected the `table.get(i)` call line");
}

// ---------------------------------------------------------------- C1 ----

/// A correct method-pair codec with a matching shape marker lints clean.
fn c1_frame_fixture(
    fields: &str,
    writer: &str,
    reader: &str,
    marker: &str,
) -> Vec<(String, String)> {
    files(&[(
        "crates/sim/src/ckpt.rs",
        &format!(
            "// {marker}\n\
             pub const CKPT_VERSION: u32 = 1;\n\
             pub struct Frame {{\n\
             {fields}\
             }}\n\
             impl Frame {{\n\
                 pub fn to_bytes(&self) -> Vec<u8> {{\n\
                     let mut w = Vec::new();\n\
             {writer}\
                     w\n\
                 }}\n\
                 pub fn from_bytes(b: &[u8]) -> Frame {{\n\
             {reader}\
                 }}\n\
             }}\n"
        ),
    )])
}

#[test]
fn c1_clean_codec_is_clean() {
    let marker = format!("CKPT-SHAPE(v1): {:016x}", fnv1a("Frame{a,b};"));
    let ws = c1_frame_fixture(
        "    pub a: u32,\n    pub b: u32,\n",
        "        w.extend(self.a.to_le_bytes());\n\
         \x20       w.extend(self.b.to_le_bytes());\n",
        "        let a = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);\n\
         \x20       let b = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);\n\
         \x20       Frame { a, b }\n",
        &marker,
    );
    let diags = lint_files(&ws, &codec_only());
    assert_eq!(diags, Vec::new(), "clean codec must produce no diagnostics");
}

/// The seeded drift mutant: an extra struct field the codec never touches
/// fails lint with a *field-level* diagnostic on both sides.
#[test]
fn c1_extra_field_drift_is_caught_field_level() {
    let marker = format!("CKPT-SHAPE(v1): {:016x}", fnv1a("Frame{a,b,c};"));
    let ws = c1_frame_fixture(
        "    pub a: u32,\n    pub b: u32,\n    pub c: u32,\n",
        "        w.extend(self.a.to_le_bytes());\n\
         \x20       w.extend(self.b.to_le_bytes());\n",
        "        let a = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);\n\
         \x20       let b = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);\n\
         \x20       Frame { a, b, c: 0 }\n",
        &marker,
    );
    let diags = lint_files(&ws, &codec_only());
    let c1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::C1CodecCoverage)
        .collect();
    // `c` is mentioned by the reader (struct literal) but never written:
    // exactly one field-level diagnostic, anchored at the field definition.
    assert_eq!(c1.len(), 1, "diags: {diags:?}");
    assert_eq!(c1[0].file, "crates/sim/src/ckpt.rs");
    assert_eq!(c1[0].line, 6, "expected the `pub c: u32` definition line");
    assert!(
        c1[0]
            .message
            .contains("field `c` of `Frame` is never written by `to_bytes`"),
        "drift message changed: {}",
        c1[0].message
    );
}

/// Writing fields out of declaration order is an error even when every
/// field is covered — the untagged byte format makes order the schema.
#[test]
fn c1_order_swap_is_caught() {
    let marker = format!("CKPT-SHAPE(v1): {:016x}", fnv1a("Frame{a,b};"));
    let ws = c1_frame_fixture(
        "    pub a: u32,\n    pub b: u32,\n",
        "        w.extend(self.b.to_le_bytes());\n\
         \x20       w.extend(self.a.to_le_bytes());\n",
        "        let a = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);\n\
         \x20       let b = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);\n\
         \x20       Frame { a, b }\n",
        &marker,
    );
    let diags = lint_files(&ws, &codec_only());
    let c1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::C1CodecCoverage)
        .collect();
    assert_eq!(c1.len(), 1, "diags: {diags:?}");
    assert_eq!(c1[0].line, 10, "expected the first out-of-order write line");
    assert!(
        c1[0]
            .message
            .contains("field `b` of `Frame` written out of declaration order"),
        "order message changed: {}",
        c1[0].message
    );
}

/// A stale shape hash demands a version bump; a missing marker is told the
/// exact line to add, including the computed hash.
#[test]
fn c1_shape_marker_forces_version_bumps() {
    // Stale hash (recorded for the old single-field shape).
    let stale = format!("CKPT-SHAPE(v1): {:016x}", fnv1a("Frame{a};"));
    let ws = c1_frame_fixture(
        "    pub a: u32,\n    pub b: u32,\n",
        "        w.extend(self.a.to_le_bytes());\n\
         \x20       w.extend(self.b.to_le_bytes());\n",
        "        let a = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);\n\
         \x20       let b = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);\n\
         \x20       Frame { a, b }\n",
        &stale,
    );
    let diags = lint_files(&ws, &codec_only());
    let c1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::C1CodecCoverage)
        .collect();
    assert_eq!(c1.len(), 1, "diags: {diags:?}");
    assert_eq!(c1[0].line, 1, "expected the marker line");
    assert!(
        c1[0].message.contains("bump CKPT_VERSION") && c1[0].message.contains("CKPT-SHAPE(v2)"),
        "bump message changed: {}",
        c1[0].message
    );

    // No marker at all: the suggestion carries the ready-to-paste line.
    let ws = c1_frame_fixture(
        "    pub a: u32,\n    pub b: u32,\n",
        "        w.extend(self.a.to_le_bytes());\n\
         \x20       w.extend(self.b.to_le_bytes());\n",
        "        let a = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);\n\
         \x20       let b = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);\n\
         \x20       Frame { a, b }\n",
        "no shape marker here",
    );
    let diags = lint_files(&ws, &codec_only());
    let c1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::C1CodecCoverage)
        .collect();
    assert_eq!(c1.len(), 1, "diags: {diags:?}");
    let want = format!("CKPT-SHAPE(v1): {:016x}", fnv1a("Frame{a,b};"));
    assert!(
        c1[0].message.contains(&want),
        "suggestion should carry the computed hash `{want}`: {}",
        c1[0].message
    );
}

/// A free `put_x`/`get_x` pair without a `LINT-CODEC:` marker cannot dodge
/// the audit: the missing marker is itself a diagnostic.
#[test]
fn c1_unmarked_free_pair_is_reported() {
    let ws = files(&[(
        "crates/sim/src/ckpt.rs",
        "pub const CKPT_VERSION: u32 = 1;\n\
         pub struct Pose {\n\
             pub x: u64,\n\
         }\n\
         pub fn put_pose(w: &mut Vec<u8>, p: &Pose) {\n\
             w.extend(p.x.to_le_bytes());\n\
         }\n\
         pub fn get_pose(b: &[u8]) -> Pose {\n\
             let x = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);\n\
             Pose { x }\n\
         }\n",
    )]);
    let diags = lint_files(&ws, &codec_only());
    let c1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::C1CodecCoverage)
        .collect();
    assert!(
        c1.iter()
            .any(|d| d.line == 5 && d.message.contains("no `LINT-CODEC:` marker")),
        "diags: {diags:?}"
    );
}

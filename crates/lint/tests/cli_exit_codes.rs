//! End-to-end tests of the `socl-lint` binary: the exit-code contract
//! (`0` clean / `1` violations, including parse failures / `2` internal
//! error) and the `--json` output shape, exercised against the committed
//! mini-workspaces under `tests/exitcases/`.
//!
//! CI and the dogfood test key off these codes, so they are interface, not
//! implementation detail.

use std::path::PathBuf;
use std::process::{Command, Output};

fn exitcase(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/exitcases")
        .join(name)
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_socl-lint"))
        .args(args)
        .output()
        .expect("socl-lint binary runs")
}

fn check(root: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec!["check", "--root", root.to_str().unwrap()];
    args.extend_from_slice(extra);
    run_lint(&args)
}

#[test]
fn clean_workspace_exits_zero() {
    let out = check(&exitcase("clean"), &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn violations_exit_one_with_stable_lines() {
    let out = check(&exitcase("violation"), &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Stable `file:line:rule: message` lines, token and taint rule together.
    assert!(
        stdout.contains("crates/m/src/lib.rs:4:L2-panic-free:"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/m/src/lib.rs:4:T2-panic-reach:"),
        "{stdout}"
    );
}

#[test]
fn parse_failure_exits_one_as_p0_not_two() {
    // A file the item parser cannot structure is a *lint finding* (the
    // passes are blinded), not an internal error: exit 1 with `P0-parse`.
    let out = check(&exitcase("parse_error"), &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/m/src/lib.rs:3:P0-parse:"),
        "{stdout}"
    );
    assert!(stdout.contains("body not closed"), "{stdout}");
}

#[test]
fn internal_errors_exit_two() {
    // A root that is not a workspace is the linter's own failure to run,
    // distinct from any verdict about the code: exit 2, message on stderr.
    let missing = exitcase("clean").join("crates"); // exists but has no crates/
    let out = check(&missing, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stdout.is_empty(), "exit-2 must not fake a verdict");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("workspace root"), "{stderr}");
}

#[test]
fn unknown_arguments_exit_two() {
    let out = run_lint(&["check", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_mode_emits_parseable_records_on_stdout_only() {
    let out = check(&exitcase("violation"), &["--json"]);
    assert_eq!(out.status.code(), Some(1), "--json keeps the exit contract");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "{stdout}"
    );
    // One record per diagnostic with the four promised keys.
    assert_eq!(trimmed.matches("\"file\":").count(), 2, "{stdout}");
    assert_eq!(trimmed.matches("\"line\":").count(), 2, "{stdout}");
    assert_eq!(trimmed.matches("\"rule\":").count(), 2, "{stdout}");
    assert_eq!(trimmed.matches("\"message\":").count(), 2, "{stdout}");
    assert!(trimmed.contains("\"rule\": \"T2-panic-reach\""), "{stdout}");
    // The human summary stays on stderr so stdout is pure JSON.
    assert!(!stdout.contains("violation(s)"), "{stdout}");
}

#[test]
fn json_mode_on_clean_workspace_is_an_empty_array() {
    let out = check(&exitcase("clean"), &["--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");
}

#[test]
fn stale_waivers_mode_keeps_the_exit_contract() {
    // A dead waiver is a violation in audit mode only: plain `check`
    // exits 0 on the same tree.
    let root = exitcase("stale_waiver");
    let plain = check(&root, &[]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");
    let audit = check(&root, &["--stale-waivers"]);
    assert_eq!(audit.status.code(), Some(1), "{audit:?}");
    let stdout = String::from_utf8_lossy(&audit.stdout);
    assert!(
        stdout.contains("crates/m/src/lib.rs:6:W0-stale-waiver:"),
        "{stdout}"
    );
    // A tree with only load-bearing waivers audits clean.
    let clean = check(&exitcase("clean"), &["--stale-waivers"]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    // The audit honors --json like the ordinary check.
    let json = check(&root, &["--stale-waivers", "--json"]);
    assert_eq!(json.status.code(), Some(1), "{json:?}");
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"rule\": \"W0-stale-waiver\""), "{stdout}");
}

#[test]
fn pass_selection_limits_the_rules() {
    // Token-only: the L2 hit remains, the interprocedural T2 twin is gone.
    let out = check(&exitcase("violation"), &["--passes", "token"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L2-panic-free"), "{stdout}");
    assert!(!stdout.contains("T2-panic-reach"), "{stdout}");
    // Bad pass names are an internal error, not a silent no-op.
    let bad = check(&exitcase("clean"), &["--passes", "tokn"]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
}

//! Contract tests for the interprocedural passes (T1/T2/T3) over in-memory
//! mini-workspaces, pinning exact diagnostics *including the rendered call
//! chain*. The chain text is part of the linter's interface — it is what a
//! developer follows to decide where to fix or where to place a barrier —
//! so a resolution change that reroutes or truncates a chain must fail here.

use socl_lint::engine::{lint_files, Passes};
use socl_lint::Rule;

fn taint_only() -> Passes {
    Passes::from_list("taint").expect("pass list parses")
}

fn files(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// T1: a wall-clock read three private hops below a pub entry point is
/// reported at the source, with the full chain from the entry point.
#[test]
fn t1_multi_hop_chain_is_pinned() {
    let ws = files(&[(
        "crates/model/src/sched.rs",
        "pub fn plan() -> u64 { order() }\n\
         fn order() -> u64 { stamp() }\n\
         fn stamp() -> u64 {\n\
             let t = std::time::Instant::now();\n\
             t.elapsed().as_millis() as u64\n\
         }\n",
    )]);
    let diags = lint_files(&ws, &taint_only());
    let t1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::T1NondetTaint)
        .collect();
    assert_eq!(t1.len(), 1, "diags: {diags:?}");
    assert_eq!(t1[0].file, "crates/model/src/sched.rs");
    assert_eq!(t1[0].line, 4);
    assert!(
        t1[0].message.contains(
            "call chain: socl_model::sched::plan -> socl_model::sched::order \
             -> socl_model::sched::stamp"
        ),
        "chain text changed: {}",
        t1[0].message
    );
}

/// T1 across files: the entry point lives in one module, the source in
/// another, connected by a `use` import — resolution must cross the file
/// boundary or the chain silently disappears.
#[test]
fn t1_cross_file_chain_is_pinned() {
    let ws = files(&[
        (
            "crates/model/src/api.rs",
            "use crate::clockio::read_clock;\n\
             pub fn api_entry() -> u64 { read_clock() }\n",
        ),
        (
            "crates/model/src/clockio.rs",
            "pub(crate) fn read_clock() -> u64 {\n\
                 std::time::SystemTime::now();\n\
                 0\n\
             }\n",
        ),
    ]);
    let diags = lint_files(&ws, &taint_only());
    let t1: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::T1NondetTaint)
        .collect();
    assert_eq!(t1.len(), 1, "diags: {diags:?}");
    assert_eq!(t1[0].file, "crates/model/src/clockio.rs");
    assert_eq!(t1[0].line, 2);
    assert!(
        t1[0]
            .message
            .contains("call chain: socl_model::api::api_entry -> socl_model::clockio::read_clock"),
        "chain text changed: {}",
        t1[0].message
    );
}

/// T2: a panic three hops below a pub fn reports the full chain; a sibling
/// pub fn that never reaches the panic stays silent.
#[test]
fn t2_three_hop_panic_chain_is_pinned() {
    let ws = files(&[(
        "crates/core/src/depths.rs",
        "pub fn solve() -> f64 { step() }\n\
         pub fn inspect() -> f64 { 0.0 }\n\
         fn step() -> f64 { leaf(1) }\n\
         fn leaf(n: usize) -> f64 {\n\
             let v: Vec<f64> = vec![0.0; n];\n\
             *v.first().unwrap()\n\
         }\n",
    )]);
    let diags = lint_files(&ws, &taint_only());
    let t2: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::T2PanicReach)
        .collect();
    assert_eq!(t2.len(), 1, "diags: {diags:?}");
    assert_eq!(t2[0].line, 6);
    assert!(
        t2[0].message.contains(
            "call chain: socl_core::depths::solve -> socl_core::depths::step \
             -> socl_core::depths::leaf"
        ),
        "chain text changed: {}",
        t2[0].message
    );
    assert!(
        !t2[0].message.contains("inspect"),
        "the panic-free sibling must not appear in the chain: {}",
        t2[0].message
    );
}

/// A waiver at the *source* line (including the legacy `L2-panic-free` rule
/// id) silences the whole chain — the documented "waiver doubles as taint
/// barrier" contract.
#[test]
fn source_line_waiver_silences_the_chain() {
    let ws = files(&[(
        "crates/core/src/waived.rs",
        "pub fn entry() -> f64 { helper() }\n\
         fn helper() -> f64 {\n\
             // LINT-ALLOW(L2-panic-free): index 0 exists by construction.\n\
             *vec![1.0].first().unwrap()\n\
         }\n",
    )]);
    let diags = lint_files(&ws, &taint_only());
    assert!(
        diags.is_empty(),
        "source-line waiver must act as a barrier: {diags:?}"
    );
}

/// A waiver at a *call edge* severs propagation through that edge only:
/// the waived entry point is clean, an unwaived entry point still reports.
#[test]
fn call_edge_waiver_severs_only_that_edge() {
    let common = "fn risky() -> f64 { *vec![1.0].first().unwrap() }\n";
    let waived = format!(
        "pub fn guarded() -> f64 {{\n\
             // LINT-ALLOW(T2-panic-reach): input validated one frame up.\n\
             risky()\n\
         }}\n\
         pub fn unguarded() -> f64 {{ risky() }}\n\
         {common}"
    );
    let diags = lint_files(
        &files(&[("crates/core/src/edges.rs", &waived)]),
        &taint_only(),
    );
    let t2: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::T2PanicReach)
        .collect();
    assert_eq!(t2.len(), 1, "diags: {diags:?}");
    assert!(
        t2[0].message.contains("socl_core::edges::unguarded"),
        "only the unguarded entry point should report: {}",
        t2[0].message
    );
    assert!(!t2[0].message.contains("socl_core::edges::guarded"));
}

/// T3: the units pass pins both the mixed-dimension addition and the
/// dimensionally wrong division on covered latency code.
#[test]
fn t3_unit_diagnostics_are_pinned() {
    let src = "pub fn total_delay(d_in_s: f64, r_gb: f64, link_gbps: f64, cpu_hz: f64) -> f64 {\n\
                   let transfer_s = r_gb / link_gbps;\n\
                   let bad_sum = d_in_s + r_gb;\n\
                   let bad_div = r_gb / cpu_hz;\n\
                   d_in_s + transfer_s\n\
               }\n";
    let units = Passes::from_list("units").expect("pass list parses");
    let diags = lint_files(&files(&[("crates/model/src/latency.rs", src)]), &units);
    let t3: Vec<(usize, &str)> = diags
        .iter()
        .filter(|d| d.rule == Rule::T3Units)
        .map(|d| (d.line, d.message.as_str()))
        .collect();
    assert_eq!(t3.len(), 2, "diags: {diags:?}");
    assert_eq!(t3[0].0, 3);
    assert!(
        t3[0].1.contains("combines s with GB"),
        "mixed-addition message changed: {}",
        t3[0].1
    );
    // GB divided by a frequency is never a declared quantity.
    assert_eq!(t3[1].0, 4, "diags: {diags:?}");
}

/// The taint passes skip bins, benches, and test files entirely: the same
/// tainted source in a `main.rs` produces nothing.
#[test]
fn bins_are_outside_the_taint_domain() {
    let ws = files(&[(
        "crates/cli/src/main.rs",
        "pub fn main() { std::time::Instant::now(); }\n",
    )]);
    let diags = lint_files(&ws, &taint_only());
    assert!(diags.is_empty(), "bins are exempt: {diags:?}");
}

/// Structural parse failure surfaces as `P0-parse` (and blinds the
/// interprocedural passes for that file, which the message says).
#[test]
fn parse_failure_is_reported_as_p0() {
    let ws = files(&[(
        "crates/model/src/broken.rs",
        "pub fn truncated() {\n    let x = 1;\n",
    )]);
    let diags = lint_files(&ws, &taint_only());
    let p0: Vec<_> = diags.iter().filter(|d| d.rule == Rule::P0Parse).collect();
    assert_eq!(p0.len(), 1, "diags: {diags:?}");
    assert!(
        p0[0].message.contains("interprocedural passes cannot see"),
        "{}",
        p0[0].message
    );
}

//! Model check of the `socl_net::par` worker-pool protocol.
//!
//! The `loom` crate is the usual tool for this, but it is not available in
//! this build environment, so the pool's concurrency protocol is model
//! checked in-tree instead: the protocol is small enough (one atomic
//! fetch-add cursor, one mutex-guarded part list, scoped join) that its
//! schedule space for small configurations can be enumerated *exhaustively*.
//!
//! Soundness of the model: the pool touches shared state at exactly two
//! kinds of points — the `fetch_add` on the chunk cursor (an atomic RMW,
//! indivisible even under `Ordering::Relaxed`) and the mutex-guarded
//! `parts.push` (the lock is the only access path, so the critical section
//! is observably one step). Everything between those points is thread-local.
//! A worker is therefore the loop `Fetch → (Push | Done)`, and every real
//! execution corresponds to one interleaving of those atomic steps. The
//! model explores *all* such interleavings via DFS and asserts, at every
//! terminal state, the invariants the pool's correctness rests on:
//!
//! 1. claimed chunk starts are unique and chunk-aligned (no double claim),
//! 2. the pushed chunks tile `0..n` exactly (no loss, no overlap),
//! 3. sort-by-start reassembly reproduces the serial output,
//! 4. every schedule terminates (the cursor is strictly monotone).
//!
//! What this cannot cover — and `loom` would — is weak-memory reordering of
//! *other* locations around the relaxed cursor. The protocol is insensitive
//! to that by construction: no thread reads data another thread wrote
//! without the mutex (release/acquire) or the scope join in between. The
//! `real_pool_*` tests at the bottom exercise the actual implementation
//! against the same invariants under the OS scheduler.

use socl_net::par::{par_map_indexed_with, par_map_with};

/// Per-worker program counter over the protocol's atomic steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Pc {
    /// About to `fetch_add` the cursor.
    Fetch,
    /// Claimed `(start, end)`, about to lock and push it.
    Push(usize, usize),
    /// Observed `start >= n` and exited.
    Done,
}

/// Shared + per-thread state of the modeled pool.
#[derive(Clone)]
struct Model {
    n: usize,
    chunk: usize,
    cursor: usize,
    /// Pushed parts in push order: `(start, end)`.
    parts: Vec<(usize, usize)>,
    pc: Vec<Pc>,
}

impl Model {
    fn new(n: usize, threads: usize, chunk: usize) -> Self {
        Model {
            n,
            chunk,
            cursor: 0,
            parts: Vec::new(),
            pc: vec![Pc::Fetch; threads],
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.pc.len())
            .filter(|&t| self.pc[t] != Pc::Done)
            .collect()
    }

    /// Execute thread `t`'s next atomic step.
    fn step(&mut self, t: usize) {
        match self.pc[t] {
            Pc::Fetch => {
                let start = self.cursor;
                self.cursor += self.chunk; // atomic RMW: indivisible
                if start >= self.n {
                    self.pc[t] = Pc::Done;
                } else {
                    self.pc[t] = Pc::Push(start, (start + self.chunk).min(self.n));
                }
            }
            Pc::Push(start, end) => {
                self.parts.push((start, end)); // mutex: one observable step
                self.pc[t] = Pc::Fetch;
            }
            Pc::Done => unreachable!("done threads are never scheduled"),
        }
    }

    /// Invariants that must hold in every terminal state.
    fn check_terminal(&self) {
        // 1. Unique, aligned claims.
        let mut starts: Vec<usize> = self.parts.iter().map(|&(s, _)| s).collect();
        let pushed = starts.len();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(
            starts.len(),
            pushed,
            "duplicate chunk claim: {:?}",
            self.parts
        );
        for &(s, e) in &self.parts {
            assert_eq!(s % self.chunk, 0, "unaligned claim {s}");
            assert!(s < self.n && e <= self.n && s < e, "bad claim ({s}, {e})");
        }
        // 2–3. Sorted reassembly tiles 0..n exactly (the serial output).
        let mut sorted = self.parts.clone();
        sorted.sort_by_key(|&(s, _)| s);
        let mut next = 0usize;
        for &(s, e) in &sorted {
            assert_eq!(s, next, "gap or overlap at {s} (expected {next})");
            next = e;
        }
        assert_eq!(next, self.n, "chunks do not cover 0..{}", self.n);
        // 4. Bounded overshoot: the cursor advances once per successful
        // claim (chunk-aligned coverage of 0..n) plus at most one failed
        // fetch per thread.
        let claimed = self.n.div_ceil(self.chunk) * self.chunk;
        assert!(self.cursor <= claimed + self.pc.len() * self.chunk);
    }
}

/// Exhaustive DFS over all schedules; returns the number of terminal states
/// visited (distinct complete schedules).
fn explore(m: &Model, budget: &mut usize) -> usize {
    let runnable = m.runnable();
    if runnable.is_empty() {
        m.check_terminal();
        return 1;
    }
    assert!(*budget > 0, "schedule-space budget exhausted");
    *budget -= 1;
    let mut terminals = 0;
    for t in runnable {
        let mut next = m.clone();
        next.step(t);
        terminals += explore(&next, budget);
    }
    terminals
}

#[test]
fn exhaustive_small_configs() {
    // Every (n, threads, chunk) small enough to enumerate completely.
    let mut total = 0usize;
    for n in 0..=4 {
        for threads in 1..=3 {
            for chunk in 1..=2 {
                let mut budget = 5_000_000;
                total += explore(&Model::new(n, threads, chunk), &mut budget);
            }
        }
    }
    // The explorer must actually branch: a broken scheduler that only ever
    // runs thread 0 would visit exactly one schedule per config.
    assert!(total > 10_000, "only {total} schedules explored");
}

#[test]
fn exhaustive_skewed_chunking() {
    // chunk larger than n, chunk not dividing n, single-item tails.
    for (n, threads, chunk) in [(1, 3, 4), (5, 2, 3), (4, 2, 4), (3, 3, 2)] {
        let mut budget = 5_000_000;
        let count = explore(&Model::new(n, threads, chunk), &mut budget);
        assert!(count >= 1);
    }
}

/// Deterministic LCG so the randomized walk is reproducible (no
/// `thread_rng` — rule L3 bans ambient randomness in this crate's tests
/// feeding CI).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound
    }
}

#[test]
fn random_walks_on_larger_configs() {
    // Too big to enumerate; sample many schedules instead. CI's nightly
    // pool-model job raises the walk count via POOL_MODEL_WALKS.
    let walks: usize = std::env::var("POOL_MODEL_WALKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    for (n, threads, chunk) in [(16, 4, 2), (33, 5, 3), (64, 8, 8)] {
        let mut rng = Lcg(0x5eed ^ (n as u64) << 16 ^ (threads as u64));
        for _ in 0..walks {
            let mut m = Model::new(n, threads, chunk);
            loop {
                let runnable = m.runnable();
                if runnable.is_empty() {
                    break;
                }
                let pick = runnable[rng.next(runnable.len())];
                m.step(pick);
            }
            m.check_terminal();
        }
    }
}

// ---------------------------------------------------------------------------
// The real pool, driven under the OS scheduler against the same contract.
// ---------------------------------------------------------------------------

#[test]
fn real_pool_matches_serial_for_all_thread_counts() {
    for n in [0usize, 1, 2, 3, 7, 64, 257, 1000] {
        let serial: Vec<u64> = (0..n)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 4, 5, 8, 16, 33] {
            let par = par_map_indexed_with(n, threads, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(par, serial, "n={n} threads={threads}");
        }
    }
}

#[test]
fn real_pool_balances_skewed_work_deterministically() {
    // Per-item cost varies by 100x; chunk claiming must still reassemble in
    // index order, bit-identically to serial.
    let items: Vec<usize> = (0..97).collect();
    let work = |&i: &usize| -> f64 {
        let spins = if i % 7 == 0 { 10_000 } else { 100 };
        let mut acc = i as f64;
        for k in 1..spins {
            acc += 1.0 / (k as f64 * (i + 1) as f64);
        }
        acc
    };
    let serial: Vec<f64> = items.iter().map(work).collect();
    for threads in [2, 4, 8] {
        for _ in 0..8 {
            let got = par_map_with(&items, threads, work);
            // Bit-identical, not approximately equal: determinism contract.
            assert!(
                got.iter()
                    .zip(&serial)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
    }
}

#[test]
fn real_pool_propagates_worker_panics() {
    let result = std::panic::catch_unwind(|| {
        par_map_indexed_with(64, 4, |i| {
            if i == 37 {
                panic!("worker failure must surface at join");
            }
            i
        })
    });
    assert!(result.is_err(), "panic in a worker was swallowed");
}

//! K-shortest loopless paths (Yen's algorithm) under the latency metric.
//!
//! Multipath alternatives matter for two of this repository's consumers:
//! the contention-aware router (an overloaded shortest path needs a ranked
//! list of detours) and failure analysis (how much worse is the network when
//! the best path dies). Paths are loopless and returned in non-decreasing
//! weight order.

use crate::graph::{EdgeNetwork, NodeId};
use crate::paths::{PathMetric, ShortestPaths};

/// One path with its accumulated latency weight (`Σ 1/b`, seconds per GB).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPath {
    pub nodes: Vec<NodeId>,
    pub weight: f64,
}

/// Dijkstra restricted to a masked graph: `node_banned[v]` removes `v`,
/// `edge_banned` removes specific directed (from, to) hops.
fn shortest_masked(
    net: &EdgeNetwork,
    source: NodeId,
    target: NodeId,
    node_banned: &[bool],
    edge_banned: &[(NodeId, NodeId)],
) -> Option<WeightedPath> {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    if node_banned[source.idx()] || node_banned[target.idx()] {
        return None;
    }
    dist[source.idx()] = 0.0;
    // Simple O(V²) scan — the masked calls are small and frequent, and the
    // networks are ≤ a few dozen nodes.
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for v in 0..n {
            if !done[v] && !node_banned[v] && dist[v] < best {
                best = dist[v];
                u = v;
            }
        }
        if u == usize::MAX {
            break;
        }
        done[u] = true;
        let un = NodeId(u as u32);
        for nb in net.neighbors(un) {
            let v = nb.node.idx();
            if done[v] || node_banned[v] {
                continue;
            }
            if edge_banned.contains(&(un, nb.node)) {
                continue;
            }
            let cand = dist[u] + 1.0 / nb.rate;
            if cand < dist[v] {
                dist[v] = cand;
                pred[v] = Some(un);
            }
        }
    }
    if dist[target.idx()].is_infinite() {
        return None;
    }
    let mut nodes = vec![target];
    let mut cur = target;
    while let Some(p) = pred[cur.idx()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    Some(WeightedPath {
        weight: dist[target.idx()],
        nodes,
    })
}

/// Yen's algorithm: up to `k` loopless latency-shortest paths `source → target`.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct loopless routes. `source == target` yields the single trivial
/// path.
pub fn k_shortest_paths(
    net: &EdgeNetwork,
    source: NodeId,
    target: NodeId,
    k: usize,
) -> Vec<WeightedPath> {
    if k == 0 {
        return Vec::new();
    }
    if source == target {
        return vec![WeightedPath {
            nodes: vec![source],
            weight: 0.0,
        }];
    }
    let sp = ShortestPaths::dijkstra(net, source, PathMetric::Latency);
    let Some(first_nodes) = sp.path_to(target) else {
        return Vec::new();
    };
    let mut accepted = vec![WeightedPath {
        weight: sp.latency_weight(target),
        nodes: first_nodes,
    }];
    let mut candidates: Vec<WeightedPath> = Vec::new();
    let no_nodes = vec![false; net.node_count()];

    while accepted.len() < k {
        let Some(last) = accepted.last().cloned() else {
            break;
        };
        // Each prefix of the last accepted path spawns a spur.
        for i in 0..last.nodes.len() - 1 {
            let spur = last.nodes[i];
            let root = &last.nodes[..=i];

            // Ban edges leaving the spur node along any accepted path that
            // shares this root.
            let mut edge_banned: Vec<(NodeId, NodeId)> = Vec::new();
            for p in &accepted {
                if p.nodes.len() > i && p.nodes[..=i] == *root {
                    edge_banned.push((p.nodes[i], p.nodes[i + 1]));
                }
            }
            // Ban the root's interior nodes (looplessness).
            let mut node_banned = no_nodes.clone();
            for &v in &root[..i] {
                node_banned[v.idx()] = true;
            }

            if let Some(tail) = shortest_masked(net, spur, target, &node_banned, &edge_banned) {
                // Root weight.
                let mut weight = tail.weight;
                for w in root.windows(2) {
                    // Root edges come from previously accepted paths, so the
                    // link exists; a missing/zero rate degrades to +inf
                    // weight, which sorts the candidate last instead of
                    // panicking.
                    weight += 1.0 / net.direct_rate(w[0], w[1]).unwrap_or(0.0);
                }
                let mut nodes = root[..i].to_vec();
                nodes.extend(tail.nodes);
                let cand = WeightedPath { nodes, weight };
                if !accepted.contains(&cand) && !candidates.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
        // Promote the best candidate.
        candidates.sort_by(|a, b| a.weight.total_cmp(&b.weight));
        if candidates.is_empty() {
            break;
        }
        accepted.push(candidates.remove(0));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeServer, LinkParams};
    use crate::topology::TopologyConfig;

    /// Diamond with three s→t routes of distinct weights.
    fn diamond() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(100.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(100.0));
        net.add_link(NodeId(0), NodeId(3), LinkParams::from_rate(10.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(5.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(5.0));
        net
    }

    #[test]
    fn finds_all_three_routes_in_order() {
        let net = diamond();
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(3), 5);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!((paths[0].weight - 0.02).abs() < 1e-12);
        assert_eq!(paths[1].nodes, vec![NodeId(0), NodeId(3)]);
        assert!((paths[1].weight - 0.1).abs() < 1e-12);
        assert_eq!(paths[2].nodes, vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert!((paths[2].weight - 0.4).abs() < 1e-12);
    }

    #[test]
    fn k_caps_the_result() {
        let net = diamond();
        assert_eq!(k_shortest_paths(&net, NodeId(0), NodeId(3), 2).len(), 2);
        assert_eq!(k_shortest_paths(&net, NodeId(0), NodeId(3), 0).len(), 0);
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let mut net = diamond();
        let lone = net.push_server(EdgeServer::new(1.0, 1.0));
        let same = k_shortest_paths(&net, NodeId(0), NodeId(0), 3);
        assert_eq!(same.len(), 1);
        assert_eq!(same[0].weight, 0.0);
        assert!(k_shortest_paths(&net, NodeId(0), lone, 3).is_empty());
    }

    #[test]
    fn paths_are_loopless_and_weight_sorted() {
        for seed in 0..5 {
            let net = TopologyConfig::paper(12).build(seed);
            let paths = k_shortest_paths(&net, NodeId(0), NodeId(11), 6);
            for w in paths.windows(2) {
                assert!(w[0].weight <= w[1].weight + 1e-12);
            }
            for p in &paths {
                let mut seen = p.nodes.clone();
                seen.sort();
                seen.dedup();
                assert_eq!(seen.len(), p.nodes.len(), "loop in {:?}", p.nodes);
                // Edge-validity.
                for w in p.nodes.windows(2) {
                    assert!(net.direct_rate(w[0], w[1]).is_some());
                }
            }
        }
    }

    #[test]
    fn first_path_matches_dijkstra() {
        for seed in 0..5 {
            let net = TopologyConfig::paper(10).build(seed);
            let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Latency);
            let paths = k_shortest_paths(&net, NodeId(0), NodeId(7), 1);
            assert_eq!(paths.len(), 1);
            assert!((paths[0].weight - sp.latency_weight(NodeId(7))).abs() < 1e-9);
        }
    }

    #[test]
    fn all_returned_paths_are_distinct() {
        let net = TopologyConfig::paper(10).build(3);
        let paths = k_shortest_paths(&net, NodeId(0), NodeId(9), 8);
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
    }
}

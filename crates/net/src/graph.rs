//! The substrate edge network `G(V, L)`.
//!
//! Nodes are edge servers with a computing capability `c(v_k)` (GFLOP/s), a
//! storage capacity `Φ(v_k)` (abstract storage units) and a planar position
//! (used only by topology generators and mobility models). Links are
//! undirected and carry the parameters of the Shannon-capacity rate model.

use serde::{Deserialize, Serialize};

/// Dense identifier of an edge server (`v_k` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An edge server `v_k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    /// Computing capability `c(v_k)` in GFLOP/s.
    pub compute_gflops: f64,
    /// Storage capacity `Φ(v_k)` in abstract storage units.
    pub storage_units: f64,
    /// Planar position in meters (topology/mobility only; the algorithms
    /// never read positions directly).
    pub position: (f64, f64),
}

impl EdgeServer {
    /// A server with the given compute and storage, positioned at the origin.
    pub fn new(compute_gflops: f64, storage_units: f64) -> Self {
        Self {
            compute_gflops,
            storage_units,
            position: (0.0, 0.0),
        }
    }
}

/// Physical-layer parameters of a link, from which the effective transmission
/// rate `b(l) = B · log2(1 + γ·g/N)` is derived (Section III.C, refs [20]-[22]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Raw bandwidth `B(l_{i,j})` in GB/s.
    pub bandwidth: f64,
    /// Transmission power `γ` of the sending edge server (W).
    pub tx_power: f64,
    /// Channel gain `g_{i,j}` (dimensionless).
    pub channel_gain: f64,
    /// Noise power `N` (W).
    pub noise: f64,
}

impl LinkParams {
    /// Effective transmission rate `b(l)` in GB/s.
    ///
    /// Clamped below by a tiny positive epsilon so latency computations never
    /// divide by zero even for pathological parameters.
    #[inline]
    pub fn rate(&self) -> f64 {
        let snr = (self.tx_power * self.channel_gain / self.noise).max(0.0);
        (self.bandwidth * (1.0 + snr).log2()).max(1e-12)
    }

    /// A link whose effective rate is exactly `rate` GB/s (SNR = 1 so
    /// `log2(1+1) = 1`). Convenient for tests and synthetic topologies that
    /// specify rates directly.
    pub fn from_rate(rate: f64) -> Self {
        Self {
            bandwidth: rate,
            tx_power: 1.0,
            channel_gain: 1.0,
            noise: 1.0,
        }
    }
}

/// An undirected physical link `l_{k,k'}` of the substrate network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub params: LinkParams,
}

impl Link {
    /// Effective transmission rate `b(l)` in GB/s.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.params.rate()
    }

    /// The endpoint that is not `n`. Panics if `n` is not an endpoint.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else {
            debug_assert_eq!(self.b, n);
            self.a
        }
    }
}

/// Compressed-sparse-row style adjacency entry.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    pub node: NodeId,
    /// Effective rate `b(l)` of the connecting link, GB/s.
    pub rate: f64,
    /// Index of the link in [`EdgeNetwork::links`].
    pub link: usize,
}

/// Reusable DFS state for [`EdgeNetwork::is_connected_masked`], so repeated
/// connectivity probes (one per candidate fault in the online simulator's
/// hot loop) allocate nothing after the first call.
#[derive(Debug, Clone, Default)]
pub struct ConnScratch {
    seen: Vec<bool>,
    stack: Vec<NodeId>,
}

impl ConnScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The substrate topology `G(V, L)` of the edge network.
///
/// Construction is additive (`add_node` / `add_link`); the adjacency structure
/// is maintained incrementally so reads are always consistent.
#[derive(Debug, Clone, Default)]
pub struct EdgeNetwork {
    servers: Vec<EdgeServer>,
    links: Vec<Link>,
    adjacency: Vec<Vec<Neighbor>>,
}

impl EdgeNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a network from servers and links in one shot.
    ///
    /// # Panics
    /// Panics if a link references an out-of-range node or is a self-loop.
    pub fn from_parts(servers: Vec<EdgeServer>, links: Vec<(NodeId, NodeId, LinkParams)>) -> Self {
        let mut net = Self::new();
        for s in servers {
            net.push_server(s);
        }
        for (a, b, p) in links {
            net.add_link(a, b, p);
        }
        net
    }

    /// Add an edge server, returning its id.
    pub fn push_server(&mut self, server: EdgeServer) -> NodeId {
        let id = NodeId(self.servers.len() as u32);
        self.servers.push(server);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected link between `a` and `b`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints. Parallel links are
    /// allowed (shortest paths simply pick the better one).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> usize {
        assert!(a != b, "self-loop on {a}");
        assert!(a.idx() < self.servers.len(), "node {a} out of range");
        assert!(b.idx() < self.servers.len(), "node {b} out of range");
        let idx = self.links.len();
        let link = Link { a, b, params };
        let rate = link.rate();
        self.links.push(link);
        self.adjacency[a.idx()].push(Neighbor {
            node: b,
            rate,
            link: idx,
        });
        self.adjacency[b.idx()].push(Neighbor {
            node: a,
            rate,
            link: idx,
        });
        idx
    }

    /// Number of edge servers `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of physical links `|L|`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.servers.len() as u32).map(NodeId)
    }

    /// The server record for `n`.
    #[inline]
    pub fn server(&self, n: NodeId) -> &EdgeServer {
        &self.servers[n.idx()]
    }

    /// Mutable server record (used by failure injection in the simulator).
    #[inline]
    pub fn server_mut(&mut self, n: NodeId) -> &mut EdgeServer {
        &mut self.servers[n.idx()]
    }

    /// Computing capability `c(v_k)` in GFLOP/s.
    #[inline]
    pub fn compute_gflops(&self, n: NodeId) -> f64 {
        self.servers[n.idx()].compute_gflops
    }

    /// Storage capacity `Φ(v_k)`.
    #[inline]
    pub fn storage(&self, n: NodeId) -> f64 {
        self.servers[n.idx()].storage_units
    }

    /// All links.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of `n` with link rates.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[Neighbor] {
        &self.adjacency[n.idx()]
    }

    /// Node degree `H(v)` — the number of direct connections, as used by the
    /// Theorem 1 candidate-node filter (`H(v) > 2`).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.idx()].len()
    }

    /// Effective rate of the direct link between `a` and `b`, if one exists.
    /// With parallel links, returns the fastest.
    pub fn direct_rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.adjacency[a.idx()]
            .iter()
            .filter(|nb| nb.node == b)
            .map(|nb| nb.rate)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.servers.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.servers.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for nb in self.neighbors(n) {
                if !seen[nb.node.idx()] {
                    seen[nb.node.idx()] = true;
                    count += 1;
                    stack.push(nb.node);
                }
            }
        }
        count == self.servers.len()
    }

    /// [`is_connected`](Self::is_connected) on the subgraph keeping only
    /// links with `alive[idx]` true, additionally dropping `extra_dead`
    /// (pass `usize::MAX` for none) — without building the subgraph.
    /// Reusable `scratch` keeps repeated checks (the simulator probes one
    /// candidate link per fault event) allocation-free after the first
    /// call (rule `A1-hot-alloc`). Links whose index is beyond `alive` are
    /// treated as alive.
    pub fn is_connected_masked(
        &self,
        alive: &[bool],
        extra_dead: usize,
        scratch: &mut ConnScratch,
    ) -> bool {
        if self.servers.is_empty() {
            return true;
        }
        scratch.seen.clear();
        scratch.seen.resize(self.servers.len(), false);
        scratch.stack.clear();
        scratch.stack.push(NodeId(0));
        scratch.seen[0] = true;
        let mut count = 1;
        while let Some(n) = scratch.stack.pop() {
            for nb in self.neighbors(n) {
                let dead = nb.link == extra_dead || alive.get(nb.link) == Some(&false);
                if !dead && !scratch.seen[nb.node.idx()] {
                    scratch.seen[nb.node.idx()] = true;
                    count += 1;
                    scratch.stack.push(nb.node);
                }
            }
        }
        count == self.servers.len()
    }

    /// A copy of this network keeping only links with `alive[idx]` true.
    /// Servers (and their ids) are preserved; masked links are absent, so
    /// link indices are *not* comparable across the copy.
    pub fn masked_clone(&self, alive: &[bool]) -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for s in &self.servers {
            net.push_server(s.clone());
        }
        for (idx, link) in self.links.iter().enumerate() {
            if alive.get(idx).copied().unwrap_or(true) {
                net.add_link(link.a, link.b, link.params);
            }
        }
        net
    }

    /// Total storage across all servers, `Σ_k Φ(v_k)` — the left side of the
    /// aggregate-capacity test in Algorithm 5.
    pub fn total_storage(&self) -> f64 {
        self.servers.iter().map(|s| s.storage_units).sum()
    }

    /// Euclidean distance between two servers' positions (meters).
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pa = self.servers[a.idx()].position;
        let pb = self.servers[b.idx()].position;
        ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt()
    }

    /// Override the effective rate of link `idx` as seen by shortest-path
    /// computations (both adjacency directions). A rate of `0.0` masks the
    /// link out entirely: Dijkstra skips zero-rate edges, so a masked network
    /// is path-identical to one rebuilt without the link — which is what lets
    /// the incremental APSP cache model crashes and degradations without
    /// reallocating the topology.
    pub fn override_link_rate(&mut self, idx: usize, rate: f64) {
        let Link { a, b, .. } = self.links[idx];
        for nb in self.adjacency[a.idx()].iter_mut() {
            if nb.link == idx {
                nb.rate = rate;
            }
        }
        for nb in self.adjacency[b.idx()].iter_mut() {
            if nb.link == idx {
                nb.rate = rate;
            }
        }
    }

    /// Current effective rate of link `idx` as seen by shortest paths
    /// (respects any [`override_link_rate`](Self::override_link_rate)).
    pub fn effective_rate(&self, idx: usize) -> f64 {
        let a = self.links[idx].a;
        self.adjacency[a.idx()]
            .iter()
            .find(|nb| nb.link == idx)
            .map(|nb| nb.rate)
            .unwrap_or(0.0)
    }

    /// Structural fingerprint of the topology: node count, link endpoints and
    /// current *effective* rates (FNV-1a over their bit patterns). Two
    /// networks with equal fingerprints produce identical shortest paths, so
    /// caches keyed on it (e.g. memoized virtual graphs) survive across slots
    /// whose topology did not change.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(PRIME);
        };
        mix(&mut h, self.servers.len() as u64);
        for (idx, l) in self.links.iter().enumerate() {
            mix(&mut h, u64::from(l.a.0));
            mix(&mut h, u64::from(l.b.0));
            mix(&mut h, self.effective_rate(idx).to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> EdgeNetwork {
        // v0 -10- v1 -20- v2
        let mut net = EdgeNetwork::new();
        let a = net.push_server(EdgeServer::new(10.0, 4.0));
        let b = net.push_server(EdgeServer::new(10.0, 4.0));
        let c = net.push_server(EdgeServer::new(10.0, 4.0));
        net.add_link(a, b, LinkParams::from_rate(10.0));
        net.add_link(b, c, LinkParams::from_rate(20.0));
        net
    }

    #[test]
    fn from_rate_roundtrips() {
        let p = LinkParams::from_rate(42.5);
        assert!((p.rate() - 42.5).abs() < 1e-9);
    }

    #[test]
    fn shannon_rate_matches_formula() {
        let p = LinkParams {
            bandwidth: 20.0,
            tx_power: 2.0,
            channel_gain: 3.0,
            noise: 1.5,
        };
        let expected = 20.0 * (1.0 + 2.0 * 3.0 / 1.5_f64).log2();
        assert!((p.rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn rate_is_never_zero() {
        let p = LinkParams {
            bandwidth: 0.0,
            tx_power: 0.0,
            channel_gain: 0.0,
            noise: 1.0,
        };
        assert!(p.rate() > 0.0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let net = line3();
        assert_eq!(net.degree(NodeId(0)), 1);
        assert_eq!(net.degree(NodeId(1)), 2);
        assert_eq!(net.degree(NodeId(2)), 1);
        assert_eq!(net.direct_rate(NodeId(0), NodeId(1)), Some(10.0));
        assert_eq!(net.direct_rate(NodeId(1), NodeId(0)), Some(10.0));
        assert_eq!(net.direct_rate(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn parallel_links_pick_fastest() {
        let mut net = line3();
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0));
        assert_eq!(net.direct_rate(NodeId(0), NodeId(1)), Some(50.0));
    }

    #[test]
    fn connectivity_detects_islands() {
        let mut net = line3();
        assert!(net.is_connected());
        net.push_server(EdgeServer::new(5.0, 4.0));
        assert!(!net.is_connected());
    }

    #[test]
    fn link_other_endpoint() {
        let net = line3();
        let l = net.links()[0];
        assert_eq!(l.other(NodeId(0)), NodeId(1));
        assert_eq!(l.other(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut net = line3();
        net.add_link(NodeId(0), NodeId(0), LinkParams::from_rate(1.0));
    }

    #[test]
    fn total_storage_sums() {
        let net = line3();
        assert!((net.total_storage() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn override_masks_both_directions_and_restores() {
        let mut net = line3();
        assert_eq!(net.effective_rate(0), 10.0);
        net.override_link_rate(0, 0.0);
        assert_eq!(net.effective_rate(0), 0.0);
        assert!(net.neighbors(NodeId(0)).iter().all(|nb| nb.rate == 0.0));
        assert!(net
            .neighbors(NodeId(1))
            .iter()
            .find(|nb| nb.link == 0)
            .is_some_and(|nb| nb.rate == 0.0));
        net.override_link_rate(0, 10.0);
        assert_eq!(net.effective_rate(0), 10.0);
        assert_eq!(net.direct_rate(NodeId(0), NodeId(1)), Some(10.0));
    }

    #[test]
    fn fingerprint_tracks_effective_rates() {
        let mut net = line3();
        let base = net.fingerprint();
        assert_eq!(base, line3().fingerprint());
        net.override_link_rate(1, 2.5);
        let degraded = net.fingerprint();
        assert_ne!(base, degraded);
        net.override_link_rate(1, 20.0);
        assert_eq!(net.fingerprint(), base);
    }
}

//! What-if failure analysis: link and node criticality.
//!
//! Edge operators need to know which components the latency structure hangs
//! on. For every single link (or node) failure this module re-evaluates the
//! all-pairs latency weights — through the incremental [`ApspCache`], which
//! masks the component, repairs only the affected source rows, and restores
//! it, instead of rebuilding the topology and the full matrix per candidate —
//! and reports:
//!
//! * whether the failure partitions the network,
//! * the *stretch*: mean ratio of post-failure to pre-failure pairwise
//!   latency weight over still-connected pairs (1.0 = no impact),
//! * the worst-hit pair.
//!
//! Rankings feed topology design (where to add redundancy) and pair with the
//! simulator's failure injection (which only fails non-critical components —
//! this module is how you find the critical ones).

use crate::graph::{EdgeNetwork, NodeId};
use crate::incremental::ApspCache;
use crate::paths::AllPairs;

/// Impact of removing one component.
#[derive(Debug, Clone)]
pub struct FailureImpact {
    /// Human-readable component tag ("link v0-v3", "node v2").
    pub component: String,
    /// True when the removal disconnects some pair.
    pub partitions: bool,
    /// Mean latency stretch over pairs connected both before and after
    /// (≥ 1.0; 1.0 means the component was latency-irrelevant).
    pub mean_stretch: f64,
    /// Maximum stretch over those pairs.
    pub max_stretch: f64,
}

/// Stretch statistics of `after` relative to `before`, ignoring pairs
/// involving `exclude` (used for node failures, where the dead node's own
/// pairs are meaningless).
fn stretch(
    net: &EdgeNetwork,
    before: &AllPairs,
    after: &AllPairs,
    exclude: Option<NodeId>,
) -> (bool, f64, f64) {
    let mut partitions = false;
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut max = 1.0f64;
    for a in net.node_ids() {
        for b in net.node_ids() {
            if a >= b || Some(a) == exclude || Some(b) == exclude {
                continue;
            }
            let w0 = before.latency_weight(a, b);
            let w1 = after.latency_weight(a, b);
            if w0.is_infinite() {
                continue; // was already unreachable
            }
            if w1.is_infinite() {
                partitions = true;
                continue;
            }
            let s = if w0 == 0.0 { 1.0 } else { w1 / w0 };
            sum += s;
            count += 1;
            max = max.max(s);
        }
    }
    let mean = if count == 0 { 1.0 } else { sum / count as f64 };
    (partitions, mean, max)
}

/// Impact of each single-link failure, most critical first (partitioning
/// failures sort above everything, then by mean stretch).
pub fn link_criticality(net: &EdgeNetwork) -> Vec<FailureImpact> {
    let mut cache = ApspCache::new(net);
    let before = cache.all_pairs().clone();
    let mut impacts: Vec<FailureImpact> = (0..net.link_count())
        .map(|idx| {
            let l = net.links()[idx];
            let base = cache.base_rate(idx);
            cache.set_link_rate(idx, 0.0);
            let (partitions, mean_stretch, max_stretch) =
                stretch(net, &before, cache.all_pairs(), None);
            cache.set_link_rate(idx, base);
            FailureImpact {
                component: format!("link {}-{}", l.a, l.b),
                partitions,
                mean_stretch,
                max_stretch,
            }
        })
        .collect();
    impacts.sort_by(|a, b| {
        b.partitions
            .cmp(&a.partitions)
            .then(b.mean_stretch.total_cmp(&a.mean_stretch))
    });
    impacts
}

/// Impact of each single-node failure, most critical first.
pub fn node_criticality(net: &EdgeNetwork) -> Vec<FailureImpact> {
    let mut cache = ApspCache::new(net);
    let before = cache.all_pairs().clone();
    let mut impacts: Vec<FailureImpact> = net
        .node_ids()
        .map(|k| {
            // The dead node keeps its vertex (indices stay stable) but all
            // its incident links are masked — same semantics as rebuilding
            // the topology without the node's links.
            cache.mask_node(k);
            let (partitions, mean_stretch, max_stretch) =
                stretch(net, &before, cache.all_pairs(), Some(k));
            cache.unmask_node(k);
            FailureImpact {
                component: format!("node {k}"),
                partitions,
                mean_stretch,
                max_stretch,
            }
        })
        .collect();
    impacts.sort_by(|a, b| {
        b.partitions
            .cmp(&a.partitions)
            .then(b.mean_stretch.total_cmp(&a.mean_stretch))
    });
    impacts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeServer, LinkParams};
    use crate::topology::TopologyConfig;

    /// Line v0 - v1 - v2 plus a redundant fast v0-v2 detour.
    fn net_with_detour() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0)); // 0
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(50.0)); // 1
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(10.0)); // 2
        net
    }

    #[test]
    fn redundant_topology_survives_any_single_link() {
        let net = net_with_detour();
        let impacts = link_criticality(&net);
        assert_eq!(impacts.len(), 3);
        assert!(impacts.iter().all(|i| !i.partitions));
        // Losing a fast 50 GB/s link forces detours: stretch > 1 somewhere.
        assert!(impacts[0].max_stretch > 1.0);
    }

    #[test]
    fn bridge_links_partition() {
        // Pure line: both links are bridges.
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(50.0));
        let impacts = link_criticality(&net);
        assert!(impacts.iter().all(|i| i.partitions));
    }

    #[test]
    fn cut_vertices_partition() {
        // v1 is the cut vertex of the line.
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(50.0));
        let impacts = node_criticality(&net);
        // Most critical first: node v1.
        assert_eq!(impacts[0].component, "node v1");
        assert!(impacts[0].partitions);
        // Leaves are harmless to the remaining pairs.
        assert!(!impacts[2].partitions);
    }

    #[test]
    fn irrelevant_link_has_unit_stretch() {
        let net = net_with_detour();
        let impacts = link_criticality(&net);
        // The slow detour link (v0-v2 at 10) never carries latency-optimal
        // traffic: its removal has stretch exactly 1.
        let detour = impacts
            .iter()
            .find(|i| i.component == "link v0-v2")
            .unwrap();
        assert!((detour.mean_stretch - 1.0).abs() < 1e-12);
        assert!((detour.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rankings_are_sorted_most_critical_first() {
        let net = TopologyConfig::paper(12).build(5);
        for impacts in [link_criticality(&net), node_criticality(&net)] {
            for w in impacts.windows(2) {
                let key = |i: &FailureImpact| (i.partitions as u8, i.mean_stretch);
                assert!(key(&w[0]).partial_cmp(&key(&w[1])).unwrap() != std::cmp::Ordering::Less);
            }
        }
    }

    #[test]
    fn masked_analysis_matches_explicit_removal() {
        // The incremental cache masks components instead of rebuilding the
        // topology; the reported impacts must match an explicit rebuild.
        let net = TopologyConfig::paper(14).build(21);
        let before = AllPairs::build(&net);
        let impacts = link_criticality(&net);
        for idx in 0..net.link_count() {
            let l = net.links()[idx];
            let mut reduced = EdgeNetwork::new();
            for k in net.node_ids() {
                reduced.push_server(net.server(k).clone());
            }
            for (j, link) in net.links().iter().enumerate() {
                if j != idx {
                    reduced.add_link(link.a, link.b, link.params);
                }
            }
            let after = AllPairs::build(&reduced);
            let (partitions, mean_stretch, max_stretch) = stretch(&net, &before, &after, None);
            let tag = format!("link {}-{}", l.a, l.b);
            let got = impacts.iter().find(|i| i.component == tag).unwrap();
            assert_eq!(got.partitions, partitions, "{tag}");
            assert!((got.mean_stretch - mean_stretch).abs() < 1e-12, "{tag}");
            assert!((got.max_stretch - max_stretch).abs() < 1e-12, "{tag}");
        }
    }

    #[test]
    fn stretch_is_at_least_one() {
        let net = TopologyConfig::paper(10).build(9);
        for i in link_criticality(&net) {
            assert!(
                i.mean_stretch >= 1.0 - 1e-12,
                "{}: {}",
                i.component,
                i.mean_stretch
            );
            assert!(i.max_stretch >= i.mean_stretch - 1e-12);
        }
    }
}

//! Property-based tests for the network substrate.

use crate::graph::{EdgeNetwork, NodeId};
use crate::incremental::ApspCache;
use crate::paths::{AllPairs, PathMetric, ShortestPaths};
use crate::topology::{TopologyConfig, TopologyKind};
use crate::virtual_graph::VirtualGraph;
use proptest::prelude::*;

/// Strategy: a connected random topology (5..=20 nodes) plus its seed.
fn arb_net() -> impl Strategy<Value = EdgeNetwork> {
    (2usize..=20, any::<u64>(), 0usize..3).prop_map(|(n, seed, kind)| {
        let kind = match kind {
            0 => TopologyKind::UniformDisk,
            1 => TopologyKind::Clustered { clusters: 3 },
            _ => TopologyKind::RingWithChords,
        };
        TopologyConfig {
            nodes: n,
            kind,
            ..TopologyConfig::default()
        }
        .build(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triangle inequality holds for shortest-path latency weights.
    #[test]
    fn triangle_inequality(net in arb_net()) {
        let ap = AllPairs::build(&net);
        let n = net.node_count();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let (a, b, c) = (NodeId(a as u32), NodeId(b as u32), NodeId(c as u32));
                    let direct = ap.latency_weight(a, c);
                    let via = ap.latency_weight(a, b) + ap.latency_weight(b, c);
                    prop_assert!(direct <= via + 1e-9,
                        "triangle violated: {a}->{c} {direct} > {a}->{b}->{c} {via}");
                }
            }
        }
    }

    /// The latency-metric path is never slower than the hop-metric path.
    #[test]
    fn latency_metric_dominates(net in arb_net()) {
        let ap = AllPairs::build(&net);
        for a in net.node_ids() {
            for b in net.node_ids() {
                prop_assert!(ap.latency_weight(a, b) <= ap.hop_path_weight(a, b) + 1e-9);
            }
        }
    }

    /// Hop-metric distances match plain BFS hop counts.
    #[test]
    fn hop_counts_match_bfs(net in arb_net()) {
        let ap = AllPairs::build(&net);
        for s in net.node_ids() {
            // BFS.
            let n = net.node_count();
            let mut dist = vec![u32::MAX; n];
            dist[s.idx()] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for nb in net.neighbors(u) {
                    if dist[nb.node.idx()] == u32::MAX {
                        dist[nb.node.idx()] = dist[u.idx()] + 1;
                        queue.push_back(nb.node);
                    }
                }
            }
            for t in net.node_ids() {
                prop_assert_eq!(ap.hop_count(s, t), dist[t.idx()]);
            }
        }
    }

    /// Reconstructed paths are consistent: edge-connected, start/end correct,
    /// and their accumulated weight equals the reported weight.
    #[test]
    fn paths_are_consistent(net in arb_net()) {
        for s in net.node_ids() {
            for metric in [PathMetric::Latency, PathMetric::Hops] {
                let sp = ShortestPaths::dijkstra(&net, s, metric);
                for t in net.node_ids() {
                    let Some(path) = sp.path_to(t) else { continue };
                    prop_assert_eq!(path[0], s);
                    prop_assert_eq!(*path.last().unwrap(), t);
                    let mut acc = 0.0;
                    for w in path.windows(2) {
                        let rate = net.direct_rate(w[0], w[1]);
                        prop_assert!(rate.is_some(), "path uses missing edge");
                        acc += 1.0 / rate.unwrap();
                    }
                    // Accumulated weight can only be <= due to parallel-link max.
                    prop_assert!(acc <= sp.latency_weight(t) + 1e-9);
                    prop_assert_eq!(path.len() as u32 - 1, sp.hop_count(t));
                }
            }
        }
    }

    /// Virtual-link speed never exceeds the slowest link of the underlying
    /// shortest path (harmonic composition is dominated by its minimum), and
    /// never exceeds any direct link's rate upper bound.
    #[test]
    fn virtual_speed_bounded_by_components(net in arb_net()) {
        let ap = AllPairs::build(&net);
        let max_rate = net
            .links()
            .iter()
            .map(|l| l.rate())
            .fold(0.0_f64, f64::max);
        for a in net.node_ids() {
            for b in net.node_ids() {
                if a == b { continue; }
                let v = ap.virtual_speed(a, b);
                prop_assert!(v <= max_rate + 1e-9,
                    "virtual speed {v} exceeds fastest physical link {max_rate}");
            }
        }
    }

    /// Partition is a disjoint cover of the member set for any threshold.
    #[test]
    fn partition_is_disjoint_cover(net in arb_net(), xi in 0.0f64..100.0) {
        let ap = AllPairs::build(&net);
        let members: Vec<NodeId> = net.node_ids().collect();
        let vg = VirtualGraph::build(&members, &ap);
        let parts = vg.partition(xi);
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            prop_assert!(!p.is_empty());
            for &n in p {
                prop_assert!(seen.insert(n), "node {n} in two partitions");
            }
        }
        prop_assert_eq!(seen.len(), members.len());
    }

    /// Raising the threshold never merges partitions (monotone refinement).
    #[test]
    fn partition_refines_monotonically(net in arb_net()) {
        let ap = AllPairs::build(&net);
        let members: Vec<NodeId> = net.node_ids().collect();
        let vg = VirtualGraph::build(&members, &ap);
        let coarse = vg.partition(1.0);
        let fine = vg.partition(10.0);
        // Every fine partition must be contained in exactly one coarse one.
        for f in &fine {
            let container = coarse.iter().filter(|c| f.iter().all(|n| c.contains(n))).count();
            prop_assert_eq!(container, 1, "fine part {:?} not nested in coarse", f);
        }
    }

    /// Generated topology attribute ranges hold for arbitrary sizes/seeds.
    #[test]
    fn topology_ranges(n in 1usize..=25, seed in any::<u64>()) {
        let net = TopologyConfig::paper(n).build(seed);
        prop_assert!(net.is_connected());
        for id in net.node_ids() {
            let s = net.server(id);
            prop_assert!((5.0..=20.0).contains(&s.compute_gflops));
            prop_assert!((4.0..=8.0).contains(&s.storage_units));
        }
    }

    /// Parallel APSP construction is bit-identical to the serial reference
    /// for every thread count: `total_cmp`-equal weights, identical hop
    /// counts and identical predecessor (i.e. path) matrices.
    #[test]
    fn parallel_apsp_identical_to_serial(net in arb_net(), threads in 2usize..=8) {
        let serial = AllPairs::build_serial(&net);
        let parallel = AllPairs::build_with_threads(&net, threads);
        prop_assert!(parallel.identical(&serial), "threads={threads} diverged");
    }

    /// Incremental post-fault recompute is bit-identical to a serial full
    /// rebuild after every event of a random fault/repair schedule (node
    /// crashes, link degradations, restores — the PR 1 fault vocabulary).
    #[test]
    fn incremental_matches_rebuild_under_fault_schedule(
        net in arb_net(),
        fseed in any::<u64>(),
        steps in 1usize..=12,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(fseed);
        let mut cache = ApspCache::new(&net);
        for step in 0..steps {
            match rng.gen_range(0..4u8) {
                0 if net.link_count() > 0 => {
                    // Degrade (or kill) a random link.
                    let idx = rng.gen_range(0..net.link_count());
                    let factor = [0.0, 0.1, 0.5, 0.9][rng.gen_range(0..4)];
                    cache.set_link_rate(idx, cache.base_rate(idx) * factor);
                }
                1 if net.link_count() > 0 => {
                    // Restore a random link to pristine.
                    let idx = rng.gen_range(0..net.link_count());
                    cache.set_link_rate(idx, cache.base_rate(idx));
                }
                2 => {
                    let node = NodeId(rng.gen_range(0..net.node_count()) as u32);
                    cache.mask_node(node);
                }
                _ => {
                    let node = NodeId(rng.gen_range(0..net.node_count()) as u32);
                    cache.unmask_node(node);
                }
            }
            let rebuilt = AllPairs::build_serial(cache.network());
            prop_assert!(
                cache.all_pairs().identical(&rebuilt),
                "cache diverged from full rebuild at step {step}"
            );
        }
    }
}

/// Brute-force Bellman-Ford cross-check of Dijkstra on small graphs.
#[test]
fn dijkstra_matches_bellman_ford() {
    for seed in 0..20 {
        let net = TopologyConfig::paper(12).build(seed);
        let n = net.node_count();
        for s in net.node_ids() {
            let sp = ShortestPaths::dijkstra(&net, s, PathMetric::Latency);
            // Bellman-Ford.
            let mut dist = vec![f64::INFINITY; n];
            dist[s.idx()] = 0.0;
            for _ in 0..n {
                let mut changed = false;
                for l in net.links() {
                    let w = 1.0 / l.rate();
                    let (a, b) = (l.a.idx(), l.b.idx());
                    if dist[a] + w < dist[b] - 1e-15 {
                        dist[b] = dist[a] + w;
                        changed = true;
                    }
                    if dist[b] + w < dist[a] - 1e-15 {
                        dist[a] = dist[b] + w;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for t in net.node_ids() {
                assert!(
                    (sp.latency_weight(t) - dist[t.idx()]).abs() < 1e-9,
                    "seed={seed} s={s} t={t}: dijkstra {} vs bf {}",
                    sp.latency_weight(t),
                    dist[t.idx()]
                );
            }
        }
    }
}

//! Virtual graphs `G'(m_i)` and threshold partitioning (Algorithm 1, step 1).
//!
//! For each microservice the paper collects the nodes hosting its requests,
//! reconnects them with *virtual links* riding minimum-hop shortest paths
//! (effective speed `𝔹(l') = 1/Σ 1/b(l)`), keeps only virtual links with
//! `𝔹 > ξ`, and takes connected components of the filtered graph as the
//! initial partitions `𝒫(m_i) = {p_s(m_i)}`.
//!
//! This module is service-agnostic: it works on any subset of nodes plus an
//! [`AllPairs`] cache, so the same machinery also serves tests and ablations.

use crate::graph::NodeId;
use crate::paths::AllPairs;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A virtual graph over a subset of substrate nodes.
///
/// Stores the member list and the dense matrix of virtual channel speeds
/// `𝔹(l'_{k,q})` between members (GB/s, `INFINITY` on the diagonal).
#[derive(Debug, Clone)]
pub struct VirtualGraph {
    members: Vec<NodeId>,
    /// Row-major `members.len() × members.len()` speed matrix.
    speeds: Vec<f64>,
}

/// One partition `p_s(m_i)`: a set of substrate nodes.
pub type Partition = Vec<NodeId>;

impl VirtualGraph {
    /// Build the virtual graph over `members` using the precomputed
    /// minimum-hop path speeds from `ap`.
    ///
    /// Duplicated members are deduplicated; order is preserved otherwise.
    pub fn build(members: &[NodeId], ap: &AllPairs) -> Self {
        let mut uniq: Vec<NodeId> = Vec::with_capacity(members.len());
        for &m in members {
            if !uniq.contains(&m) {
                uniq.push(m);
            }
        }
        let n = uniq.len();
        let mut speeds = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                speeds[i * n + j] = if i == j {
                    f64::INFINITY
                } else {
                    ap.virtual_speed(uniq[i], uniq[j])
                };
            }
        }
        Self {
            members: uniq,
            speeds,
        }
    }

    /// Member nodes of this virtual graph.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Virtual channel speed between member *indices* `i` and `j`.
    #[inline]
    pub fn speed(&self, i: usize, j: usize) -> f64 {
        self.speeds[i * self.members.len() + j]
    }

    /// Virtual channel speed between two member *nodes*, or `None` if either
    /// is not a member.
    pub fn speed_between(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let i = self.members.iter().position(|&m| m == a)?;
        let j = self.members.iter().position(|&m| m == b)?;
        Some(self.speed(i, j))
    }

    /// Partition members into connected components of the graph that keeps
    /// only virtual links with `𝔹 > ξ` (Algorithm 1). Components are returned
    /// largest-first; ties broken by smallest member id for determinism.
    pub fn partition(&self, xi: f64) -> Vec<Partition> {
        let n = self.members.len();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = count;
            count += 1;
            let mut stack = vec![start];
            comp[start] = id;
            while let Some(u) = stack.pop() {
                for (v, cv) in comp.iter_mut().enumerate() {
                    if *cv == usize::MAX && self.speed(u, v) > xi {
                        *cv = id;
                        stack.push(v);
                    }
                }
            }
        }
        let mut parts: Vec<Partition> = vec![Vec::new(); count];
        for (i, &c) in comp.iter().enumerate() {
            parts[c].push(self.members[i]);
        }
        for p in &mut parts {
            p.sort();
        }
        parts.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        parts
    }
}

/// Memoized virtual graphs, keyed by (deduplicated) hosting set and a
/// topology generation counter.
///
/// Within one generation the virtual graph of a hosting set is immutable —
/// `𝔹` values only depend on the substrate and the member set — so services
/// sharing a hosting set, and consecutive slots whose topology did not
/// change, share one build. Any generation bump (from the incremental APSP
/// cache, or a fingerprint change of the substrate) drops the memo wholesale.
#[derive(Debug, Clone, Default)]
pub struct VgCache {
    generation: u64,
    // BTreeMap (not HashMap) so every traversal of the memo — debugging
    // dumps, future eviction policies — is deterministic (rule L3-nondet-hash).
    memo: BTreeMap<Vec<NodeId>, Arc<VirtualGraph>>,
    hits: u64,
    misses: u64,
    /// Dedup buffer for lookups, recycled across calls so cache *hits* —
    /// the steady state — allocate nothing (rule `A1-hot-alloc`). On a miss
    /// the buffer moves into the memo as the key and is replaced lazily.
    key_scratch: Vec<NodeId>,
}

impl VgCache {
    /// An empty cache at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The virtual graph over `members` at topology `generation`, building it
    /// on miss. A generation different from the cache's current one clears
    /// every memoized graph first.
    pub fn get(&mut self, generation: u64, members: &[NodeId], ap: &AllPairs) -> Arc<VirtualGraph> {
        if generation != self.generation {
            self.memo.clear();
            self.generation = generation;
        }
        self.key_scratch.clear();
        for &m in members {
            if !self.key_scratch.contains(&m) {
                self.key_scratch.push(m);
            }
        }
        if let Some(vg) = self.memo.get(&self.key_scratch) {
            self.hits += 1;
            return Arc::clone(vg);
        }
        self.misses += 1;
        let vg = Arc::new(VirtualGraph::build(&self.key_scratch, ap));
        // The scratch becomes the stored key; a fresh (empty) buffer takes
        // its place and regrows on the next lookup. Misses are rare by
        // construction, so the steady state stays allocation-free.
        self.memo
            .insert(std::mem::take(&mut self.key_scratch), Arc::clone(&vg));
        vg
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. actual builds) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of graphs currently memoized.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

/// Communication intensity `χ(v_k) = Σ_{q ≠ k} 𝔹(l'_{k,q})` over the whole
/// substrate (Section IV.A). Candidate-node checks are performed in ascending
/// order of `χ`, prioritizing weakly connected nodes.
pub fn communication_intensity(ap: &AllPairs, node: NodeId) -> f64 {
    let n = ap.node_count();
    (0..n)
        .filter(|&q| q != node.idx())
        .map(|q| {
            let s = ap.virtual_speed(node, NodeId(q as u32));
            if s.is_finite() {
                s
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeNetwork, EdgeServer, LinkParams};

    /// Two fast cliques {0,1} and {2,3} joined by one slow bridge 1-2.
    fn two_islands() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(1.0));
        net
    }

    #[test]
    fn virtual_speeds_come_from_min_hop_paths() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let vg = VirtualGraph::build(&[NodeId(0), NodeId(3)], &ap);
        // Path 0-1-2-3: 1/50 + 1/1 + 1/50 = 1.04 → speed ≈ 0.9615.
        let expected = 1.0 / (1.0 / 50.0 + 1.0 + 1.0 / 50.0);
        assert!((vg.speed(0, 1) - expected).abs() < 1e-9);
        assert!(vg.speed(0, 0).is_infinite());
    }

    #[test]
    fn threshold_splits_across_slow_bridge() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let all: Vec<NodeId> = net.node_ids().collect();
        let vg = VirtualGraph::build(&all, &ap);

        // Low threshold: everything in one partition.
        let parts = vg.partition(0.1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 4);

        // Threshold above the bridge speed (~0.96..1) but below clique speed
        // (50): two partitions of two.
        let parts = vg.partition(5.0);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(parts[1], vec![NodeId(2), NodeId(3)]);

        // Threshold above everything: four singletons.
        let parts = vg.partition(1000.0);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn partitions_cover_all_members_exactly_once() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let all: Vec<NodeId> = net.node_ids().collect();
        let vg = VirtualGraph::build(&all, &ap);
        for xi in [0.0, 0.5, 2.0, 10.0, 100.0] {
            let parts = vg.partition(xi);
            let mut covered: Vec<NodeId> = parts.iter().flatten().copied().collect();
            covered.sort();
            assert_eq!(covered, all, "xi={xi}");
        }
    }

    #[test]
    fn duplicates_are_removed() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let vg = VirtualGraph::build(&[NodeId(0), NodeId(0), NodeId(1)], &ap);
        assert_eq!(vg.len(), 2);
    }

    #[test]
    fn speed_between_by_node_id() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let vg = VirtualGraph::build(&[NodeId(0), NodeId(1)], &ap);
        assert!((vg.speed_between(NodeId(0), NodeId(1)).unwrap() - 50.0).abs() < 1e-9);
        assert!(vg.speed_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn intensity_orders_central_nodes_higher() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        // Bridge endpoints (1, 2) see one fast link plus short paths; leaves
        // (0, 3) pay an extra hop to everyone — strictly lower intensity.
        let chi0 = communication_intensity(&ap, NodeId(0));
        let chi1 = communication_intensity(&ap, NodeId(1));
        assert!(chi1 > chi0);
    }

    #[test]
    fn empty_virtual_graph() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let vg = VirtualGraph::build(&[], &ap);
        assert!(vg.is_empty());
        assert!(vg.partition(1.0).is_empty());
    }

    #[test]
    fn vg_cache_shares_builds_within_a_generation() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let mut cache = VgCache::new();
        let members = [NodeId(0), NodeId(1), NodeId(3)];
        let a = cache.get(0, &members, &ap);
        let b = cache.get(0, &members, &ap);
        assert!(Arc::ptr_eq(&a, &b));
        // Duplicates normalize to the same key.
        let c = cache.get(0, &[NodeId(0), NodeId(0), NodeId(1), NodeId(3)], &ap);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn vg_cache_invalidates_on_generation_bump() {
        let net = two_islands();
        let ap = AllPairs::build(&net);
        let mut cache = VgCache::new();
        let members = [NodeId(0), NodeId(3)];
        let a = cache.get(0, &members, &ap);
        let b = cache.get(1, &members, &ap);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }
}

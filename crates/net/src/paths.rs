//! Shortest paths over the substrate network.
//!
//! Two metrics matter in the paper:
//!
//! * **Latency** — the time to push one data unit across a path,
//!   `w(π) = Σ_{l ∈ π} 1/b(l)`. Transferring `r` GB along `π` takes `r·w(π)`
//!   seconds, and the effective channel speed of the whole path is the
//!   harmonic-style composition `𝔹 = 1/w(π)` used for virtual links.
//! * **Hops** — the paper's `π*` return path is the minimum-hop path; we break
//!   hop ties by latency so results are deterministic.
//!
//! [`ShortestPaths`] is a single-source Dijkstra tree; [`AllPairs`] caches the
//! full matrix (the networks in the paper have ≤ 30 nodes, so `O(V·E log V)`
//! precomputation is trivially cheap and every downstream query is O(1)).

use crate::graph::{EdgeNetwork, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which weight the shortest-path computation minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMetric {
    /// Minimize `Σ 1/b(l)` (transfer time per data unit).
    Latency,
    /// Minimize hop count, breaking ties by latency (the paper's `π*`).
    Hops,
}

/// Max-heap entry ordered so the smallest key pops first.
#[derive(PartialEq)]
struct HeapEntry {
    key: (f64, f64),
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest key first.
        // `total_cmp` on each key component gives a NaN-safe *total* order
        // (a NaN key sorts above every finite key instead of collapsing the
        // comparison to Equal, which under `partial_cmp().unwrap_or(Equal)`
        // silently corrupted heap invariants for degenerate link rates).
        other
            .key
            .0
            .total_cmp(&self.key.0)
            .then_with(|| other.key.1.total_cmp(&self.key.1))
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    metric: PathMetric,
    /// Per node: accumulated latency `Σ 1/b` along the chosen path (seconds
    /// per GB). `f64::INFINITY` for unreachable nodes.
    latency: Vec<f64>,
    /// Per node: hop count along the chosen path. `u32::MAX` if unreachable.
    hops: Vec<u32>,
    /// Predecessor on the chosen path (`None` for source / unreachable).
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Run Dijkstra from `source` under `metric`.
    pub fn dijkstra(net: &EdgeNetwork, source: NodeId, metric: PathMetric) -> Self {
        let n = net.node_count();
        assert!(source.idx() < n, "source {source} out of range");
        let mut latency = vec![f64::INFINITY; n];
        let mut hops = vec![u32::MAX; n];
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        let mut done = vec![false; n];

        latency[source.idx()] = 0.0;
        hops[source.idx()] = 0;

        let key_of = |lat: f64, h: u32| -> (f64, f64) {
            match metric {
                PathMetric::Latency => (lat, h as f64),
                PathMetric::Hops => (h as f64, lat),
            }
        };

        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            key: key_of(0.0, 0),
            node: source,
        });

        while let Some(HeapEntry { node, key }) = heap.pop() {
            let u = node.idx();
            if done[u] {
                continue;
            }
            // Stale entry check.
            if key != key_of(latency[u], hops[u]) {
                continue;
            }
            done[u] = true;
            for nb in net.neighbors(node) {
                let v = nb.node.idx();
                if done[v] {
                    continue;
                }
                // Masked-out links (rate overridden to 0 by the incremental
                // cache layer) behave exactly like removed links.
                if nb.rate <= 0.0 {
                    continue;
                }
                let cand_lat = latency[u] + 1.0 / nb.rate;
                let cand_hops = hops[u] + 1;
                if key_of(cand_lat, cand_hops) < key_of(latency[v], hops[v]) {
                    latency[v] = cand_lat;
                    hops[v] = cand_hops;
                    pred[v] = Some(node);
                    heap.push(HeapEntry {
                        key: key_of(cand_lat, cand_hops),
                        node: nb.node,
                    });
                }
            }
        }

        Self {
            source,
            metric,
            latency,
            hops,
            pred,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Metric this tree was computed under.
    pub fn metric(&self) -> PathMetric {
        self.metric
    }

    /// Accumulated `Σ 1/b` to `target` (seconds per GB), `INFINITY` if
    /// unreachable, `0` for the source itself.
    #[inline]
    pub fn latency_weight(&self, target: NodeId) -> f64 {
        self.latency[target.idx()]
    }

    /// Hop count to `target` (`u32::MAX` if unreachable).
    #[inline]
    pub fn hop_count(&self, target: NodeId) -> u32 {
        self.hops[target.idx()]
    }

    /// Effective channel speed `𝔹` of the path to `target` in GB/s
    /// (`1 / Σ 1/b`). Infinite for the source itself, zero if unreachable.
    #[inline]
    pub fn channel_speed(&self, target: NodeId) -> f64 {
        let w = self.latency[target.idx()];
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Predecessor of `target` on the chosen path (`None` for the source
    /// itself and for unreachable nodes).
    #[inline]
    pub fn predecessor(&self, target: NodeId) -> Option<NodeId> {
        self.pred[target.idx()]
    }

    /// Reconstruct the node sequence source → target (inclusive), or `None`
    /// if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.latency[target.idx()].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.pred[cur.idx()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }
}

/// All-pairs shortest paths under both metrics, precomputed once per topology.
///
/// `latency[a][b]` is the per-GB transfer weight of the latency-optimal path;
/// `hop_latency[a][b]` is the per-GB weight along the *minimum-hop* path
/// (the paper's `π*`, used for return transfers and virtual links built from
/// `π*`); `hops[a][b]` is that path's hop count.
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    latency: Vec<f64>,
    hop_latency: Vec<f64>,
    hops: Vec<u32>,
    /// Predecessor matrices (`u32::MAX` = none): `pred_lat[a·n + b]` is the
    /// node before `b` on the latency-optimal path `a → b`; `pred_hop` the
    /// same for the minimum-hop path `π*`. They make path reconstruction
    /// O(hops) and are what lets the incremental cache decide which source
    /// trees a topology change can actually touch.
    pred_lat: Vec<u32>,
    pred_hop: Vec<u32>,
}

/// One source's worth of all-pairs data (both metrics), as produced by the
/// per-source Dijkstra fan-out.
pub(crate) struct SourceRow {
    latency: Vec<f64>,
    hop_latency: Vec<f64>,
    hops: Vec<u32>,
    pred_lat: Vec<u32>,
    pred_hop: Vec<u32>,
}

/// The latency-metric half of a source row (distances + predecessors).
pub(crate) struct LatHalf {
    latency: Vec<f64>,
    pred_lat: Vec<u32>,
}

/// The hop-metric half of a source row.
pub(crate) struct HopHalf {
    hop_latency: Vec<f64>,
    hops: Vec<u32>,
    pred_hop: Vec<u32>,
}

fn compute_lat_half(net: &EdgeNetwork, s: NodeId) -> LatHalf {
    let n = net.node_count();
    let tree = ShortestPaths::dijkstra(net, s, PathMetric::Latency);
    let mut half = LatHalf {
        latency: Vec::with_capacity(n),
        pred_lat: Vec::with_capacity(n),
    };
    for t in 0..n {
        let t = NodeId(t as u32);
        half.latency.push(tree.latency_weight(t));
        half.pred_lat
            .push(tree.predecessor(t).map_or(u32::MAX, |p| p.0));
    }
    half
}

fn compute_hop_half(net: &EdgeNetwork, s: NodeId) -> HopHalf {
    let n = net.node_count();
    let tree = ShortestPaths::dijkstra(net, s, PathMetric::Hops);
    let mut half = HopHalf {
        hop_latency: Vec::with_capacity(n),
        hops: Vec::with_capacity(n),
        pred_hop: Vec::with_capacity(n),
    };
    for t in 0..n {
        let t = NodeId(t as u32);
        half.hop_latency.push(tree.latency_weight(t));
        half.hops.push(tree.hop_count(t));
        half.pred_hop
            .push(tree.predecessor(t).map_or(u32::MAX, |p| p.0));
    }
    half
}

/// Depth of every reachable node in a predecessor tree (`u32::MAX` for
/// unreachable ones). Because Dijkstra's relaxation writes latency and hop
/// count together, the pred-tree depth *is* the hop count of the chosen path
/// — this recovers the latency tree's secondary key, which `AllPairs` does
/// not store.
fn depths_from_preds(lat: &[f64], pred: &[u32]) -> Vec<u32> {
    let n = pred.len();
    let mut depth = vec![u32::MAX; n];
    let mut chain: Vec<u32> = Vec::new();
    for v0 in 0..n {
        if depth[v0] != u32::MAX || lat[v0].is_infinite() {
            continue;
        }
        chain.clear();
        let mut cur = v0 as u32;
        let base;
        loop {
            if depth[cur as usize] != u32::MAX {
                base = depth[cur as usize];
                break;
            }
            let p = pred[cur as usize];
            if p == u32::MAX {
                depth[cur as usize] = 0; // the source
                base = 0;
                break;
            }
            chain.push(cur);
            cur = p;
        }
        for (i, &v) in chain.iter().rev().enumerate() {
            depth[v as usize] = base + i as u32 + 1;
        }
    }
    depth
}

/// Repair one metric half of a source row after weight **increases** on
/// `changed` edges, recomputing only the affected subtrees.
///
/// Only descendants (in the stored predecessor tree) of a changed tree
/// edge's child endpoint can change: every other node's path avoids all
/// changed edges, so its key is still optimal, and its predecessor cannot
/// silently flip either — a pred pointing into the affected region would
/// make the node itself affected. The affected region is re-run through a
/// Dijkstra seeded with every unaffected neighbor of the region at its
/// (unchanged) final key. That reproduces the full run's pop order — the
/// heap comparator is a total order on `(key, node)` and stale entries only
/// ever pop late — so relaxation order, and with it every tie-broken
/// predecessor, is bit-identical to a from-scratch rebuild.
fn repaired_half_increase(
    net: &EdgeNetwork,
    metric: PathMetric,
    cur_lat: &[f64],
    cur_hops: &[u32],
    cur_pred: &[u32],
    changed: &[(NodeId, NodeId)],
) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
    let n = cur_pred.len();
    let mut lat = cur_lat.to_vec();
    let mut hops = cur_hops.to_vec();
    let mut pred = cur_pred.to_vec();

    // Affected = descendants of the child endpoint of each changed tree edge.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, &p) in pred.iter().enumerate() {
        if p != u32::MAX {
            children[p as usize].push(v as u32);
        }
    }
    let mut stack: Vec<u32> = Vec::new();
    for &(a, b) in changed {
        if pred[b.idx()] == a.0 {
            stack.push(b.0);
        } else if pred[a.idx()] == b.0 {
            stack.push(a.0);
        }
    }
    let mut affected = vec![false; n];
    while let Some(v) = stack.pop() {
        if affected[v as usize] {
            continue;
        }
        affected[v as usize] = true;
        stack.extend(children[v as usize].iter().copied());
    }

    let key_of = |l: f64, h: u32| -> (f64, f64) {
        match metric {
            PathMetric::Latency => (l, h as f64),
            PathMetric::Hops => (h as f64, l),
        }
    };

    let mut done = vec![true; n];
    let mut heap = BinaryHeap::new();
    for v in 0..n {
        if affected[v] {
            lat[v] = f64::INFINITY;
            hops[v] = u32::MAX;
            pred[v] = u32::MAX;
            done[v] = false;
        }
    }
    for u in 0..n {
        if affected[u] || lat[u].is_infinite() {
            continue;
        }
        let unode = NodeId(u as u32);
        if net
            .neighbors(unode)
            .iter()
            .any(|nb| affected[nb.node.idx()] && nb.rate > 0.0)
        {
            done[u] = false;
            heap.push(HeapEntry {
                key: key_of(lat[u], hops[u]),
                node: unode,
            });
        }
    }
    while let Some(HeapEntry { node, key }) = heap.pop() {
        let u = node.idx();
        if done[u] || key != key_of(lat[u], hops[u]) {
            continue;
        }
        done[u] = true;
        for nb in net.neighbors(node) {
            let v = nb.node.idx();
            if done[v] || nb.rate <= 0.0 {
                continue;
            }
            let cand_lat = lat[u] + 1.0 / nb.rate;
            let cand_hops = hops[u] + 1;
            if key_of(cand_lat, cand_hops) < key_of(lat[v], hops[v]) {
                lat[v] = cand_lat;
                hops[v] = cand_hops;
                pred[v] = node.0;
                heap.push(HeapEntry {
                    key: key_of(cand_lat, cand_hops),
                    node: nb.node,
                });
            }
        }
    }
    (lat, hops, pred)
}

/// Repair one metric half of a source row after weight **decreases** on
/// `changed` edges (restore / repair faults).
///
/// Distances: stored keys stay upper bounds when weights only decrease, so a
/// Dijkstra seeded with the one-step improvements the cheaper edges offer
/// (and propagating only strict improvements, in key order) settles every
/// node at its new optimal key — nodes it never touches are provably
/// unchanged.
///
/// Predecessors: the full algorithm's final `pred[v]` is a *pointwise*
/// function of final keys — the first neighbor in pop order
/// `(key.0, key.1, node id)` whose offer `key(u) ⊕ w(u,v)` attains `key(v)`
/// (candidate preds all pop before `v`, offers arrive in pop order, and only
/// the first offer attaining the minimum survives the strict-`<` relaxation).
/// So predecessors are re-derived by that argmin exactly where an input
/// changed: improved nodes, their neighbors, and the changed edges'
/// endpoints. Everything else is bit-identical to a full rebuild.
fn repaired_half_decrease(
    net: &EdgeNetwork,
    metric: PathMetric,
    source: NodeId,
    cur_lat: &[f64],
    cur_hops: &[u32],
    cur_pred: &[u32],
    changed: &[(NodeId, NodeId)],
) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
    let n = cur_pred.len();
    let mut lat = cur_lat.to_vec();
    let mut hops = cur_hops.to_vec();
    let mut pred = cur_pred.to_vec();

    let key_of = |l: f64, h: u32| -> (f64, f64) {
        match metric {
            PathMetric::Latency => (l, h as f64),
            PathMetric::Hops => (h as f64, l),
        }
    };

    // Seed with the direct one-step improvements across the cheaper edges
    // (all parallel links, both directions); chains propagate below.
    let mut affected = vec![false; n];
    let mut heap = BinaryHeap::new();
    for &(a, b) in changed {
        for (x, y) in [(a, b), (b, a)] {
            for nb in net.neighbors(x) {
                if nb.node != y || nb.rate <= 0.0 || lat[x.idx()].is_infinite() {
                    continue;
                }
                let v = y.idx();
                let cand_lat = lat[x.idx()] + 1.0 / nb.rate;
                let cand_hops = hops[x.idx()] + 1;
                let ck = key_of(cand_lat, cand_hops);
                if ck < key_of(lat[v], hops[v]) {
                    lat[v] = cand_lat;
                    hops[v] = cand_hops;
                    affected[v] = true;
                    heap.push(HeapEntry { key: ck, node: y });
                }
            }
        }
    }
    // Pops are monotone non-decreasing (seeds are all in already, relaxation
    // pushes keys above the popped one), so each node settles at its final
    // key the first time its live entry pops.
    let mut done = vec![false; n];
    while let Some(HeapEntry { node, key }) = heap.pop() {
        let u = node.idx();
        if done[u] || key != key_of(lat[u], hops[u]) {
            continue;
        }
        done[u] = true;
        for nb in net.neighbors(node) {
            let v = nb.node.idx();
            if done[v] || nb.rate <= 0.0 {
                continue;
            }
            let cand_lat = lat[u] + 1.0 / nb.rate;
            let cand_hops = hops[u] + 1;
            let ck = key_of(cand_lat, cand_hops);
            if ck < key_of(lat[v], hops[v]) {
                lat[v] = cand_lat;
                hops[v] = cand_hops;
                affected[v] = true;
                heap.push(HeapEntry {
                    key: ck,
                    node: nb.node,
                });
            }
        }
    }

    // Re-derive predecessors wherever an argmin input could have changed.
    let mut rederive = vec![false; n];
    for v in 0..n {
        if affected[v] {
            rederive[v] = true;
            for nb in net.neighbors(NodeId(v as u32)) {
                rederive[nb.node.idx()] = true;
            }
        }
    }
    for &(a, b) in changed {
        rederive[a.idx()] = true;
        rederive[b.idx()] = true;
    }
    rederive[source.idx()] = false;
    for v in 0..n {
        if !rederive[v] || lat[v].is_infinite() {
            continue;
        }
        let kv = key_of(lat[v], hops[v]);
        let mut best_id = u32::MAX;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for nb in net.neighbors(NodeId(v as u32)) {
            let u = nb.node.idx();
            if nb.rate <= 0.0 || lat[u].is_infinite() {
                continue;
            }
            let cand = key_of(lat[u] + 1.0 / nb.rate, hops[u] + 1);
            if cand == kv {
                let ku = key_of(lat[u], hops[u]);
                if best_id == u32::MAX || ku < best_key || (ku == best_key && nb.node.0 < best_id) {
                    best_key = ku;
                    best_id = nb.node.0;
                }
            }
        }
        pred[v] = best_id;
    }
    (lat, hops, pred)
}

fn compute_row(net: &EdgeNetwork, s: NodeId) -> SourceRow {
    let n = net.node_count();
    let lat_tree = ShortestPaths::dijkstra(net, s, PathMetric::Latency);
    let hop_tree = ShortestPaths::dijkstra(net, s, PathMetric::Hops);
    let mut row = SourceRow {
        latency: Vec::with_capacity(n),
        hop_latency: Vec::with_capacity(n),
        hops: Vec::with_capacity(n),
        pred_lat: Vec::with_capacity(n),
        pred_hop: Vec::with_capacity(n),
    };
    for t in 0..n {
        let t = NodeId(t as u32);
        row.latency.push(lat_tree.latency_weight(t));
        row.hop_latency.push(hop_tree.latency_weight(t));
        row.hops.push(hop_tree.hop_count(t));
        row.pred_lat
            .push(lat_tree.predecessor(t).map_or(u32::MAX, |p| p.0));
        row.pred_hop
            .push(hop_tree.predecessor(t).map_or(u32::MAX, |p| p.0));
    }
    row
}

impl AllPairs {
    /// Precompute both metrics from every source, fanning the per-source
    /// Dijkstra trees out over the configured thread pool. Results are
    /// bit-identical to [`AllPairs::build_serial`] for any thread count.
    pub fn build(net: &EdgeNetwork) -> Self {
        let n = net.node_count();
        // Dijkstra from one source is O(E log V); below ~64 nodes the whole
        // matrix is cheaper than spawning workers.
        let threads = if n < 64 {
            1
        } else {
            crate::par::effective_threads()
        };
        Self::build_with_threads(net, threads)
    }

    /// Serial reference implementation (also the fallback for tiny graphs).
    pub fn build_serial(net: &EdgeNetwork) -> Self {
        Self::build_with_threads(net, 1)
    }

    /// Precompute on an explicit number of worker threads (no size heuristic —
    /// equivalence tests use this to force real fan-out on small graphs).
    pub fn build_with_threads(net: &EdgeNetwork, threads: usize) -> Self {
        let n = net.node_count();
        let rows =
            crate::par::par_map_indexed_with(n, threads, |s| compute_row(net, NodeId(s as u32)));
        let mut ap = Self {
            n,
            latency: Vec::with_capacity(n * n),
            hop_latency: Vec::with_capacity(n * n),
            hops: Vec::with_capacity(n * n),
            pred_lat: Vec::with_capacity(n * n),
            pred_hop: Vec::with_capacity(n * n),
        };
        for mut row in rows {
            ap.latency.append(&mut row.latency);
            ap.hop_latency.append(&mut row.hop_latency);
            ap.hops.append(&mut row.hops);
            ap.pred_lat.append(&mut row.pred_lat);
            ap.pred_hop.append(&mut row.pred_hop);
        }
        ap
    }

    /// Compute only the latency half of row `s` (parallel-safe).
    pub(crate) fn fresh_lat_half(net: &EdgeNetwork, s: NodeId) -> LatHalf {
        compute_lat_half(net, s)
    }

    /// Compute only the hop half of row `s` (parallel-safe).
    pub(crate) fn fresh_hop_half(net: &EdgeNetwork, s: NodeId) -> HopHalf {
        compute_hop_half(net, s)
    }

    /// Repair the latency half of row `s` after weight **increases** on
    /// `changed` edges, recomputing only the subtrees hanging off changed
    /// tree edges (parallel-safe; bit-identical to [`Self::fresh_lat_half`]).
    pub(crate) fn repaired_lat_half_increase(
        &self,
        net: &EdgeNetwork,
        s: NodeId,
        changed: &[(NodeId, NodeId)],
    ) -> LatHalf {
        let base = s.idx() * self.n;
        let row_lat = &self.latency[base..base + self.n];
        let row_pred = &self.pred_lat[base..base + self.n];
        let depth = depths_from_preds(row_lat, row_pred);
        let (latency, _hops, pred_lat) =
            repaired_half_increase(net, PathMetric::Latency, row_lat, &depth, row_pred, changed);
        LatHalf { latency, pred_lat }
    }

    /// Repair the hop half of row `s` after weight **increases** on `changed`
    /// edges (parallel-safe; bit-identical to [`Self::fresh_hop_half`]).
    pub(crate) fn repaired_hop_half_increase(
        &self,
        net: &EdgeNetwork,
        s: NodeId,
        changed: &[(NodeId, NodeId)],
    ) -> HopHalf {
        let base = s.idx() * self.n;
        let (hop_latency, hops, pred_hop) = repaired_half_increase(
            net,
            PathMetric::Hops,
            &self.hop_latency[base..base + self.n],
            &self.hops[base..base + self.n],
            &self.pred_hop[base..base + self.n],
            changed,
        );
        HopHalf {
            hop_latency,
            hops,
            pred_hop,
        }
    }

    /// Repair the latency half of row `s` after weight **decreases** on
    /// `changed` edges (parallel-safe; bit-identical to
    /// [`Self::fresh_lat_half`]).
    pub(crate) fn repaired_lat_half_decrease(
        &self,
        net: &EdgeNetwork,
        s: NodeId,
        changed: &[(NodeId, NodeId)],
    ) -> LatHalf {
        let base = s.idx() * self.n;
        let row_lat = &self.latency[base..base + self.n];
        let row_pred = &self.pred_lat[base..base + self.n];
        let depth = depths_from_preds(row_lat, row_pred);
        let (latency, _hops, pred_lat) = repaired_half_decrease(
            net,
            PathMetric::Latency,
            s,
            row_lat,
            &depth,
            row_pred,
            changed,
        );
        LatHalf { latency, pred_lat }
    }

    /// Repair the hop half of row `s` after weight **decreases** on `changed`
    /// edges (parallel-safe; bit-identical to [`Self::fresh_hop_half`]).
    pub(crate) fn repaired_hop_half_decrease(
        &self,
        net: &EdgeNetwork,
        s: NodeId,
        changed: &[(NodeId, NodeId)],
    ) -> HopHalf {
        let base = s.idx() * self.n;
        let (hop_latency, hops, pred_hop) = repaired_half_decrease(
            net,
            PathMetric::Hops,
            s,
            &self.hop_latency[base..base + self.n],
            &self.hops[base..base + self.n],
            &self.pred_hop[base..base + self.n],
            changed,
        );
        HopHalf {
            hop_latency,
            hops,
            pred_hop,
        }
    }

    /// Replace only the latency half of source row `s`.
    pub(crate) fn install_lat_half(&mut self, s: NodeId, half: LatHalf) {
        let base = s.idx() * self.n;
        self.latency[base..base + self.n].copy_from_slice(&half.latency);
        self.pred_lat[base..base + self.n].copy_from_slice(&half.pred_lat);
    }

    /// Replace only the hop half of source row `s`.
    pub(crate) fn install_hop_half(&mut self, s: NodeId, half: HopHalf) {
        let base = s.idx() * self.n;
        self.hop_latency[base..base + self.n].copy_from_slice(&half.hop_latency);
        self.hops[base..base + self.n].copy_from_slice(&half.hops);
        self.pred_hop[base..base + self.n].copy_from_slice(&half.pred_hop);
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Predecessor of `b` on the latency-optimal path `a → b`.
    #[inline]
    pub fn pred_latency(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        match self.pred_lat[a.idx() * self.n + b.idx()] {
            u32::MAX => None,
            p => Some(NodeId(p)),
        }
    }

    /// Predecessor of `b` on the minimum-hop path `π*(a → b)`.
    #[inline]
    pub fn pred_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        match self.pred_hop[a.idx() * self.n + b.idx()] {
            u32::MAX => None,
            p => Some(NodeId(p)),
        }
    }

    fn walk(&self, pred: &[u32], a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            match pred[a.idx() * self.n + cur.idx()] {
                u32::MAX => return None,
                p => {
                    cur = NodeId(p);
                    path.push(cur);
                }
            }
        }
        path.reverse();
        Some(path)
    }

    /// The latency-optimal node sequence `a → b`, or `None` if unreachable.
    pub fn path_latency(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        self.walk(&self.pred_lat, a, b)
    }

    /// The minimum-hop node sequence `π*(a → b)`, or `None` if unreachable.
    pub fn path_hops(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        self.walk(&self.pred_hop, a, b)
    }

    /// Bit-exact equality of every matrix (`total_cmp`-equal weights,
    /// identical hop counts and predecessors). This is the equivalence
    /// relation the parallel/incremental proptests assert.
    pub fn identical(&self, other: &AllPairs) -> bool {
        self.n == other.n
            && self.hops == other.hops
            && self.pred_lat == other.pred_lat
            && self.pred_hop == other.pred_hop
            && self
                .latency
                .iter()
                .zip(&other.latency)
                .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
            && self
                .hop_latency
                .iter()
                .zip(&other.hop_latency)
                .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
    }

    /// Per-GB weight `Σ 1/b` of the latency-optimal path `a → b`.
    #[inline]
    pub fn latency_weight(&self, a: NodeId, b: NodeId) -> f64 {
        self.latency[a.idx() * self.n + b.idx()]
    }

    /// Per-GB weight along the minimum-hop path `π*(a, b)`.
    #[inline]
    pub fn hop_path_weight(&self, a: NodeId, b: NodeId) -> f64 {
        self.hop_latency[a.idx() * self.n + b.idx()]
    }

    /// Hop count of `π*(a, b)`.
    #[inline]
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a.idx() * self.n + b.idx()]
    }

    /// Effective channel speed `𝔹(l'_{a,b})` of the virtual link riding the
    /// minimum-hop shortest path, GB/s (Section IV.A). Infinite when `a == b`.
    #[inline]
    pub fn virtual_speed(&self, a: NodeId, b: NodeId) -> f64 {
        let w = self.hop_path_weight(a, b);
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Effective channel speed of the latency-optimal path, GB/s. This is the
    /// fastest achievable per-GB speed between `a` and `b` and is what the
    /// routing engine uses for data transfers.
    #[inline]
    pub fn best_speed(&self, a: NodeId, b: NodeId) -> f64 {
        let w = self.latency_weight(a, b);
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Time in seconds to move `r` GB from `a` to `b` along the
    /// latency-optimal path (0 when `a == b`).
    #[inline]
    pub fn transfer_time(&self, a: NodeId, b: NodeId, r: f64) -> f64 {
        if a == b {
            0.0
        } else {
            r * self.latency_weight(a, b)
        }
    }

    /// Time in seconds to move `r` GB along the minimum-hop return path `π*`.
    #[inline]
    pub fn return_time(&self, a: NodeId, b: NodeId, r: f64) -> f64 {
        if a == b {
            0.0
        } else {
            r * self.hop_path_weight(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeServer, LinkParams};

    /// Diamond: v0-v1 fast-fast (2 hops), v0-v3 direct slow (1 hop).
    ///
    /// ```text
    ///     v1
    ///   /    \      v0-v1: 100, v1-v3: 100   (latency 0.02, 2 hops)
    /// v0      v3    v0-v3: 10                (latency 0.1, 1 hop)
    ///   \    /
    ///     v2        v0-v2: 1, v2-v3: 1       (latency 2.0, 2 hops)
    /// ```
    fn diamond() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(100.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(100.0));
        net.add_link(NodeId(0), NodeId(3), LinkParams::from_rate(10.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(1.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(1.0));
        net
    }

    #[test]
    fn latency_metric_prefers_fast_two_hop() {
        let net = diamond();
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Latency);
        assert!((sp.latency_weight(NodeId(3)) - 0.02).abs() < 1e-12);
        assert_eq!(sp.hop_count(NodeId(3)), 2);
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn hop_metric_prefers_direct_link() {
        let net = diamond();
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Hops);
        assert_eq!(sp.hop_count(NodeId(3)), 1);
        assert!((sp.latency_weight(NodeId(3)) - 0.1).abs() < 1e-12);
        assert_eq!(sp.path_to(NodeId(3)).unwrap(), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn hop_metric_breaks_ties_by_latency() {
        // Two 2-hop routes to v3; the faster one must win.
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(1.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(1.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(100.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(100.0));
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Hops);
        assert_eq!(sp.hop_count(NodeId(3)), 2);
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut net = diamond();
        let lone = net.push_server(EdgeServer::new(1.0, 1.0));
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Latency);
        assert!(sp.latency_weight(lone).is_infinite());
        assert_eq!(sp.hop_count(lone), u32::MAX);
        assert!(sp.path_to(lone).is_none());
        assert_eq!(sp.channel_speed(lone), 0.0);
    }

    #[test]
    fn source_has_zero_weight_and_infinite_speed() {
        let net = diamond();
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Latency);
        assert_eq!(sp.latency_weight(NodeId(0)), 0.0);
        assert!(sp.channel_speed(NodeId(0)).is_infinite());
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let net = diamond();
        let ap = AllPairs::build(&net);
        for s in net.node_ids() {
            let lat = ShortestPaths::dijkstra(&net, s, PathMetric::Latency);
            let hop = ShortestPaths::dijkstra(&net, s, PathMetric::Hops);
            for t in net.node_ids() {
                assert!((ap.latency_weight(s, t) - lat.latency_weight(t)).abs() < 1e-12);
                assert_eq!(ap.hop_count(s, t), hop.hop_count(t));
                assert!((ap.hop_path_weight(s, t) - hop.latency_weight(t)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let net = diamond();
        let ap = AllPairs::build(&net);
        let t1 = ap.transfer_time(NodeId(0), NodeId(3), 1.0);
        let t5 = ap.transfer_time(NodeId(0), NodeId(3), 5.0);
        assert!((t5 - 5.0 * t1).abs() < 1e-12);
        assert_eq!(ap.transfer_time(NodeId(2), NodeId(2), 100.0), 0.0);
    }

    #[test]
    fn virtual_speed_is_harmonic_composition() {
        // v0 -a- v1 -b- v2 line: 𝔹 = 1/(1/a + 1/b).
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(10.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(40.0));
        let ap = AllPairs::build(&net);
        let expected = 1.0 / (1.0 / 10.0 + 1.0 / 40.0);
        assert!((ap.virtual_speed(NodeId(0), NodeId(2)) - expected).abs() < 1e-9);
        // The harmonic composition is below the slowest constituent link.
        assert!(ap.virtual_speed(NodeId(0), NodeId(2)) < 10.0);
    }

    #[test]
    fn heap_entries_with_nan_keys_keep_a_total_order() {
        // Regression: the old `partial_cmp().unwrap_or(Equal)` collapsed NaN
        // keys to Equal, silently corrupting heap invariants. `total_cmp`
        // sorts NaN above every finite key, so finite entries still pop in
        // ascending order and NaN entries pop last.
        let mut heap = BinaryHeap::new();
        for (i, key) in [
            (f64::NAN, 0.0),
            (1.0, f64::NAN),
            (0.5, 1.0),
            (f64::INFINITY, 0.0),
            (0.5, 0.0),
        ]
        .into_iter()
        .enumerate()
        {
            heap.push(HeapEntry {
                key,
                node: NodeId(i as u32),
            });
        }
        let order: Vec<NodeId> = std::iter::from_fn(|| heap.pop().map(|e| e.node)).collect();
        // (0.5, 0.0) < (0.5, 1.0) < (1.0, NaN) < (inf, 0.0) < (NaN, 0.0).
        assert_eq!(
            order,
            vec![NodeId(4), NodeId(2), NodeId(1), NodeId(3), NodeId(0)]
        );
    }

    #[test]
    fn degenerate_link_rates_yield_sane_trees() {
        // Zero-bandwidth params clamp to a tiny positive rate; an explicitly
        // masked (rate 0) link must behave as absent. Dijkstra must terminate
        // with consistent weights either way.
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        let degenerate = LinkParams {
            bandwidth: 0.0,
            tx_power: 0.0,
            channel_gain: 0.0,
            noise: 1.0,
        };
        net.add_link(NodeId(0), NodeId(1), degenerate); // rate = 1e-12 clamp
        net.add_link(
            NodeId(1),
            NodeId(2),
            LinkParams::from_rate(f64::MIN_POSITIVE),
        );
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(1e300));
        for metric in [PathMetric::Latency, PathMetric::Hops] {
            let sp = ShortestPaths::dijkstra(&net, NodeId(0), metric);
            for t in net.node_ids() {
                let w = sp.latency_weight(t);
                assert!(!w.is_nan(), "{metric:?} produced NaN for {t}");
                assert!(w >= 0.0);
                assert!(sp.path_to(t).is_some(), "{metric:?} lost {t}");
            }
        }
        // Masking the clamp-rate link cuts v0 off from everyone.
        net.override_link_rate(0, 0.0);
        let sp = ShortestPaths::dijkstra(&net, NodeId(0), PathMetric::Latency);
        for t in [NodeId(1), NodeId(2), NodeId(3)] {
            assert!(sp.latency_weight(t).is_infinite());
            assert!(sp.path_to(t).is_none());
        }
    }

    #[test]
    fn parallel_all_pairs_identical_to_serial() {
        use crate::topology::TopologyConfig;
        for seed in 0..3 {
            let net = TopologyConfig::paper(30).build(seed);
            let serial = AllPairs::build_serial(&net);
            for threads in [2, 3, 4, 8] {
                let par = AllPairs::build_with_threads(&net, threads);
                assert!(
                    par.identical(&serial),
                    "seed={seed} threads={threads} diverged"
                );
            }
        }
    }

    #[test]
    fn masked_link_identical_to_removed_link() {
        let net = diamond();
        let skip = 2; // the direct v0-v3 link
        let mut masked = net.clone();
        masked.override_link_rate(skip, 0.0);
        let mut rebuilt = EdgeNetwork::new();
        for n in net.node_ids() {
            rebuilt.push_server(net.server(n).clone());
        }
        for (idx, l) in net.links().iter().enumerate() {
            if idx != skip {
                rebuilt.add_link(l.a, l.b, l.params);
            }
        }
        let ap_masked = AllPairs::build_serial(&masked);
        let ap_rebuilt = AllPairs::build_serial(&rebuilt);
        assert!(ap_masked.identical(&ap_rebuilt));
    }

    #[test]
    fn reconstructed_paths_match_single_source_trees() {
        use crate::topology::TopologyConfig;
        let net = TopologyConfig::paper(16).build(5);
        let ap = AllPairs::build(&net);
        for a in net.node_ids() {
            let lat = ShortestPaths::dijkstra(&net, a, PathMetric::Latency);
            let hop = ShortestPaths::dijkstra(&net, a, PathMetric::Hops);
            for b in net.node_ids() {
                assert_eq!(ap.path_latency(a, b), lat.path_to(b), "{a}->{b}");
                assert_eq!(ap.path_hops(a, b), hop.path_to(b), "{a}->{b}");
                assert_eq!(ap.pred_latency(a, b), lat.predecessor(b));
                assert_eq!(ap.pred_hop(a, b), hop.predecessor(b));
            }
        }
    }

    #[test]
    fn symmetric_weights_on_undirected_graph() {
        let net = diamond();
        let ap = AllPairs::build(&net);
        for a in net.node_ids() {
            for b in net.node_ids() {
                assert!(
                    (ap.latency_weight(a, b) - ap.latency_weight(b, a)).abs() < 1e-12,
                    "asymmetric latency {a}->{b}"
                );
                assert_eq!(ap.hop_count(a, b), ap.hop_count(b, a));
            }
        }
    }
}

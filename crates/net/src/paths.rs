//! Shortest paths over the substrate network.
//!
//! Two metrics matter in the paper:
//!
//! * **Latency** — the time to push one data unit across a path,
//!   `w(π) = Σ_{l ∈ π} 1/b(l)`. Transferring `r` GB along `π` takes `r·w(π)`
//!   seconds, and the effective channel speed of the whole path is the
//!   harmonic-style composition `𝔹 = 1/w(π)` used for virtual links.
//! * **Hops** — the paper's `π*` return path is the minimum-hop path; we break
//!   hop ties by latency so results are deterministic.
//!
//! [`ShortestPaths`] is a single-source Dijkstra tree; [`AllPairs`] caches the
//! full matrix (the networks in the paper have ≤ 30 nodes, so `O(V·E log V)`
//! precomputation is trivially cheap and every downstream query is O(1)).

use crate::graph::{EdgeNetwork, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which weight the shortest-path computation minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMetric {
    /// Minimize `Σ 1/b(l)` (transfer time per data unit).
    Latency,
    /// Minimize hop count, breaking ties by latency (the paper's `π*`).
    Hops,
}

/// Max-heap entry ordered so the smallest key pops first.
#[derive(PartialEq)]
struct HeapEntry {
    key: (f64, f64),
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest key first.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    metric: PathMetric,
    /// Per node: accumulated latency `Σ 1/b` along the chosen path (seconds
    /// per GB). `f64::INFINITY` for unreachable nodes.
    latency: Vec<f64>,
    /// Per node: hop count along the chosen path. `u32::MAX` if unreachable.
    hops: Vec<u32>,
    /// Predecessor on the chosen path (`None` for source / unreachable).
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Run Dijkstra from `source` under `metric`.
    pub fn compute(net: &EdgeNetwork, source: NodeId, metric: PathMetric) -> Self {
        let n = net.node_count();
        assert!(source.idx() < n, "source {source} out of range");
        let mut latency = vec![f64::INFINITY; n];
        let mut hops = vec![u32::MAX; n];
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        let mut done = vec![false; n];

        latency[source.idx()] = 0.0;
        hops[source.idx()] = 0;

        let key_of = |lat: f64, h: u32| -> (f64, f64) {
            match metric {
                PathMetric::Latency => (lat, h as f64),
                PathMetric::Hops => (h as f64, lat),
            }
        };

        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            key: key_of(0.0, 0),
            node: source,
        });

        while let Some(HeapEntry { node, key }) = heap.pop() {
            let u = node.idx();
            if done[u] {
                continue;
            }
            // Stale entry check.
            if key != key_of(latency[u], hops[u]) {
                continue;
            }
            done[u] = true;
            for nb in net.neighbors(node) {
                let v = nb.node.idx();
                if done[v] {
                    continue;
                }
                let cand_lat = latency[u] + 1.0 / nb.rate;
                let cand_hops = hops[u] + 1;
                if key_of(cand_lat, cand_hops) < key_of(latency[v], hops[v]) {
                    latency[v] = cand_lat;
                    hops[v] = cand_hops;
                    pred[v] = Some(node);
                    heap.push(HeapEntry {
                        key: key_of(cand_lat, cand_hops),
                        node: nb.node,
                    });
                }
            }
        }

        Self {
            source,
            metric,
            latency,
            hops,
            pred,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Metric this tree was computed under.
    pub fn metric(&self) -> PathMetric {
        self.metric
    }

    /// Accumulated `Σ 1/b` to `target` (seconds per GB), `INFINITY` if
    /// unreachable, `0` for the source itself.
    #[inline]
    pub fn latency_weight(&self, target: NodeId) -> f64 {
        self.latency[target.idx()]
    }

    /// Hop count to `target` (`u32::MAX` if unreachable).
    #[inline]
    pub fn hop_count(&self, target: NodeId) -> u32 {
        self.hops[target.idx()]
    }

    /// Effective channel speed `𝔹` of the path to `target` in GB/s
    /// (`1 / Σ 1/b`). Infinite for the source itself, zero if unreachable.
    #[inline]
    pub fn channel_speed(&self, target: NodeId) -> f64 {
        let w = self.latency[target.idx()];
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Reconstruct the node sequence source → target (inclusive), or `None`
    /// if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.latency[target.idx()].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.pred[cur.idx()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }
}

/// All-pairs shortest paths under both metrics, precomputed once per topology.
///
/// `latency[a][b]` is the per-GB transfer weight of the latency-optimal path;
/// `hop_latency[a][b]` is the per-GB weight along the *minimum-hop* path
/// (the paper's `π*`, used for return transfers and virtual links built from
/// `π*`); `hops[a][b]` is that path's hop count.
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    latency: Vec<f64>,
    hop_latency: Vec<f64>,
    hops: Vec<u32>,
}

impl AllPairs {
    /// Precompute both metrics from every source.
    pub fn compute(net: &EdgeNetwork) -> Self {
        let n = net.node_count();
        let mut latency = vec![f64::INFINITY; n * n];
        let mut hop_latency = vec![f64::INFINITY; n * n];
        let mut hops = vec![u32::MAX; n * n];
        for s in net.node_ids() {
            let lat_tree = ShortestPaths::compute(net, s, PathMetric::Latency);
            let hop_tree = ShortestPaths::compute(net, s, PathMetric::Hops);
            let row = s.idx() * n;
            for t in 0..n {
                latency[row + t] = lat_tree.latency_weight(NodeId(t as u32));
                hop_latency[row + t] = hop_tree.latency_weight(NodeId(t as u32));
                hops[row + t] = hop_tree.hop_count(NodeId(t as u32));
            }
        }
        Self {
            n,
            latency,
            hop_latency,
            hops,
        }
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Per-GB weight `Σ 1/b` of the latency-optimal path `a → b`.
    #[inline]
    pub fn latency_weight(&self, a: NodeId, b: NodeId) -> f64 {
        self.latency[a.idx() * self.n + b.idx()]
    }

    /// Per-GB weight along the minimum-hop path `π*(a, b)`.
    #[inline]
    pub fn hop_path_weight(&self, a: NodeId, b: NodeId) -> f64 {
        self.hop_latency[a.idx() * self.n + b.idx()]
    }

    /// Hop count of `π*(a, b)`.
    #[inline]
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a.idx() * self.n + b.idx()]
    }

    /// Effective channel speed `𝔹(l'_{a,b})` of the virtual link riding the
    /// minimum-hop shortest path, GB/s (Section IV.A). Infinite when `a == b`.
    #[inline]
    pub fn virtual_speed(&self, a: NodeId, b: NodeId) -> f64 {
        let w = self.hop_path_weight(a, b);
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Effective channel speed of the latency-optimal path, GB/s. This is the
    /// fastest achievable per-GB speed between `a` and `b` and is what the
    /// routing engine uses for data transfers.
    #[inline]
    pub fn best_speed(&self, a: NodeId, b: NodeId) -> f64 {
        let w = self.latency_weight(a, b);
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Time in seconds to move `r` GB from `a` to `b` along the
    /// latency-optimal path (0 when `a == b`).
    #[inline]
    pub fn transfer_time(&self, a: NodeId, b: NodeId, r: f64) -> f64 {
        if a == b {
            0.0
        } else {
            r * self.latency_weight(a, b)
        }
    }

    /// Time in seconds to move `r` GB along the minimum-hop return path `π*`.
    #[inline]
    pub fn return_time(&self, a: NodeId, b: NodeId, r: f64) -> f64 {
        if a == b {
            0.0
        } else {
            r * self.hop_path_weight(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeServer, LinkParams};

    /// Diamond: v0-v1 fast-fast (2 hops), v0-v3 direct slow (1 hop).
    ///
    /// ```text
    ///     v1
    ///   /    \      v0-v1: 100, v1-v3: 100   (latency 0.02, 2 hops)
    /// v0      v3    v0-v3: 10                (latency 0.1, 1 hop)
    ///   \    /
    ///     v2        v0-v2: 1, v2-v3: 1       (latency 2.0, 2 hops)
    /// ```
    fn diamond() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(100.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(100.0));
        net.add_link(NodeId(0), NodeId(3), LinkParams::from_rate(10.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(1.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(1.0));
        net
    }

    #[test]
    fn latency_metric_prefers_fast_two_hop() {
        let net = diamond();
        let sp = ShortestPaths::compute(&net, NodeId(0), PathMetric::Latency);
        assert!((sp.latency_weight(NodeId(3)) - 0.02).abs() < 1e-12);
        assert_eq!(sp.hop_count(NodeId(3)), 2);
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn hop_metric_prefers_direct_link() {
        let net = diamond();
        let sp = ShortestPaths::compute(&net, NodeId(0), PathMetric::Hops);
        assert_eq!(sp.hop_count(NodeId(3)), 1);
        assert!((sp.latency_weight(NodeId(3)) - 0.1).abs() < 1e-12);
        assert_eq!(sp.path_to(NodeId(3)).unwrap(), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn hop_metric_breaks_ties_by_latency() {
        // Two 2-hop routes to v3; the faster one must win.
        let mut net = EdgeNetwork::new();
        for _ in 0..4 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(1.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(1.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(100.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(100.0));
        let sp = ShortestPaths::compute(&net, NodeId(0), PathMetric::Hops);
        assert_eq!(sp.hop_count(NodeId(3)), 2);
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut net = diamond();
        let lone = net.push_server(EdgeServer::new(1.0, 1.0));
        let sp = ShortestPaths::compute(&net, NodeId(0), PathMetric::Latency);
        assert!(sp.latency_weight(lone).is_infinite());
        assert_eq!(sp.hop_count(lone), u32::MAX);
        assert!(sp.path_to(lone).is_none());
        assert_eq!(sp.channel_speed(lone), 0.0);
    }

    #[test]
    fn source_has_zero_weight_and_infinite_speed() {
        let net = diamond();
        let sp = ShortestPaths::compute(&net, NodeId(0), PathMetric::Latency);
        assert_eq!(sp.latency_weight(NodeId(0)), 0.0);
        assert!(sp.channel_speed(NodeId(0)).is_infinite());
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let net = diamond();
        let ap = AllPairs::compute(&net);
        for s in net.node_ids() {
            let lat = ShortestPaths::compute(&net, s, PathMetric::Latency);
            let hop = ShortestPaths::compute(&net, s, PathMetric::Hops);
            for t in net.node_ids() {
                assert!((ap.latency_weight(s, t) - lat.latency_weight(t)).abs() < 1e-12);
                assert_eq!(ap.hop_count(s, t), hop.hop_count(t));
                assert!((ap.hop_path_weight(s, t) - hop.latency_weight(t)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let net = diamond();
        let ap = AllPairs::compute(&net);
        let t1 = ap.transfer_time(NodeId(0), NodeId(3), 1.0);
        let t5 = ap.transfer_time(NodeId(0), NodeId(3), 5.0);
        assert!((t5 - 5.0 * t1).abs() < 1e-12);
        assert_eq!(ap.transfer_time(NodeId(2), NodeId(2), 100.0), 0.0);
    }

    #[test]
    fn virtual_speed_is_harmonic_composition() {
        // v0 -a- v1 -b- v2 line: 𝔹 = 1/(1/a + 1/b).
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(10.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(40.0));
        let ap = AllPairs::compute(&net);
        let expected = 1.0 / (1.0 / 10.0 + 1.0 / 40.0);
        assert!((ap.virtual_speed(NodeId(0), NodeId(2)) - expected).abs() < 1e-9);
        // The harmonic composition is below the slowest constituent link.
        assert!(ap.virtual_speed(NodeId(0), NodeId(2)) < 10.0);
    }

    #[test]
    fn symmetric_weights_on_undirected_graph() {
        let net = diamond();
        let ap = AllPairs::compute(&net);
        for a in net.node_ids() {
            for b in net.node_ids() {
                assert!(
                    (ap.latency_weight(a, b) - ap.latency_weight(b, a)).abs() < 1e-12,
                    "asymmetric latency {a}->{b}"
                );
                assert_eq!(ap.hop_count(a, b), ap.hop_count(b, a));
            }
        }
    }
}

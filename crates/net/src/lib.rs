//! # socl-net — edge-network substrate for the SoCL reproduction
//!
//! This crate models the substrate topology of the edge network from the SoCL
//! paper (Section III.A): a weighted undirected graph `G(V, L)` whose vertices
//! are edge servers and whose links carry a Shannon-capacity transmission rate
//!
//! ```text
//! b(l_{i,j}) = B(l_{i,j}) · log2(1 + γ · g_{i,j} / N)
//! ```
//!
//! On top of the raw graph it provides:
//!
//! * single-source and all-pairs shortest paths under the *latency* metric
//!   (transfer time of one data unit, `Σ 1/b(l)` along a path) and under the
//!   *hop* metric (`π*`, used by the paper for return paths),
//! * virtual graphs `G'(m_i)` over node subsets, whose virtual links carry the
//!   harmonic-style effective channel speed
//!   `𝔹(l'_{k,q}) = 1 / Σ_{l ∈ π*(v_k,v_q)} 1/b(l)`,
//! * threshold-based partitioning of virtual graphs (connected components of
//!   the `𝔹 > ξ` filtered graph), the first stage of Algorithm 1,
//! * the communication intensity `χ(v_k) = Σ_q 𝔹(l'_{k,q})` used to order
//!   candidate-node checks,
//! * random topology generators matching the paper's evaluation setup
//!   (base stations on a plane, [20,80] GB/s links, [5,20] GFLOP/s servers,
//!   [4,8] storage units).
//!
//! All identifiers are dense newtypes so hot paths index `Vec`s directly.

pub mod fcmp;
pub mod graph;
pub mod incremental;
pub mod kpaths;
pub mod par;
pub mod paths;
pub mod resilience;
pub mod time;
pub mod topology;
pub mod virtual_graph;

pub use fcmp::OrdF64;
pub use graph::{ConnScratch, EdgeNetwork, EdgeServer, Link, LinkParams, NodeId};
pub use incremental::{ApspCache, CacheStats};
pub use kpaths::{k_shortest_paths, WeightedPath};
pub use par::{effective_threads, lock_recover, parallel_worthwhile, set_threads};
pub use paths::{AllPairs, PathMetric, ShortestPaths};
pub use resilience::{link_criticality, node_criticality, FailureImpact};
pub use time::Stopwatch;
pub use topology::{TopologyConfig, TopologyKind};
pub use virtual_graph::{communication_intensity, Partition, VgCache, VirtualGraph};

#[cfg(test)]
mod proptests;

//! Deterministic fork-join parallelism for the hot paths.
//!
//! The engine's parallelism contract is simple: **thread count never changes
//! results**. Every fan-out in the workspace goes through [`par_map_indexed`],
//! which assigns work by index, collects per-chunk outputs, and reassembles
//! them in index order — so the output of a parallel run is, element for
//! element, the output of the serial run. Summations downstream then fold in
//! index order too, keeping floating-point results bit-identical.
//!
//! The pool size is a process-global knob ([`set_threads`] / the
//! `SOCL_THREADS` environment variable / `--threads` on the CLI), defaulting
//! to the machine's available parallelism. Work is distributed by an atomic
//! chunk cursor (work stealing at chunk granularity), so uneven per-item cost
//! — e.g. Dijkstra trees from well- vs poorly-connected sources — still load
//! balances.
//!
//! Threads are spawned per call with [`std::thread::scope`]. That costs a few
//! tens of microseconds, which is noise for the workloads this guards
//! (all-pairs Dijkstra, per-request routing DP sweeps) but real for tiny
//! inputs — callers gate on a work estimate via [`parallel_worthwhile`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Global thread-count override: 0 = auto (env, then hardware).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the worker-thread count for all subsequent parallel sections.
/// `0` restores auto-detection (`SOCL_THREADS`, then hardware parallelism);
/// `1` forces every hot path serial.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// The number of worker threads a parallel section will use right now.
pub fn effective_threads() -> usize {
    let n = THREADS.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    // LINT-ALLOW(T1-nondet-taint): the thread count only partitions work;
    // PR 2's equivalence proptests prove output is identical for any count.
    if let Ok(v) = std::env::var("SOCL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    // LINT-ALLOW(T1-nondet-taint): hardware parallelism picks the worker
    // count, never the result — par_map_indexed_with is order-preserving.
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when a fan-out over `items` units of roughly `unit_cost` abstract
/// operations each is worth the thread spawn overhead.
#[inline]
pub fn parallel_worthwhile(items: usize, unit_cost: usize) -> bool {
    effective_threads() > 1 && items >= 2 && items.saturating_mul(unit_cost) >= 200_000
}

/// Acquire `m`'s guard, absorbing poison instead of panicking.
///
/// A poisoned lock means another thread panicked while holding the guard.
/// Every caller in this workspace either re-raises that panic anyway
/// (`std::thread::scope` propagates worker panics at join) or tolerates a
/// possibly part-written value (per-shard counters that are only read for
/// monotonic snapshots), so recovering the guard keeps library code
/// panic-free without hiding the original failure. This is the sanctioned
/// lock entry point the `X1`/`X2` lint passes recognize — prefer it over
/// open-coded `match m.lock()` poison handling.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Map `f` over `0..n` on `threads` workers, returning results in index
/// order. Deterministic: the output is identical to `(0..n).map(f)` for any
/// thread count, including 1 (which short-circuits to the serial loop).
pub fn par_map_indexed_with<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // ~4 chunks per worker: coarse enough to amortize the cursor, fine
    // enough to balance skewed per-item costs.
    let chunk = n.div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let out: Vec<T> = (start..end).map(&f).collect();
                // A poisoned lock means another worker's `f` panicked *inside
                // the critical section* (only possible via OOM-abort in
                // `push`); `std::thread::scope` will re-raise that panic at
                // join, so pushing through the poison is sound.
                let mut guard = lock_recover(&parts);
                guard.push((start, out));
            });
        }
    });
    // Reaching this line means `scope` joined every worker without a panic,
    // so the lock cannot be poisoned; recover defensively instead of
    // unwrapping to keep the library panic-free.
    let mut parts = parts
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    parts.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut chunk) in parts {
        out.append(&mut chunk);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// [`par_map_indexed_with`] on the globally configured thread count.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(n, effective_threads(), f)
}

/// Map `f` over a slice on the configured pool, preserving order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Map `f` over a slice with a per-worker scratch value, preserving order.
///
/// `new_scratch` runs once per worker (and once on the serial path), so a
/// fan-out over `n` items performs `threads` scratch constructions instead
/// of `n` — the hot-loop allocation pattern `A1-hot-alloc` exists to
/// enforce. Determinism contract: `f` must produce the same output for a
/// given item regardless of what a previous call left in the scratch —
/// scratch exists to recycle allocations, never to carry state — so
/// results stay identical for any thread count, exactly like
/// [`par_map_with`].
pub fn par_map_scratch_with<I, T, S, N, F>(
    items: &[I],
    threads: usize,
    new_scratch: N,
    f: F,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> T + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        let mut scratch = new_scratch();
        return items.iter().map(|it| f(&mut scratch, it)).collect();
    }
    let chunk = n.div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = new_scratch();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let out: Vec<T> = (start..end).map(|i| f(&mut scratch, &items[i])).collect();
                    // Poison recovery: same argument as `par_map_indexed_with`.
                    let mut guard = lock_recover(&parts);
                    guard.push((start, out));
                }
            });
        }
    });
    let mut parts = parts
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    parts.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut chunk) in parts {
        out.append(&mut chunk);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Map `f` over a slice on an explicit thread count, preserving order.
pub fn par_map_with<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed_with(items.len(), threads, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_thread_count() {
        let n = 1000;
        let serial: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 7, 16, 64] {
            let par = par_map_indexed_with(n, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map_indexed_with(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_with(1, 8, |i| i + 1), vec![1]);
        assert_eq!(par_map_indexed_with(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn slice_variant_matches_iter_map() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let serial: Vec<f64> = items.iter().map(|x| x * 2.0 + 1.0).collect();
        assert_eq!(par_map_with(&items, 5, |x| x * 2.0 + 1.0), serial);
        assert_eq!(par_map(&items, |x| x * 2.0 + 1.0), serial);
    }

    #[test]
    fn scratch_variant_matches_iter_map_for_any_thread_count() {
        let items: Vec<usize> = (0..513).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 5, 16] {
            let got = par_map_scratch_with(
                &items,
                threads,
                || Vec::<usize>::with_capacity(8),
                |buf, &x| {
                    // Deliberately leave state behind: the next call must
                    // clear it, proving results don't depend on carry-over.
                    buf.clear();
                    buf.push(x * 3 + 1);
                    buf.iter().copied().sum::<usize>()
                },
            );
            assert_eq!(got, serial, "threads={threads}");
        }
        assert_eq!(
            par_map_scratch_with(&[] as &[usize], 4, || 0u8, |_, &x| x),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn thread_override_roundtrips() {
        let before = effective_threads();
        set_threads(3);
        assert_eq!(effective_threads(), 3);
        set_threads(0);
        assert!(effective_threads() >= 1);
        // Restore whatever auto resolved to for other tests.
        let _ = before;
    }

    #[test]
    fn worthwhile_requires_threads_and_volume() {
        set_threads(1);
        assert!(!parallel_worthwhile(1_000_000, 1_000_000));
        set_threads(4);
        assert!(parallel_worthwhile(100, 10_000));
        assert!(!parallel_worthwhile(10, 100));
        set_threads(0);
    }
}

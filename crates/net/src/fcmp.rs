//! NaN-safe float comparison — the one sanctioned way to order `f64`s.
//!
//! The workspace invariant (DESIGN.md "Enforced invariants", rule
//! `L1-float-cmp`) bans raw `partial_cmp` on computed floats: a NaN produced
//! by a degenerate input (zero-rate link, empty mean, 0/0 ratio) makes
//! `partial_cmp` return `None`, and the usual escapes — `.unwrap()` (panic)
//! or `.unwrap_or(Equal)` (silently treats NaN as equal to *everything*,
//! corrupting sort/heap invariants) — are both wrong. `f64::total_cmp` gives
//! a total order (`-NaN < -∞ < … < +∞ < +NaN`) under which every comparison
//! is defined and deterministic.
//!
//! This module is defined once in `socl-net` and re-exported by the facade
//! crate; downstream crates (`socl-milp`, `socl-baselines`, …) use it rather
//! than duplicating helpers, so the NaN policy has exactly one home.

use std::cmp::Ordering;

/// Total-order comparison of two floats (`f64::total_cmp` with call-site
/// ergonomics for `sort_by`/`min_by`/`max_by`: `v.sort_by(fcmp::total)`).
#[inline]
pub fn total(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Key-extracting total-order comparator:
/// `items.max_by(fcmp::by_key(|x| x.score))`.
#[inline]
pub fn by_key<T, F: Fn(&T) -> f64>(key: F) -> impl Fn(&T, &T) -> Ordering {
    move |a, b| key(a).total_cmp(&key(b))
}

/// Strict "less than" under the total order: `true` iff `a` sorts before
/// `b` per [`f64::total_cmp`]. Unlike the raw `<` operator this is total —
/// a NaN operand yields a deterministic answer (`-NaN` sorts below all
/// numbers, `+NaN` above) instead of always-`false`, so selection loops
/// cannot silently skip entries.
#[inline]
pub fn lt(a: f64, b: f64) -> bool {
    total(&a, &b) == Ordering::Less
}

/// Sort a float slice ascending under the total order (NaNs sort last).
#[inline]
pub fn sort_f64s(v: &mut [f64]) {
    v.sort_by(total);
}

/// An `f64` with the total order as its `Ord` — the sanctioned way to put a
/// float key into a `BinaryHeap`, `BTreeMap` or `sort`/`binary_search`.
///
/// `Eq`/`Ord` are consistent (both derive from `total_cmp`), so heap and
/// tree invariants hold even for NaN keys.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(x: f64) -> Self {
        OrdF64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_orders_nan_last() {
        let mut v = vec![3.0, f64::NAN, -1.0, f64::INFINITY, 0.0];
        sort_f64s(&mut v);
        assert_eq!(&v[..4], &[-1.0, 0.0, 3.0, f64::INFINITY]);
        assert!(v[4].is_nan());
    }

    #[test]
    fn by_key_selects_deterministically() {
        let items = [(0usize, 2.0f64), (1, 5.0), (2, 5.0), (3, f64::NAN)];
        // NaN sorts above every finite value under the total order, so a
        // NaN-keyed item wins max_by — loudly visible, never silently equal.
        let max = items.iter().max_by(by_key(|x: &&(usize, f64)| x.1));
        assert_eq!(max.map(|m| m.0), Some(3));
        let finite = &items[..3];
        let max = finite.iter().max_by(by_key(|x: &&(usize, f64)| x.1));
        // max_by returns the *last* maximum; with stable index-ordered input
        // the tie-break is deterministic.
        assert_eq!(max.map(|m| m.0), Some(2));
    }

    #[test]
    fn ordf64_heap_survives_nan() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for x in [1.0, f64::NAN, -2.0, 7.5] {
            h.push(OrdF64(x));
        }
        // NaN pops first (sorts above +inf), then descending finite order.
        assert!(h.pop().is_some_and(|x| x.0.is_nan()));
        assert_eq!(h.pop().map(|x| x.0), Some(7.5));
        assert_eq!(h.pop().map(|x| x.0), Some(1.0));
        assert_eq!(h.pop().map(|x| x.0), Some(-2.0));
        assert!(h.pop().is_none());
    }
}

//! Random topology generation matching the paper's evaluation setup.
//!
//! Section V.A: edge servers with [5, 20] GFLOP/s compute, [4, 8] storage
//! units and [20, 80] GB/s link bandwidth; base stations placed near the
//! National Stadium in Beijing. We reproduce the statistical shape with a
//! seeded planar generator: nodes are scattered on a disk (optionally in
//! clusters, mimicking base-station groupings around a venue), connected by a
//! distance-biased random graph that is then patched to be connected.

use crate::graph::{EdgeNetwork, EdgeServer, LinkParams, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Spatial layout of generated base stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Uniform placement on a disk.
    UniformDisk,
    /// A few dense clusters on the disk (venue-like, the paper's stadium
    /// scenario): most nodes sit in hotspots, a few stragglers in between.
    Clustered {
        /// Number of hotspots (≥ 1).
        clusters: usize,
    },
    /// A ring with chords — produces many degree-2 nodes, useful for
    /// exercising the Theorem 1 candidate filter.
    RingWithChords,
}

/// Parameters of the random topology generator.
///
/// ```
/// use socl_net::TopologyConfig;
///
/// let net = TopologyConfig::paper(12).build(7);
/// assert_eq!(net.node_count(), 12);
/// assert!(net.is_connected());
/// // Same seed, same network:
/// assert_eq!(net.link_count(), TopologyConfig::paper(12).build(7).link_count());
/// ```
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of edge servers.
    pub nodes: usize,
    /// Spatial layout.
    pub kind: TopologyKind,
    /// Disk radius in meters.
    pub radius_m: f64,
    /// Per-node compute range in GFLOP/s (paper: [5, 20]).
    pub compute_gflops: (f64, f64),
    /// Per-node storage range in units (paper: [4, 8]).
    pub storage_units: (f64, f64),
    /// Per-link raw bandwidth range in GB/s (paper: [20, 80]).
    pub bandwidth: (f64, f64),
    /// Average node degree targeted by the distance-biased wiring.
    pub mean_degree: f64,
    /// Transmission power γ (W).
    pub tx_power: f64,
    /// Noise power N (W).
    pub noise: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            kind: TopologyKind::Clustered { clusters: 3 },
            radius_m: 1_000.0,
            compute_gflops: (5.0, 20.0),
            storage_units: (4.0, 8.0),
            bandwidth: (20.0, 80.0),
            mean_degree: 3.5,
            tx_power: 1.0,
            noise: 1.0,
        }
    }
}

impl TopologyConfig {
    /// Convenience constructor with the paper's parameter ranges and `n` nodes.
    pub fn paper(n: usize) -> Self {
        Self {
            nodes: n,
            ..Self::default()
        }
    }

    /// Generate a connected random topology with the given seed.
    ///
    /// Determinism: the same `(config, seed)` always produces the same
    /// network, independent of platform.
    pub fn build(&self, seed: u64) -> EdgeNetwork {
        assert!(self.nodes >= 1, "topology needs at least one node");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = EdgeNetwork::new();

        let positions = self.positions(&mut rng);
        for &(x, y) in &positions {
            let compute = rng.gen_range(self.compute_gflops.0..=self.compute_gflops.1);
            let storage = rng.gen_range(self.storage_units.0..=self.storage_units.1);
            let mut server = EdgeServer::new(compute, storage);
            server.position = (x, y);
            net.push_server(server);
        }

        self.wire(&mut net, &mut rng);
        self.connect_components(&mut net, &mut rng);
        debug_assert!(net.is_connected());
        net
    }

    fn positions(&self, rng: &mut StdRng) -> Vec<(f64, f64)> {
        let n = self.nodes;
        match self.kind {
            TopologyKind::UniformDisk => (0..n)
                .map(|_| {
                    let r = self.radius_m * rng.gen::<f64>().sqrt();
                    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                    (r * theta.cos(), r * theta.sin())
                })
                .collect(),
            TopologyKind::Clustered { clusters } => {
                let clusters = clusters.max(1);
                let centers: Vec<(f64, f64)> = (0..clusters)
                    .map(|_| {
                        let r = self.radius_m * 0.7 * rng.gen::<f64>().sqrt();
                        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                        (r * theta.cos(), r * theta.sin())
                    })
                    .collect();
                (0..n)
                    .map(|_| {
                        let c = centers[rng.gen_range(0..clusters)];
                        let spread = self.radius_m * 0.15;
                        (
                            c.0 + rng.gen_range(-spread..=spread),
                            c.1 + rng.gen_range(-spread..=spread),
                        )
                    })
                    .collect()
            }
            TopologyKind::RingWithChords => (0..n)
                .map(|i| {
                    let theta = std::f64::consts::TAU * i as f64 / n as f64;
                    (self.radius_m * theta.cos(), self.radius_m * theta.sin())
                })
                .collect(),
        }
    }

    fn random_link_params(&self, rng: &mut StdRng) -> LinkParams {
        LinkParams {
            bandwidth: rng.gen_range(self.bandwidth.0..=self.bandwidth.1),
            tx_power: self.tx_power,
            // Gain so that SNR sits near 1 with mild variance; the Shannon
            // term then stays O(1) and rates land in the configured band.
            channel_gain: rng.gen_range(0.5..=2.0),
            noise: self.noise,
        }
    }

    fn wire(&self, net: &mut EdgeNetwork, rng: &mut StdRng) {
        let n = net.node_count();
        if n < 2 {
            return;
        }
        match self.kind {
            TopologyKind::RingWithChords => {
                for i in 0..n {
                    let a = NodeId(i as u32);
                    let b = NodeId(((i + 1) % n) as u32);
                    if i + 1 < n || n > 2 {
                        let p = self.random_link_params(rng);
                        net.add_link(a, b, p);
                    }
                }
                // A few chords so some nodes exceed degree 2.
                if n < 4 {
                    return;
                }
                let chords = (n / 4).max(1);
                for _ in 0..chords {
                    let a = rng.gen_range(0..n);
                    let off = rng.gen_range(2..n - 1);
                    let b = (a + off) % n;
                    if a != b
                        && net
                            .direct_rate(NodeId(a as u32), NodeId(b as u32))
                            .is_none()
                    {
                        let p = self.random_link_params(rng);
                        net.add_link(NodeId(a as u32), NodeId(b as u32), p);
                    }
                }
            }
            _ => {
                // Distance-biased wiring: probability of a link decays with
                // distance (Waxman-style), scaled to hit the target degree.
                let target_links = (self.mean_degree * n as f64 / 2.0).ceil();
                let pairs = (n * (n - 1) / 2) as f64;
                let base_p = (target_links / pairs).min(1.0);
                let scale = self.radius_m.max(1.0);
                for a in 0..n {
                    for b in (a + 1)..n {
                        let d = net.distance(NodeId(a as u32), NodeId(b as u32));
                        // Waxman kernel: closer pairs are ~4x more likely than
                        // diameter-distant pairs.
                        let p = base_p * 2.0 * (-d / (0.8 * scale)).exp() * 2.0;
                        if rng.gen::<f64>() < p.min(1.0) {
                            let params = self.random_link_params(rng);
                            net.add_link(NodeId(a as u32), NodeId(b as u32), params);
                        }
                    }
                }
            }
        }
    }

    /// Join remaining components by linking each component's node closest to
    /// the largest component.
    fn connect_components(&self, net: &mut EdgeNetwork, rng: &mut StdRng) {
        loop {
            let comps = components(net);
            if comps.len() <= 1 {
                return;
            }
            // Attach every smaller component to the first by nearest pair.
            let main = &comps[0];
            let other = &comps[1];
            let mut best = (f64::INFINITY, main[0], other[0]);
            for &a in main {
                for &b in other {
                    let d = net.distance(a, b);
                    if d < best.0 {
                        best = (d, a, b);
                    }
                }
            }
            let p = self.random_link_params(rng);
            net.add_link(best.1, best.2, p);
        }
    }
}

/// Connected components, largest first.
fn components(net: &EdgeNetwork) -> Vec<Vec<NodeId>> {
    let n = net.node_count();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in net.node_ids() {
        if seen[start.idx()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start.idx()] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for nb in net.neighbors(u) {
                if !seen[nb.node.idx()] {
                    seen[nb.node.idx()] = true;
                    stack.push(nb.node);
                }
            }
        }
        comps.push(comp);
    }
    comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_topologies_are_connected() {
        for n in [1, 2, 5, 10, 20, 30] {
            for seed in 0..5 {
                let net = TopologyConfig::paper(n).build(seed);
                assert_eq!(net.node_count(), n);
                assert!(net.is_connected(), "n={n} seed={seed} disconnected");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TopologyConfig::paper(15);
        let a = cfg.build(42);
        let b = cfg.build(42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la.a, lb.a);
            assert_eq!(la.b, lb.b);
            assert!((la.rate() - lb.rate()).abs() < 1e-12);
        }
        for n in a.node_ids() {
            assert_eq!(a.server(n), b.server(n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TopologyConfig::paper(15);
        let a = cfg.build(1);
        let b = cfg.build(2);
        // Positions almost surely differ.
        let same = a
            .node_ids()
            .all(|n| a.server(n).position == b.server(n).position);
        assert!(!same);
    }

    #[test]
    fn node_attributes_in_paper_ranges() {
        let net = TopologyConfig::paper(30).build(7);
        for n in net.node_ids() {
            let s = net.server(n);
            assert!((5.0..=20.0).contains(&s.compute_gflops));
            assert!((4.0..=8.0).contains(&s.storage_units));
        }
        for l in net.links() {
            assert!((20.0..=80.0).contains(&l.params.bandwidth));
        }
    }

    #[test]
    fn ring_topology_has_degree_two_nodes() {
        let cfg = TopologyConfig {
            nodes: 12,
            kind: TopologyKind::RingWithChords,
            ..TopologyConfig::default()
        };
        let net = cfg.build(3);
        assert!(net.is_connected());
        let deg2 = net.node_ids().filter(|&n| net.degree(n) == 2).count();
        assert!(deg2 > 0, "ring should retain some degree-2 nodes");
        let deg3 = net.node_ids().filter(|&n| net.degree(n) > 2).count();
        assert!(deg3 > 0, "chords should create some degree>2 nodes");
    }

    #[test]
    fn single_node_topology_is_valid() {
        let net = TopologyConfig::paper(1).build(0);
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.link_count(), 0);
        assert!(net.is_connected());
    }
}

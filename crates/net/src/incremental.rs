//! Incremental all-pairs shortest-path maintenance.
//!
//! PR 1's fault machinery perturbs a handful of links per slot (a node crash
//! masks its incident links, a degradation rescales one rate, a repair
//! restores it), yet the simulator rebuilt the full `O(V · E log V)` APSP
//! matrix every time anything changed. [`ApspCache`] keeps a masked working
//! copy of the topology plus the [`AllPairs`] matrix and, on each batch of
//! link-rate changes, recomputes **only the source rows a change can actually
//! touch**:
//!
//! * **Rate increase** (repair / restore, i.e. weight `1/b` decrease): row `s`
//!   is dirty iff the cheaper edge can now offer a path at least as good as an
//!   existing one — `d(s,a) + w' ≤ d(s,b)` or symmetric. The comparison is
//!   deliberately **non-strict** so that tie-induced predecessor changes are
//!   recomputed too, keeping results bit-identical to a full rebuild. The
//!   minimum-hop metric uses the lexicographic `(hops, hop-latency)` key.
//! * **Rate decrease** (degrade / crash, i.e. weight increase): row `s` is
//!   dirty iff the edge is a *tree edge* of row `s` under either metric
//!   (`pred(s,b) = a` or `pred(s,a) = b`). Dijkstra's relaxation is strict, so
//!   every other row keeps bit-identical distances *and* predecessors.
//!
//! Dirtiness is tracked **per metric half**: the latency and hop trees of a
//! source are independent, so a change that only disturbs one metric's tree
//! leaves the other half bit-identical and only the dirty half is repaired
//! (fanned out on the thread pool). Halves dirtied *only by weight increases*
//! take a further shortcut — only descendants of a changed tree edge can be
//! affected, so a boundary-seeded Dijkstra re-runs just those subtrees while
//! reproducing the full run's relaxation order exactly (see
//! `paths::repaired_half_increase`). Halves dirtied only by *decreases* run a
//! seeded improvement pass over the nodes whose keys actually improve, then
//! re-derive predecessors pointwise where an input changed (see
//! `paths::repaired_half_decrease`). The maintained matrix is bit-identical to
//! `AllPairs::build` on the masked topology — the property the equivalence
//! proptests assert after every event of random fault schedules. A generation
//! counter increments on every effective change so downstream caches
//! (memoized virtual graphs, solver warm state) know when to invalidate.

use crate::graph::{EdgeNetwork, NodeId};
use crate::paths::AllPairs;

/// Counters describing how much work the cache avoided.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Full `AllPairs::build` passes (construction + explicit rebuilds).
    pub full_rebuilds: u64,
    /// Incremental `apply` batches that changed at least one rate.
    pub incremental_updates: u64,
    /// Source rows recomputed (at least one metric half) by incremental
    /// updates.
    pub rows_recomputed: u64,
    /// Source rows proven clean and kept as-is.
    pub rows_reused: u64,
    /// Metric halves recomputed with a full per-source Dijkstra (decrease-
    /// dirtied halves).
    pub halves_recomputed: u64,
    /// Metric halves fixed with the subtree-limited increase repair
    /// (`halves_recomputed + halves_repaired ≤ 2 × rows_recomputed`; the gap
    /// is work saved by per-metric dirtiness).
    pub halves_repaired: u64,
}

/// An [`AllPairs`] matrix maintained incrementally under link-rate changes.
#[derive(Debug, Clone)]
pub struct ApspCache {
    /// Masked working copy of the substrate (overridden rates model faults).
    net: EdgeNetwork,
    ap: AllPairs,
    generation: u64,
    stats: CacheStats,
}

fn weight_of(rate: f64) -> f64 {
    if rate > 0.0 {
        1.0 / rate
    } else {
        f64::INFINITY
    }
}

/// Can applying the change `(a, b, old_w → new_w)` alter the **latency** half
/// of source row `s`? Evaluated against the pre-change matrix; conservative
/// (may say yes when nothing changes) but never misses a row whose distances
/// or predecessors would differ after a full rebuild.
fn lat_row_dirty(ap: &AllPairs, s: NodeId, a: NodeId, b: NodeId, old_w: f64, new_w: f64) -> bool {
    if new_w < old_w {
        let d_sa = ap.latency_weight(s, a);
        let d_sb = ap.latency_weight(s, b);
        d_sa + new_w <= d_sb || d_sb + new_w <= d_sa
    } else {
        ap.pred_latency(s, b) == Some(a) || ap.pred_latency(s, a) == Some(b)
    }
}

/// Same question for the **hop** half, under the lexicographic
/// `(hops, hop-latency)` key.
fn hop_row_dirty(ap: &AllPairs, s: NodeId, a: NodeId, b: NodeId, old_w: f64, new_w: f64) -> bool {
    if new_w < old_w {
        let offer =
            |h: u32, hl: f64, h_t: u32, hl_t: f64| (h.saturating_add(1), hl + new_w) <= (h_t, hl_t);
        let (h_sa, h_sb) = (ap.hop_count(s, a), ap.hop_count(s, b));
        let (hl_sa, hl_sb) = (ap.hop_path_weight(s, a), ap.hop_path_weight(s, b));
        offer(h_sa, hl_sa, h_sb, hl_sb) || offer(h_sb, hl_sb, h_sa, hl_sa)
    } else {
        ap.pred_hop(s, b) == Some(a) || ap.pred_hop(s, a) == Some(b)
    }
}

/// How one metric half of a dirty row gets fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HalfMode {
    /// Proven clean — keep bit-identical.
    Clean,
    /// Dirtied by both increases and decreases — full per-source Dijkstra.
    Full,
    /// Dirtied only by weight increases — subtree-limited repair.
    IncRepair,
    /// Dirtied only by weight decreases — seeded improvement repair.
    DecRepair,
}

impl ApspCache {
    /// Build the cache over a pristine topology (one full compute).
    pub fn new(net: &EdgeNetwork) -> Self {
        let net = net.clone();
        let ap = AllPairs::build(&net);
        Self {
            net,
            ap,
            generation: 0,
            stats: CacheStats {
                full_rebuilds: 1,
                ..CacheStats::default()
            },
        }
    }

    /// The maintained matrix (bit-identical to a full rebuild on
    /// [`network`](Self::network)).
    #[inline]
    pub fn all_pairs(&self) -> &AllPairs {
        &self.ap
    }

    /// The masked working topology the matrix describes.
    #[inline]
    pub fn network(&self) -> &EdgeNetwork {
        &self.net
    }

    /// Monotone counter bumped on every effective topology change; downstream
    /// caches key their validity on it.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Work-avoidance counters.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The pristine (fault-free) rate of link `idx`, from its physical
    /// parameters — what a repair restores.
    #[inline]
    pub fn base_rate(&self, idx: usize) -> f64 {
        self.net.links()[idx].rate()
    }

    /// Discard the matrix and recompute from scratch (diagnostics / tests).
    pub fn rebuild(&mut self) {
        self.ap = AllPairs::build(&self.net);
        self.stats.full_rebuilds += 1;
    }

    /// Apply a batch of effective link-rate changes (`0.0` masks a link out)
    /// and repair the matrix incrementally. No-op entries are filtered, so
    /// callers can pass their full desired state.
    pub fn apply(&mut self, changes: &[(usize, f64)]) {
        let mut effective: Vec<(NodeId, NodeId, f64, f64)> = Vec::new();
        for &(idx, rate) in changes {
            let old = self.net.effective_rate(idx);
            let new = rate.max(0.0);
            if old.to_bits() == new.to_bits() {
                continue;
            }
            let l = self.net.links()[idx];
            self.net.override_link_rate(idx, new);
            effective.push((l.a, l.b, weight_of(old), weight_of(new)));
        }
        if effective.is_empty() {
            return;
        }
        self.generation += 1;
        let n = self.net.node_count();
        // Halves dirtied only by weight increases (degrade / crash) take the
        // subtree-limited repair; halves dirtied only by decreases (restore)
        // take the seeded improvement repair. A half dirtied by both kinds in
        // one batch falls back to the full per-source Dijkstra.
        let inc_edges: Vec<(NodeId, NodeId)> = effective
            .iter()
            .filter(|&&(_, _, ow, nw)| nw > ow)
            .map(|&(a, b, _, _)| (a, b))
            .collect();
        let dec_edges: Vec<(NodeId, NodeId)> = effective
            .iter()
            .filter(|&&(_, _, ow, nw)| nw < ow)
            .map(|&(a, b, _, _)| (a, b))
            .collect();
        let mode_of = |dec: bool, inc: bool| match (dec, inc) {
            (false, false) => HalfMode::Clean,
            (true, true) => HalfMode::Full,
            (false, true) => HalfMode::IncRepair,
            (true, false) => HalfMode::DecRepair,
        };
        let mut work: Vec<(NodeId, HalfMode, HalfMode)> = Vec::new();
        let (mut full_halves, mut repaired) = (0usize, 0usize);
        for s in (0..n as u32).map(NodeId) {
            let (mut lat_dec, mut lat_inc) = (false, false);
            let (mut hop_dec, mut hop_inc) = (false, false);
            for &(a, b, ow, nw) in &effective {
                if lat_row_dirty(&self.ap, s, a, b, ow, nw) {
                    if nw < ow {
                        lat_dec = true;
                    } else {
                        lat_inc = true;
                    }
                }
                if hop_row_dirty(&self.ap, s, a, b, ow, nw) {
                    if nw < ow {
                        hop_dec = true;
                    } else {
                        hop_inc = true;
                    }
                }
            }
            let lat = mode_of(lat_dec, lat_inc);
            let hop = mode_of(hop_dec, hop_inc);
            if lat != HalfMode::Clean || hop != HalfMode::Clean {
                work.push((s, lat, hop));
                full_halves +=
                    usize::from(lat == HalfMode::Full) + usize::from(hop == HalfMode::Full);
                repaired += usize::from(matches!(lat, HalfMode::IncRepair | HalfMode::DecRepair))
                    + usize::from(matches!(hop, HalfMode::IncRepair | HalfMode::DecRepair));
            }
        }
        self.stats.incremental_updates += 1;
        self.stats.rows_recomputed += work.len() as u64;
        self.stats.rows_reused += (n - work.len()) as u64;
        self.stats.halves_recomputed += full_halves as u64;
        self.stats.halves_repaired += repaired as u64;
        let net = &self.net;
        let ap = &self.ap;
        // A subtree repair costs roughly 1/16 of a full half on average.
        let est = full_halves * 16 + repaired;
        let threads = if crate::par::parallel_worthwhile(est, net.link_count() * 16) {
            crate::par::effective_threads()
        } else {
            1
        };
        let repairs = crate::par::par_map_with(&work, threads, |&(s, lat, hop)| {
            let lat_half = match lat {
                HalfMode::Clean => None,
                HalfMode::Full => Some(AllPairs::fresh_lat_half(net, s)),
                HalfMode::IncRepair => Some(ap.repaired_lat_half_increase(net, s, &inc_edges)),
                HalfMode::DecRepair => Some(ap.repaired_lat_half_decrease(net, s, &dec_edges)),
            };
            let hop_half = match hop {
                HalfMode::Clean => None,
                HalfMode::Full => Some(AllPairs::fresh_hop_half(net, s)),
                HalfMode::IncRepair => Some(ap.repaired_hop_half_increase(net, s, &inc_edges)),
                HalfMode::DecRepair => Some(ap.repaired_hop_half_decrease(net, s, &dec_edges)),
            };
            (lat_half, hop_half)
        });
        for (&(s, _, _), (lat_half, hop_half)) in work.iter().zip(repairs) {
            if let Some(half) = lat_half {
                self.ap.install_lat_half(s, half);
            }
            if let Some(half) = hop_half {
                self.ap.install_hop_half(s, half);
            }
        }
    }

    /// Set one link's effective rate (`0.0` masks it out).
    pub fn set_link_rate(&mut self, idx: usize, rate: f64) {
        self.apply(&[(idx, rate)]);
    }

    /// Mask every link incident to `node` (a node crash: the vertex stays so
    /// indices remain stable, exactly like the resilience module's
    /// remove-node semantics).
    pub fn mask_node(&mut self, node: NodeId) {
        let changes: Vec<(usize, f64)> = self
            .net
            .neighbors(node)
            .iter()
            .map(|nb| (nb.link, 0.0))
            .collect();
        self.apply(&changes);
    }

    /// Restore every link incident to `node` to its pristine rate (a node
    /// repair). Links whose other endpoint is also masked elsewhere must be
    /// re-masked by the caller ([`sync_rates`](Self::sync_rates) handles the
    /// general case).
    pub fn unmask_node(&mut self, node: NodeId) {
        let changes: Vec<(usize, f64)> = self
            .net
            .neighbors(node)
            .iter()
            .map(|nb| (nb.link, self.net.links()[nb.link].rate()))
            .collect();
        self.apply(&changes);
    }

    /// Reconcile the cache with a full desired effective-rate vector (one
    /// entry per link; `0.0` = masked). Only actual differences trigger work —
    /// the natural per-slot entry point for the simulator, which derives the
    /// vector from its alive/degradation state.
    pub fn sync_rates(&mut self, desired: &[f64]) {
        assert_eq!(desired.len(), self.net.link_count(), "rate vector length");
        let changes: Vec<(usize, f64)> = desired.iter().copied().enumerate().collect();
        self.apply(&changes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeServer, LinkParams};
    use crate::topology::TopologyConfig;

    fn rebuilt(cache: &ApspCache) -> AllPairs {
        AllPairs::build_serial(cache.network())
    }

    #[test]
    fn degrade_and_restore_match_full_rebuild() {
        let net = TopologyConfig::paper(20).build(11);
        let mut cache = ApspCache::new(&net);
        for idx in 0..net.link_count().min(6) {
            let base = cache.base_rate(idx);
            cache.set_link_rate(idx, base * 0.25);
            assert!(
                cache.all_pairs().identical(&rebuilt(&cache)),
                "degrade {idx}"
            );
            cache.set_link_rate(idx, base);
            assert!(
                cache.all_pairs().identical(&rebuilt(&cache)),
                "restore {idx}"
            );
        }
        // Fully restored: back to the pristine matrix and fingerprint.
        assert!(cache.all_pairs().identical(&AllPairs::build_serial(&net)));
        assert_eq!(cache.network().fingerprint(), net.fingerprint());
    }

    #[test]
    fn node_crash_matches_masked_rebuild_and_skips_clean_rows() {
        let net = TopologyConfig::paper(24).build(3);
        let mut cache = ApspCache::new(&net);
        cache.mask_node(NodeId(5));
        assert!(cache.all_pairs().identical(&rebuilt(&cache)));
        cache.unmask_node(NodeId(5));
        assert!(cache.all_pairs().identical(&AllPairs::build_serial(&net)));
        let stats = cache.stats();
        assert_eq!(stats.incremental_updates, 2);
        assert!(stats.rows_recomputed > 0);
    }

    #[test]
    fn irrelevant_change_recomputes_no_rows() {
        // v0 =={50, 1}== v1 --50-- v2: the slow parallel link is dominated
        // under both metrics, so improving it (while still dominated) must
        // leave every source row provably clean.
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(50.0));
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(1.0));
        let mut cache = ApspCache::new(&net);
        cache.set_link_rate(2, 2.0);
        let stats = cache.stats();
        assert_eq!(stats.rows_recomputed, 0);
        assert_eq!(stats.rows_reused, 3);
        assert!(cache.all_pairs().identical(&rebuilt(&cache)));
    }

    #[test]
    fn generation_bumps_only_on_effective_change() {
        let net = TopologyConfig::paper(10).build(7);
        let mut cache = ApspCache::new(&net);
        assert_eq!(cache.generation(), 0);
        cache.set_link_rate(0, cache.base_rate(0)); // no-op
        assert_eq!(cache.generation(), 0);
        cache.set_link_rate(0, 1.0);
        assert_eq!(cache.generation(), 1);
        cache.sync_rates(
            &(0..net.link_count())
                .map(|i| cache.base_rate(i))
                .collect::<Vec<_>>(),
        );
        assert_eq!(cache.generation(), 2);
    }

    #[test]
    fn batched_faults_match_full_rebuild() {
        let net = TopologyConfig::paper(18).build(42);
        let mut cache = ApspCache::new(&net);
        let m = net.link_count();
        // Batch: kill one link, degrade two, leave the rest.
        let changes = vec![
            (0, 0.0),
            (m / 2, cache.base_rate(m / 2) * 0.1),
            (m - 1, cache.base_rate(m - 1) * 0.5),
        ];
        cache.apply(&changes);
        assert!(cache.all_pairs().identical(&rebuilt(&cache)));
        // Repair everything in one batch.
        let pristine: Vec<f64> = (0..m).map(|i| cache.base_rate(i)).collect();
        cache.sync_rates(&pristine);
        assert!(cache.all_pairs().identical(&AllPairs::build_serial(&net)));
    }
}

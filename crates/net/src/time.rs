//! Sanctioned wall-clock access for runtime *reporting*.
//!
//! Rule `L3-nondet-time` bans raw `Instant::now`/`SystemTime::now` outside
//! `crates/bench`: wall-clock reads scattered through solver code are how
//! time-dependent behavior (and thus nondeterminism) creeps in. The one
//! legitimate use in library code is measuring how long a solve took so the
//! result can *report* it — the measured duration must never feed back into
//! a decision.
//!
//! [`Stopwatch`] is the sanctioned wrapper for that purpose. Keeping it in
//! one place makes the contract auditable: a `Stopwatch` can tell you how
//! long something took, but offers no absolute time, no comparison against
//! deadlines of other stopwatches, and no way to seed randomness.
//!
//! The exception that proves the rule: `socl-milp`'s branch-and-bound time
//! limit *does* gate on elapsed time (an explicit, documented anytime-solver
//! knob, default off). It uses [`Stopwatch::exceeded`] so every
//! time-sensitive site remains grep-able from this module.

use std::time::Duration;

/// A monotonic stopwatch for reporting solver runtimes.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        // LINT-ALLOW(L3-nondet-time): this is the single sanctioned
        // wall-clock read; everything else in the workspace goes through
        // Stopwatch so timing never silently influences results. The same
        // waiver is the T1-nondet-taint barrier: time flows into reports
        // (Stopwatch -> millis), never into placement or routing decisions.
        Stopwatch(std::time::Instant::now())
    }

    /// Elapsed time since [`start`](Self::start).
    #[inline]
    pub fn elapsed(&self) -> Duration {
        // LINT-ALLOW(L3-nondet-time): paired read for the sanctioned
        // wrapper; same T1 barrier rationale as `start`.
        std::time::Instant::now().duration_since(self.0)
    }

    /// Elapsed milliseconds as `f64` (the unit every report field uses).
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed seconds as `f64`.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Has the given budget elapsed? For explicit anytime-solver time
    /// limits only (see module docs) — never for tie-breaking.
    #[inline]
    pub fn exceeded(&self, budget: Duration) -> bool {
        self.elapsed() >= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(b >= a && a >= 0.0);
        assert!(!sw.exceeded(Duration::from_secs(3600)));
        assert!(sw.exceeded(Duration::ZERO));
        assert!(sw.elapsed_secs() >= 0.0);
    }
}

//! # socl — facade crate for the SoCL reproduction
//!
//! Re-exports the public API of every subsystem so applications depend on a
//! single crate:
//!
//! ```
//! use socl::prelude::*;
//!
//! let scenario = ScenarioConfig::paper(10, 40).build(7);
//! let result = SoclSolver::new().solve(&scenario);
//! assert_eq!(result.evaluation.cloud_fallbacks, 0);
//! ```
//!
//! Subsystem map (see DESIGN.md for the full inventory):
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`net`] | socl-net | edge topology, shortest paths, virtual graphs |
//! | [`model`] | socl-model | workload, cost/latency models, routing DP |
//! | [`milp`] | socl-milp | from-scratch simplex + branch-and-bound |
//! | [`ilp`] | socl-ilp | exact optimizer (Gurobi stand-in) |
//! | [`core`] | socl-core | the SoCL three-stage pipeline |
//! | [`autoscale`] | socl-autoscale | serverless control plane: autoscaling, keep-alive, admission |
//! | [`baselines`] | socl-baselines | RP, JDR, GC-OG |
//! | [`sim`] | socl-sim | online simulator + testbed emulator |
//! | [`serve`] | socl-serve | sharded control-plane service + load feed |
//! | [`trace`] | socl-trace | synthetic Alibaba-like traces |

pub use socl_autoscale as autoscale;
pub use socl_baselines as baselines;
pub use socl_core as core;
pub use socl_ilp as ilp;
pub use socl_milp as milp;
pub use socl_model as model;
pub use socl_net as net;
pub use socl_serve as serve;
pub use socl_sim as sim;
pub use socl_trace as trace;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use socl_autoscale::{
        AdmissionPolicy, AutoscaleConfig, Autoscaler, KeepAlivePolicy, ScalingAction, ScalingMode,
    };
    pub use socl_baselines::{gc_og, jdr, random_provisioning, BaselineResult};
    pub use socl_core::{
        merge_scaler_owned, placement_churn, repair_placement, repair_with_replicas, RepairReport,
        ReplicaRepairReport, SoclConfig, SoclResult, SoclSolver, StoragePolicy, WarmSlotResult,
        WarmStartSolver,
    };
    pub use socl_ilp::{solve_exact, solve_ilp, ExactOptions, ExactSolution};
    pub use socl_milp::{solve_milp, MilpOptions, Model, Relation, VarKind};
    pub use socl_model::{
        evaluate, link_loads, optimal_route, route_all_contention_aware, Assignment,
        ContentionReport, EshopDataset, Evaluation, LinkLoads, Microservice, Placement,
        ReplicaCounts, RequestConfig, Scenario, ScenarioConfig, ServiceCatalog, ServiceId,
        SockShopDataset, TrainTicketDataset, UserId, UserRequest,
    };
    pub use socl_net::fcmp;
    pub use socl_net::{
        effective_threads, set_threads, AllPairs, ApspCache, CacheStats, EdgeNetwork, EdgeServer,
        LinkParams, NodeId, OrdF64, PathMetric, ShortestPaths, Stopwatch, TopologyConfig,
        TopologyKind, VgCache,
    };
    pub use socl_serve::{
        audit_serve, BoundedQueue, DecisionEvent, FeedConfig, LoadFeed, RegionCheckpoint,
        RegionMap, RegionState, RegionWal, RestoreReport, ServeConfig, ServeTotals, SoclServe,
        TickRecord, TickSummary,
    };
    pub use socl_sim::{
        audit_invariants, run_chaos_soak, run_crash_recovery, run_testbed, AuditReport, Checkpoint,
        DecisionLog, FaultEvent, FaultKind, FaultPlan, FaultSchedule, FaultStats, FaultTimeline,
        LogRecord, MobilityModel, OnlineConfig, OnlineSimulator, Policy, RecoveryConfig,
        RecoveryError, RecoveryOutcome, RestoreError, RetryPolicy, RngState, SlotMetrics,
        SlotRecord, SoakCase, SoakError, SoakPlan, SoakRow, SoakSummary, TailReport, Targeting,
        TestbedConfig, TestbedResult, TornTail, TornTailReason,
    };
    pub use socl_trace::{
        cosine_similarity, jaccard_similarity, similarity_matrix, TemporalConfig, TemporalWorkload,
        TraceConfig, TraceGenerator,
    };
}

//! Specialized exact branch-and-bound over the deployment matrix.
//!
//! Key structural fact: once the placement `x` is fixed, the optimal
//! assignment `y` decomposes per request into a layered shortest-path DP
//! (requests do not interact — capacity constraints bind only `x`). The
//! search therefore branches on individual `x(i,k)` bits:
//!
//! * **State** — each (requested service, node) pair is `Forced1`, `Forced0`
//!   or `Free`.
//! * **Bound** — `λ·cost(Forced1) + (1−λ)·scale·Σ_h DP(Forced1 ∪ Free)`:
//!   the relaxed placement treats free instances as deployed but unpaid,
//!   which can only under-estimate both terms ⇒ admissible.
//! * **Leaf shortcut** — if the relaxed routing only ever uses `Forced1`
//!   instances, setting every free bit to 0 is optimal for this subtree and
//!   the bound is exact; the node closes immediately.
//! * **Branching** — on the free pair most used by the relaxed routing,
//!   `x=1` child first (finds good incumbents early).
//! * **Feasibility** — budget (Eq. 5) and per-node storage (Eq. 6) prune
//!   `Forced1` sets; the per-request bound (Eq. 4) rejects candidate leaves.
//!
//! Runtime grows exponentially with users and nodes — by design, this is the
//! behaviour of the paper's Gurobi baseline that Figures 2 and 7 measure.

use socl_model::{evaluate, Evaluation, Placement, Scenario, ServiceId};
use socl_net::time::Stopwatch;
use socl_net::NodeId;
use std::time::Duration;

/// Options for the exact search.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Wall-clock cap; on expiry the incumbent (if any) is returned with
    /// `proved_optimal = false`.
    pub time_limit: Option<Duration>,
    /// Node cap, same semantics.
    pub node_limit: usize,
    /// Enforce the per-request completion bound Eq. 4 (default true).
    pub enforce_latency_bound: bool,
    /// Warm-start incumbent: a feasible placement (typically SoCL's output)
    /// installed before the search starts. A good incumbent prunes large
    /// subtrees immediately — the standard way exact solvers exploit a
    /// strong heuristic. Infeasible warm starts are silently ignored.
    pub warm_start: Option<Placement>,
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: 50_000_000,
            enforce_latency_bound: true,
            warm_start: None,
        }
    }
}

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Best placement found (empty placement if none was feasible).
    pub placement: Placement,
    /// Evaluation of `placement` (routing, cost, objective).
    pub evaluation: Option<Evaluation>,
    /// Incumbent objective (`f64::INFINITY` when none found).
    pub objective: f64,
    /// Greatest lower bound proved for the whole tree.
    pub bound: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when the tree was exhausted (objective is the global optimum).
    pub proved_optimal: bool,
}

impl ExactSolution {
    /// Relative optimality gap of the incumbent.
    pub fn gap(&self) -> f64 {
        if self.objective.is_finite() {
            (self.objective - self.bound).max(0.0) / self.objective.abs().max(1.0)
        } else {
            f64::INFINITY
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Bit {
    Free,
    Forced0,
    Forced1,
}

struct Search<'a> {
    sc: &'a Scenario,
    services: Vec<ServiceId>,
    n: usize,
    opts: &'a ExactOptions,
    start: Stopwatch,
    nodes: usize,
    incumbent: f64,
    best: Option<(Placement, Evaluation)>,
    hit_limit: bool,
}

impl<'a> Search<'a> {
    fn pair_index(&self, s: usize, k: usize) -> usize {
        s * self.n + k
    }

    /// Placement where every non-Forced0 bit is set (the relaxation).
    fn relaxed_placement(&self, state: &[Bit]) -> Placement {
        let mut p = Placement::empty(self.sc.services(), self.sc.nodes());
        for (s, &svc) in self.services.iter().enumerate() {
            for k in 0..self.n {
                if state[self.pair_index(s, k)] != Bit::Forced0 {
                    p.set(svc, NodeId(k as u32), true);
                }
            }
        }
        p
    }

    /// Placement of only the Forced1 bits.
    fn forced_placement(&self, state: &[Bit]) -> Placement {
        let mut p = Placement::empty(self.sc.services(), self.sc.nodes());
        for (s, &svc) in self.services.iter().enumerate() {
            for k in 0..self.n {
                if state[self.pair_index(s, k)] == Bit::Forced1 {
                    p.set(svc, NodeId(k as u32), true);
                }
            }
        }
        p
    }

    fn out_of_budget(&self) -> bool {
        self.nodes >= self.opts.node_limit
            || self.opts.time_limit.is_some_and(|t| self.start.exceeded(t))
    }

    /// Try to install a fully decided placement as the incumbent.
    fn offer(&mut self, placement: Placement) {
        if !placement.storage_feasible(&self.sc.catalog, &self.sc.net) {
            return;
        }
        let ev = evaluate(self.sc, &placement);
        if ev.cost > self.sc.budget + 1e-9 {
            return;
        }
        if self.opts.enforce_latency_bound {
            for (d, req) in ev.per_request.iter().zip(&self.sc.requests) {
                if *d > req.d_max + 1e-9 {
                    return;
                }
            }
        }
        if ev.objective < self.incumbent - 1e-9 {
            self.incumbent = ev.objective;
            self.best = Some((placement, ev));
        }
    }

    /// Depth-first search. Returns the proved lower bound for this subtree
    /// (≥ actual optimum of the subtree; INFINITY when pruned infeasible).
    fn dfs(&mut self, state: &mut Vec<Bit>) -> f64 {
        if self.out_of_budget() {
            self.hit_limit = true;
            // Unexplored: only the admissible bound is known.
            return self.lower_bound_only(state);
        }
        self.nodes += 1;

        // Feasibility of the forced part.
        let forced = self.forced_placement(state);
        let forced_cost = forced.deployment_cost(&self.sc.catalog);
        if forced_cost > self.sc.budget + 1e-9 {
            return f64::INFINITY;
        }
        if !forced.storage_feasible(&self.sc.catalog, &self.sc.net) {
            return f64::INFINITY;
        }

        // Relaxed bound.
        let relaxed = self.relaxed_placement(state);
        let ev_relaxed = evaluate(self.sc, &relaxed);
        let bound = self.sc.lambda * forced_cost
            + (1.0 - self.sc.lambda) * self.sc.latency_scale * ev_relaxed.total_latency;
        if bound >= self.incumbent - 1e-9 {
            return bound;
        }

        // Which free pairs does the relaxed routing actually use?
        let mut usage = vec![0usize; self.services.len() * self.n];
        let mut uses_free = false;
        for (h, req) in self.sc.requests.iter().enumerate() {
            if let Some(route) = ev_relaxed.assignment.route(h) {
                for (j, &node) in route.iter().enumerate() {
                    let svc = req.chain[j];
                    // Every routed service is in `services` by construction;
                    // skip defensively instead of panicking if not.
                    let Some(s) = self.services.iter().position(|&t| t == svc) else {
                        continue;
                    };
                    let idx = self.pair_index(s, node.idx());
                    if state[idx] == Bit::Free {
                        usage[idx] += 1;
                        uses_free = true;
                    }
                }
            }
        }

        if !uses_free {
            // Optimal completion for this subtree: drop every free bit.
            self.offer(forced);
            return bound;
        }

        // Branch on the most-used free pair. `uses_free` was set inside the
        // loop above, so a free pair exists; if that invariant ever breaks we
        // close the subtree like the `!uses_free` case instead of panicking.
        let Some((branch_idx, _)) = usage
            .iter()
            .enumerate()
            .filter(|&(i, _)| state[i] == Bit::Free)
            .max_by_key(|&(_, &u)| u)
        else {
            self.offer(forced);
            return bound;
        };

        // x = 1 child first.
        state[branch_idx] = Bit::Forced1;
        let b1 = self.dfs(state);
        state[branch_idx] = Bit::Forced0;
        let b0 = self.dfs(state);
        state[branch_idx] = Bit::Free;
        b1.min(b0).max(bound)
    }

    /// Bound of an unexplored subtree (used when limits fire).
    fn lower_bound_only(&self, state: &[Bit]) -> f64 {
        let forced = self.forced_placement(state);
        let forced_cost = forced.deployment_cost(&self.sc.catalog);
        if forced_cost > self.sc.budget + 1e-9 {
            return f64::INFINITY;
        }
        let relaxed = self.relaxed_placement(state);
        let ev = evaluate(self.sc, &relaxed);
        self.sc.lambda * forced_cost
            + (1.0 - self.sc.lambda) * self.sc.latency_scale * ev.total_latency
    }
}

/// Solve `scenario` to proven optimality (or until a limit fires).
///
/// ```
/// use socl_ilp::{solve_exact, ExactOptions};
/// use socl_model::ScenarioConfig;
///
/// let mut cfg = ScenarioConfig::paper(4, 6);
/// cfg.requests.chain_len = (2, 3);
/// let sc = cfg.build(5);
/// let opt = solve_exact(&sc, &ExactOptions::default());
/// assert!(opt.proved_optimal);
/// assert!(opt.gap() < 1e-9);
/// ```
pub fn solve_exact(sc: &Scenario, opts: &ExactOptions) -> ExactSolution {
    let start = Stopwatch::start();
    let services = sc.requested_services();
    let n = sc.nodes();
    let mut search = Search {
        sc,
        services: services.clone(),
        n,
        opts,
        start,
        nodes: 0,
        incumbent: f64::INFINITY,
        best: None,
        hit_limit: false,
    };

    // Seed the incumbent with a cheap greedy placement: each requested
    // service on its highest-demand node (then best-effort second copies are
    // left to the search). Pruning benefits enormously from any incumbent.
    {
        let mut seed = Placement::empty(sc.services(), sc.nodes());
        for &svc in &services {
            if let Some(best) = sc.net.node_ids().max_by_key(|&k| sc.demand(svc, k)) {
                seed.set(svc, best, true);
            }
        }
        search.offer(seed);
    }
    // Caller-provided warm start (typically SoCL's solution).
    if let Some(ws) = &opts.warm_start {
        if ws.services() == sc.services() && ws.nodes() == sc.nodes() {
            search.offer(ws.clone());
        }
    }

    let mut state = vec![Bit::Free; services.len() * n];
    let bound = search.dfs(&mut state);

    let proved_optimal = !search.hit_limit;
    let (placement, evaluation, objective) = match search.best {
        Some((p, e)) => {
            let obj = e.objective;
            (p, Some(e), obj)
        }
        None => (
            Placement::empty(sc.services(), sc.nodes()),
            None,
            f64::INFINITY,
        ),
    };
    ExactSolution {
        placement,
        evaluation,
        objective,
        bound: if proved_optimal { objective } else { bound },
        nodes: search.nodes,
        elapsed: start.elapsed(),
        proved_optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    fn tiny(seed: u64, nodes: usize, users: usize) -> Scenario {
        let mut cfg = ScenarioConfig::paper(nodes, users);
        cfg.requests.chain_len = (2, 3);
        cfg.build(seed)
    }

    /// Brute-force over all placements of the requested services on a tiny
    /// instance (≤ 2^(s·n) ≈ 2^12 placements).
    fn brute_force(sc: &Scenario) -> f64 {
        let services = sc.requested_services();
        let n = sc.nodes();
        let bits = services.len() * n;
        assert!(bits <= 16, "instance too large for brute force");
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << bits) {
            let mut p = Placement::empty(sc.services(), sc.nodes());
            for (s, &svc) in services.iter().enumerate() {
                for k in 0..n {
                    if (mask >> (s * n + k)) & 1 == 1 {
                        p.set(svc, NodeId(k as u32), true);
                    }
                }
            }
            if !p.storage_feasible(&sc.catalog, &sc.net) {
                continue;
            }
            let ev = evaluate(sc, &p);
            if ev.cost > sc.budget + 1e-9 {
                continue;
            }
            if ev
                .per_request
                .iter()
                .zip(&sc.requests)
                .any(|(d, r)| *d > r.d_max + 1e-9)
            {
                continue;
            }
            best = best.min(ev.objective);
        }
        best
    }

    /// A scenario small enough for brute force: restrict to 2 services.
    fn micro(seed: u64) -> Scenario {
        use socl_model::dataset::linear_dataset;
        let ds = linear_dataset(2);
        let mut cfg = ScenarioConfig::paper(3, 4);
        cfg.requests.chain_len = (1, 2);
        cfg.build_with_dataset(&ds, seed)
    }

    #[test]
    fn exact_matches_brute_force() {
        for seed in 0..6 {
            let sc = micro(seed);
            let sol = solve_exact(&sc, &ExactOptions::default());
            assert!(sol.proved_optimal, "seed {seed} did not prove optimality");
            let bf = brute_force(&sc);
            assert!(
                (sol.objective - bf).abs() < 1e-6,
                "seed {seed}: exact {} vs brute force {}",
                sol.objective,
                bf
            );
        }
    }

    #[test]
    fn exact_solution_is_feasible() {
        let sc = tiny(11, 4, 6);
        let sol = solve_exact(&sc, &ExactOptions::default());
        assert!(sol.proved_optimal);
        let ev = sol.evaluation.as_ref().expect("has incumbent");
        assert!(ev.cost <= sc.budget + 1e-6);
        assert!(sol.placement.storage_feasible(&sc.catalog, &sc.net));
        assert_eq!(ev.cloud_fallbacks, 0);
        assert!(sol.gap() < 1e-9);
    }

    #[test]
    fn node_limit_returns_incumbent_without_proof() {
        let sc = tiny(12, 5, 10);
        let sol = solve_exact(
            &sc,
            &ExactOptions {
                node_limit: 3,
                ..ExactOptions::default()
            },
        );
        assert!(!sol.proved_optimal);
        // Greedy seed guarantees an incumbent exists.
        assert!(sol.objective.is_finite());
        assert!(sol.bound <= sol.objective + 1e-9);
    }

    #[test]
    fn exact_never_worse_than_greedy_seed() {
        let sc = tiny(13, 4, 8);
        let sol = solve_exact(&sc, &ExactOptions::default());
        let mut seed = Placement::empty(sc.services(), sc.nodes());
        for svc in sc.requested_services() {
            let best = sc
                .net
                .node_ids()
                .max_by_key(|&k| sc.demand(svc, k))
                .unwrap();
            seed.set(svc, best, true);
        }
        let ev_seed = evaluate(&sc, &seed);
        assert!(sol.objective <= ev_seed.objective + 1e-9);
    }

    #[test]
    fn warm_start_prunes_but_preserves_optimality() {
        let sc = tiny(15, 4, 8);
        let cold = solve_exact(&sc, &ExactOptions::default());
        assert!(cold.proved_optimal);
        // Warm-start with the known optimum: node count must not grow, and
        // the optimum must be identical.
        let warm = solve_exact(
            &sc,
            &ExactOptions {
                warm_start: Some(cold.placement.clone()),
                ..ExactOptions::default()
            },
        );
        assert!(warm.proved_optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(
            warm.nodes <= cold.nodes,
            "warm start explored more nodes: {} vs {}",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn mismatched_warm_start_is_ignored() {
        let sc = tiny(16, 4, 6);
        let bogus = Placement::empty(1, 1);
        let sol = solve_exact(
            &sc,
            &ExactOptions {
                warm_start: Some(bogus),
                ..ExactOptions::default()
            },
        );
        assert!(sol.proved_optimal);
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn runtime_grows_with_users() {
        // Shape check (the Figure 2 phenomenon): more users ⇒ more nodes
        // explored. Uses node counts rather than wall-clock for robustness.
        let small = solve_exact(&tiny(14, 4, 4), &ExactOptions::default());
        let large = solve_exact(&tiny(14, 4, 12), &ExactOptions::default());
        assert!(
            large.nodes >= small.nodes,
            "expected monotone node growth: {} vs {}",
            small.nodes,
            large.nodes
        );
    }
}

//! # socl-ilp — the exact optimizer (Gurobi stand-in)
//!
//! The paper benchmarks SoCL against the optimal solution produced by Gurobi
//! on the ILP reformulation of Definition 4. This crate provides two exact
//! paths:
//!
//! * [`lowering`] — builds the ILP *faithfully* on the from-scratch
//!   [`socl_milp`] solver: binary deployment variables `x(i,k)`, assignment
//!   variables `y(h,j,k)` (Eq. 9–11), and a standard product linearization
//!   `z(h,j,k,k′)` for the chain-coupling transfer terms so the optimum is
//!   the *true* joint optimum rather than the per-cycle approximation.
//!   Practical only for small instances — which is the paper's own point.
//!
//! * [`exact`] — a specialized branch-and-bound over the deployment matrix
//!   alone. For any fixed placement the optimal assignment decomposes per
//!   request into a layered shortest-path DP (see `socl_model::routing`), so
//!   the search only branches on `x(i,k)`, using an admissible bound built
//!   from the relaxed placement (forced-1 ∪ free). This is the `OPT` used by
//!   the Figure 2/7 harnesses; its runtime grows exponentially with users
//!   and nodes, reproducing the blow-up the paper reports for Gurobi.
//!
//! Both paths agree on every instance small enough to cross-check (see the
//! tests and `tests/optimality.rs` at the workspace root).

pub mod exact;
pub mod lowering;

pub use exact::{solve_exact, ExactOptions, ExactSolution};
pub use lowering::{build_ilp, solve_ilp, IlpArtifacts};

//! Faithful ILP lowering of Definition 4 onto the `socl-milp` solver.
//!
//! Variables (all per scenario):
//!
//! * `x(i,k)` — binary deployment of service `i` on node `k` (only services
//!   that appear in at least one request chain get columns; others are
//!   trivially zero at any optimum),
//! * `y(h,j,k)` — binary: chain position `j` of request `h` served at `k`,
//! * `z(h,j,k,k′)` — continuous in `[0,1]`: linearization of
//!   `y(h,j,k)·y(h,j+1,k′)`, carrying the inter-service transfer cost.
//!   Because its objective coefficient is non-negative and it is constrained
//!   by `z ≥ y₁ + y₂ − 1`, it equals the product at every optimal binary
//!   point.
//!
//! Constraints: Eq. 9 (`Σ_k y = 1`), Eq. 10 (`y ≤ x`), Eq. 6 (per-node
//! storage), Eq. 5 (budget), Eq. 4 (per-request completion bound, expressed
//! over the same linear terms), plus the `z` linking rows.
//!
//! Cloud fallback is *not* modeled here: the ILP requires every chain to be
//! served from the edge (the exact solver treats fallback as a very costly
//! alternative, and at the default penalty no optimal solution uses it —
//! asserted in tests).

use socl_milp::{solve_milp, MilpOptions, MilpSolution, Model, Relation, VarId};
use socl_model::{Placement, Scenario, ServiceId};
use socl_net::NodeId;

/// Handles into the lowered model, for solution extraction and inspection.
#[derive(Debug, Clone)]
pub struct IlpArtifacts {
    /// Requested services, in column order.
    pub services: Vec<ServiceId>,
    /// `x_vars[s][k]` for `services[s]` on node `k`.
    pub x_vars: Vec<Vec<VarId>>,
    /// `y_vars[h][j][k]`.
    pub y_vars: Vec<Vec<Vec<VarId>>>,
    /// Total number of variables (diagnostics).
    pub num_vars: usize,
    /// Total number of constraints (diagnostics).
    pub num_constraints: usize,
}

/// Build the ILP for `scenario`.
pub fn build_ilp(sc: &Scenario) -> (Model, IlpArtifacts) {
    let mut m = Model::new();
    let services = sc.requested_services();
    let n = sc.nodes();
    let scale = (1.0 - sc.lambda) * sc.latency_scale;

    // x(i,k) with deployment cost in the objective.
    let x_vars: Vec<Vec<VarId>> = services
        .iter()
        .map(|&s| {
            (0..n)
                .map(|_| m.add_binary(sc.lambda * sc.catalog.deploy_cost(s)))
                .collect()
        })
        .collect();
    // LINT-ALLOW(L2-panic-free): `requested_services()` contains every
    // service referenced by any request chain by construction, so the lookup
    // cannot miss; a panic here is a lowering bug worth failing loudly on.
    // Doubles as the T2-panic-reach barrier for `build_ilp`'s callers.
    let service_col = |s: ServiceId| services.iter().position(|&t| t == s).unwrap();

    // y(h,j,k) with node-local cost terms (upload, compute, return).
    let mut y_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(sc.users());
    for req in &sc.requests {
        let last = req.chain.len() - 1;
        let mut per_req = Vec::with_capacity(req.chain.len());
        for (j, &svc) in req.chain.iter().enumerate() {
            let mut per_pos = Vec::with_capacity(n);
            for k in 0..n {
                let node = NodeId(k as u32);
                let mut cost = sc.catalog.compute_gflop(svc) / sc.net.compute_gflops(node);
                if j == 0 {
                    cost += sc.ap.transfer_time(req.location, node, req.r_in);
                }
                if j == last {
                    cost += sc.ap.return_time(node, req.location, req.r_out);
                }
                per_pos.push(m.add_binary(scale * cost));
            }
            per_req.push(per_pos);
        }
        y_vars.push(per_req);
    }

    // Eq. 9: each chain position served exactly once.
    for per_req in &y_vars {
        for per_pos in per_req {
            m.add_constraint(per_pos.iter().map(|&v| (v, 1.0)), Relation::Eq, 1.0);
        }
    }

    // Eq. 10: y(h,j,k) ≤ x(i,k).
    for (h, req) in sc.requests.iter().enumerate() {
        for (j, &svc) in req.chain.iter().enumerate() {
            let s = service_col(svc);
            for k in 0..n {
                m.add_constraint(
                    [(y_vars[h][j][k], 1.0), (x_vars[s][k], -1.0)],
                    Relation::Le,
                    0.0,
                );
            }
        }
    }

    // Eq. 6: per-node storage.
    #[allow(clippy::needless_range_loop)]
    for k in 0..n {
        m.add_constraint(
            services
                .iter()
                .enumerate()
                .map(|(s, &svc)| (x_vars[s][k], sc.catalog.storage(svc))),
            Relation::Le,
            sc.net.storage(NodeId(k as u32)),
        );
    }

    // Eq. 5: budget.
    m.add_constraint(
        services.iter().enumerate().flat_map(|(s, &svc)| {
            let kappa = sc.catalog.deploy_cost(svc);
            x_vars[s].iter().map(move |&v| (v, kappa))
        }),
        Relation::Le,
        sc.budget,
    );

    // z(h,j,k,k') transfer linearization + per-request latency rows (Eq. 4).
    for (h, req) in sc.requests.iter().enumerate() {
        // Collect this request's latency terms as (var, seconds).
        let mut latency_terms: Vec<(VarId, f64)> = Vec::new();
        let last = req.chain.len() - 1;
        for (j, &svc) in req.chain.iter().enumerate() {
            #[allow(clippy::needless_range_loop)]
            for k in 0..n {
                let node = NodeId(k as u32);
                let mut secs = sc.catalog.compute_gflop(svc) / sc.net.compute_gflops(node);
                if j == 0 {
                    secs += sc.ap.transfer_time(req.location, node, req.r_in);
                }
                if j == last {
                    secs += sc.ap.return_time(node, req.location, req.r_out);
                }
                latency_terms.push((y_vars[h][j][k], secs));
            }
        }
        for j in 0..req.chain.len() - 1 {
            let r = req.edge_data[j];
            for k in 0..n {
                for k2 in 0..n {
                    if k == k2 {
                        continue; // zero transfer cost, z would be 0 anyway
                    }
                    let secs = sc.ap.transfer_time(NodeId(k as u32), NodeId(k2 as u32), r);
                    if secs <= 0.0 {
                        continue;
                    }
                    let z = m.add_var(0.0, 1.0, scale * secs, socl_milp::VarKind::Continuous);
                    // z ≥ y(h,j,k) + y(h,j+1,k') − 1
                    m.add_constraint(
                        [
                            (z, -1.0),
                            (y_vars[h][j][k], 1.0),
                            (y_vars[h][j + 1][k2], 1.0),
                        ],
                        Relation::Le,
                        1.0,
                    );
                    latency_terms.push((z, secs));
                }
            }
        }
        // Eq. 4: 𝒟_h ≤ 𝒟_h^max.
        m.add_constraint(latency_terms, Relation::Le, req.d_max);
    }

    let artifacts = IlpArtifacts {
        services,
        x_vars,
        y_vars,
        num_vars: m.num_vars(),
        num_constraints: m.num_constraints(),
    };
    (m, artifacts)
}

/// Solve the lowered ILP and extract the placement.
///
/// Returns `None` when the MILP terminates without an incumbent (infeasible
/// or limit hit before any integral solution).
pub fn solve_ilp(sc: &Scenario, options: &MilpOptions) -> Option<(Placement, MilpSolution)> {
    let (model, art) = build_ilp(sc);
    let sol = solve_milp(&model, options);
    if sol.values.is_empty() {
        return None;
    }
    let mut placement = Placement::empty(sc.services(), sc.nodes());
    for (s, &svc) in art.services.iter().enumerate() {
        for k in 0..sc.nodes() {
            if sol.values[art.x_vars[s][k].0] > 0.5 {
                placement.set(svc, NodeId(k as u32), true);
            }
        }
    }
    Some((placement, sol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_milp::MilpStatus;
    use socl_model::{evaluate, ScenarioConfig};

    /// Tiny scenario the dense simplex can handle quickly.
    fn tiny(seed: u64, nodes: usize, users: usize) -> Scenario {
        let mut cfg = ScenarioConfig::paper(nodes, users);
        cfg.requests.chain_len = (2, 3);
        cfg.build(seed)
    }

    #[test]
    fn ilp_counts_scale_with_instance() {
        let sc = tiny(1, 3, 4);
        let (_, art) = build_ilp(&sc);
        let chain_positions: usize = sc.requests.iter().map(|r| r.len()).sum();
        // x: |services|·|V|; y: Σ positions·|V|; z: extra.
        assert!(art.num_vars >= art.services.len() * 3 + chain_positions * 3);
        assert!(art.num_constraints > 0);
        assert_eq!(art.y_vars.len(), sc.users());
    }

    #[test]
    fn ilp_optimum_is_feasible_and_evaluates_consistently() {
        let sc = tiny(2, 3, 4);
        let (placement, sol) = solve_ilp(&sc, &MilpOptions::default()).expect("solved");
        assert_eq!(sol.status, MilpStatus::Optimal);
        let ev = evaluate(&sc, &placement);
        assert_eq!(ev.cloud_fallbacks, 0);
        // The MILP objective equals the model evaluation: same placement,
        // and DP routing achieves exactly the MILP's y/z cost.
        assert!(
            (sol.objective - ev.objective).abs() < 1e-4,
            "milp {} vs evaluate {}",
            sol.objective,
            ev.objective
        );
        // Constraints hold.
        assert!(placement.storage_feasible(&sc.catalog, &sc.net));
        assert!(ev.cost <= sc.budget + 1e-6);
    }

    #[test]
    fn ilp_beats_or_matches_naive_placements() {
        let sc = tiny(3, 3, 5);
        let (_, sol) = solve_ilp(&sc, &MilpOptions::default()).expect("solved");
        // Any specific covering placement is an upper bound.
        let mut naive = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            naive.set(m, NodeId(0), true);
        }
        if naive.storage_feasible(&sc.catalog, &sc.net) {
            let ev = evaluate(&sc, &naive);
            assert!(sol.objective <= ev.objective + 1e-6);
        }
    }

    #[test]
    fn tight_budget_makes_ilp_infeasible() {
        let mut sc = tiny(4, 3, 3);
        sc.budget = 0.0; // cannot deploy anything, yet Eq. 9 requires service
        let res = solve_ilp(&sc, &MilpOptions::default());
        assert!(res.is_none(), "zero budget must be infeasible");
    }
}

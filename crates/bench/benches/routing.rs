//! Criterion benches for the routing engine: exact layered DP vs the myopic
//! greedy, and the full-scenario evaluation path everything else sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socl::model::{greedy_route, route_all};
use socl::prelude::*;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(30);

    for &nodes in &[10usize, 30] {
        let sc = ScenarioConfig::paper(nodes, 60).build(5);
        let placement = Placement::full(sc.services(), sc.nodes());
        let req = &sc.requests[0];

        group.bench_with_input(
            BenchmarkId::new("optimal_route_one", nodes),
            &sc,
            |b, sc| b.iter(|| optimal_route(req, &placement, &sc.net, &sc.ap, &sc.catalog)),
        );
        group.bench_with_input(BenchmarkId::new("greedy_route_one", nodes), &sc, |b, sc| {
            b.iter(|| greedy_route(req, &placement, &sc.net, &sc.ap, &sc.catalog))
        });
        group.bench_with_input(BenchmarkId::new("route_all_60", nodes), &sc, |b, sc| {
            b.iter(|| route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog))
        });
        group.bench_with_input(BenchmarkId::new("evaluate", nodes), &sc, |b, sc| {
            b.iter(|| evaluate(sc, &placement))
        });
    }

    // All-pairs precomputation cost by topology size.
    for &nodes in &[10usize, 30, 60] {
        let net = TopologyConfig::paper(nodes).build(1);
        group.bench_with_input(BenchmarkId::new("all_pairs", nodes), &net, |b, net| {
            b.iter(|| AllPairs::build(net))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);

//! Criterion benches for the from-scratch LP/MILP solver: simplex pivots on
//! random LPs and branch-and-bound on knapsacks plus the lowered SoCL ILP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socl::ilp::build_ilp;
use socl::prelude::*;

/// Deterministic pseudo-random knapsack of n binary items.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(-((i * 7919 % 17 + 1) as f64)))
        .collect();
    m.add_constraint(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 104729) % 9 + 1) as f64)),
        Relation::Le,
        (2 * n) as f64 / 3.0,
    );
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp");
    group.sample_size(15);

    for &n in &[10usize, 16, 22] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::new("lp_relaxation", n), &model, |b, m| {
            b.iter(|| socl::milp::solve_lp(m))
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", n), &model, |b, m| {
            b.iter(|| solve_milp(m, &MilpOptions::default()))
        });
    }

    // ILP lowering of a tiny SoCL scenario: building and solving.
    let mut cfg = ScenarioConfig::paper(3, 4);
    cfg.requests.chain_len = (2, 3);
    let sc = cfg.build(2);
    group.bench_function("build_socl_ilp", |b| b.iter(|| build_ilp(&sc)));
    group.bench_function("solve_socl_ilp", |b| {
        b.iter(|| solve_ilp(&sc, &MilpOptions::default()))
    });
    group.bench_function("solve_socl_exact_bb", |b| {
        b.iter(|| solve_exact(&sc, &ExactOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);

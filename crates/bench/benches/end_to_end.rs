//! Criterion benches comparing whole-algorithm runtimes — the runtime side
//! of Figure 8 (SoCL vs the baselines) and of the online loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socl::prelude::*;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    for &users in &[40usize, 120] {
        let sc = ScenarioConfig::paper(10, users).build(7);
        group.bench_with_input(BenchmarkId::new("socl", users), &sc, |b, sc| {
            b.iter(|| SoclSolver::new().solve(sc))
        });
        group.bench_with_input(BenchmarkId::new("rp", users), &sc, |b, sc| {
            b.iter(|| random_provisioning(sc, 3))
        });
        group.bench_with_input(BenchmarkId::new("jdr", users), &sc, |b, sc| {
            b.iter(|| jdr(sc))
        });
        group.bench_with_input(BenchmarkId::new("gc_og", users), &sc, |b, sc| {
            b.iter(|| gc_og(sc))
        });
    }

    // One full testbed-emulator run (the Fig. 9/10 measurement engine).
    let sc = ScenarioConfig::paper(8, 50).build(9);
    let placement = SoclSolver::new().solve(&sc).placement;
    let tb = TestbedConfig {
        epochs: 2,
        ..TestbedConfig::default()
    };
    group.bench_function("testbed_2_epochs", |b| {
        b.iter(|| run_testbed(&sc, &placement, &tb))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);

//! Criterion micro-benches for the three SoCL stages (CRIT index entry).
//!
//! Measures each stage in isolation on the paper's default scenario so
//! regressions in any one stage are visible independently.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use socl::core::{initial_partition, preprovision, Combiner};
use socl::prelude::*;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(20);

    for &users in &[40usize, 120] {
        let sc = ScenarioConfig::paper(10, users).build(3);
        let cfg = SoclConfig::default();

        group.bench_with_input(BenchmarkId::new("partition", users), &sc, |b, sc| {
            b.iter(|| initial_partition(sc, &cfg))
        });

        let parts = initial_partition(&sc, &cfg);
        group.bench_with_input(BenchmarkId::new("preprovision", users), &sc, |b, sc| {
            b.iter(|| preprovision(sc, &parts, &cfg))
        });

        let pre = preprovision(&sc, &parts, &cfg);
        group.bench_with_input(BenchmarkId::new("combine", users), &sc, |b, sc| {
            b.iter_batched(
                || pre.placement.clone(),
                |placement| Combiner::new(sc, &cfg, &parts, placement).run(),
                BatchSize::SmallInput,
            )
        });

        group.bench_with_input(BenchmarkId::new("full_pipeline", users), &sc, |b, sc| {
            b.iter(|| SoclSolver::new().solve(sc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);

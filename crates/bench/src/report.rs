//! Tabular/CSV reporting shared by the figure harnesses.

/// Print a CSV header line.
pub fn print_csv_header(cols: &[&str]) {
    println!("{}", cols.join(","));
}

/// Print one CSV row of floating-point cells after a string key.
pub fn print_csv_row(key: &str, cells: &[f64]) {
    let mut row = String::from(key);
    for c in cells {
        row.push(',');
        if c.abs() >= 1000.0 {
            row.push_str(&format!("{c:.1}"));
        } else {
            row.push_str(&format!("{c:.4}"));
        }
    }
    println!("{row}");
}

/// A named series collected across a sweep (one figure line).
#[derive(Debug, Clone, Default)]
pub struct GeoSeries {
    pub name: String,
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
}

impl GeoSeries {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Geometric-mean growth factor per step — summarizes whether a series
    /// grows exponentially (factor ≫ 1) or stays flat (≈ 1).
    pub fn growth_factor(&self) -> f64 {
        if self.ys.len() < 2 {
            return 1.0;
        }
        let mut log_sum = 0.0;
        let mut n = 0;
        for w in self.ys.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                log_sum += (w[1] / w[0]).ln();
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            (log_sum / n as f64).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_factor_detects_exponential() {
        let mut s = GeoSeries::new("exp");
        for i in 0..5 {
            s.push(i as f64, 2.0_f64.powi(i));
        }
        assert!((s.growth_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn growth_factor_flat_series() {
        let mut s = GeoSeries::new("flat");
        for i in 0..5 {
            s.push(i as f64, 7.0);
        }
        assert!((s.growth_factor() - 1.0).abs() < 1e-9);
        assert_eq!(GeoSeries::new("empty").growth_factor(), 1.0);
    }
}

//! Convergence anatomy: where does SoCL's objective reduction come from?
//!
//! Decomposes the pipeline's objective trajectory — pre-provisioning →
//! large-scale parallel combination → serial descent → final migration — and
//! compares the end point against the proven optimum on small instances.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin convergence
//! ```

use socl::core::{initial_partition, preprovision, Combiner};
use socl::prelude::*;

fn main() {
    println!("# stage-wise objective trajectory (10 nodes)");
    println!("users,seed,pre,after_large,after_serial,final,reduction_pct");
    for users in [40usize, 100, 200] {
        for seed in [1u64, 2, 3] {
            let sc = ScenarioConfig::paper(10, users).build(seed);
            let cfg = SoclConfig::default();
            let parts = initial_partition(&sc, &cfg);
            let pre = preprovision(&sc, &parts, &cfg);
            let pre_obj = evaluate(&sc, &pre.placement).objective;
            let debug = std::env::var_os("SOCL_DEBUG_COMBINE").is_some();
            let (_, stats) = Combiner::new(&sc, &cfg, &parts, pre.placement)
                .with_debug(debug)
                .run();
            println!(
                "{users},{seed},{pre_obj:.1},{:.1},{:.1},{:.1},{:.1}",
                stats.objective_after_large,
                stats.objective_after_serial,
                stats.final_objective,
                (pre_obj - stats.final_objective) / pre_obj * 100.0
            );
        }
    }

    println!("\n# distance to the proven optimum on exact-solvable instances");
    println!("nodes,users,seed,socl,optimum,gap_pct");
    for seed in [1u64, 2, 3] {
        let mut cfg = ScenarioConfig::paper(4, 8);
        cfg.requests.chain_len = (2, 3);
        let sc = cfg.build(seed);
        let socl = SoclSolver::new().solve(&sc).objective();
        let opt = solve_exact(&sc, &ExactOptions::default());
        println!(
            "4,8,{seed},{socl:.1},{:.1},{:.2}",
            opt.objective,
            (socl - opt.objective) / opt.objective * 100.0
        );
    }
}

//! Cross-dataset robustness check: the Figure 8 comparison repeated on two
//! more public microservice architectures (Sock Shop and Train Ticket), so
//! the SoCL-vs-baselines conclusion is not an artifact of one dependency
//! graph. Train Ticket's deep booking chains stress chain-aware routing the
//! hardest.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin cross_dataset
//! ```

use socl::model::DependencyDataset;
use socl::prelude::*;

fn run_dataset(name: &str, dataset: &DependencyDataset, users: usize, seeds: &[u64]) {
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("SoCL", Vec::new()),
        ("RP", Vec::new()),
        ("JDR", Vec::new()),
        ("GC-OG", Vec::new()),
    ];
    for &seed in seeds {
        // Budget scales with catalog size so every dataset can afford at
        // least one instance per service (Train Ticket has 24 services).
        let mut cfg = ScenarioConfig::paper(10, users);
        cfg.budget = 6000.0 * (dataset.len() as f64 / 12.0);
        let sc = cfg.build_with_dataset(dataset, seed);
        rows[0].1.push(SoclSolver::new().solve(&sc).objective());
        rows[1]
            .1
            .push(random_provisioning(&sc, seed ^ 0xF00D).objective);
        rows[2].1.push(jdr(&sc).objective);
        rows[3].1.push(gc_og(&sc).objective);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let mut meds = Vec::new();
    for (algo, mut objs) in rows {
        let m = median(&mut objs);
        println!("{name},{users},{algo},{m:.1}");
        meds.push((algo, m));
    }
    let socl = meds[0].1;
    let best_other = meds[1..]
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    println!(
        "# {name}/{users}: SoCL lowest: {} (margin {:.1}%)",
        socl <= best_other,
        (best_other - socl) / socl * 100.0
    );
}

fn main() {
    let seeds: &[u64] = &[1, 2, 3];
    println!(
        "# cross-dataset comparison (10 servers, median of {} seeds)",
        seeds.len()
    );
    println!("dataset,users,algo,objective");
    for users in [60usize, 120] {
        run_dataset("eshop", &EshopDataset::build(), users, seeds);
        run_dataset("sock-shop", &SockShopDataset::build(), users, seeds);
        run_dataset("train-ticket", &TrainTicketDataset::build(), users, seeds);
        println!();
    }
}

//! FAULT_TOLERANCE — availability and delay under mid-run fault injection.
//!
//! Two sweeps:
//!
//! 1. **Testbed**: RP/JDR/SoCL placements replayed on the discrete-event
//!    emulator under seedable fault schedules of increasing intensity
//!    (node crashes, link degradation, instance cold-kills, request loss),
//!    with the dispatcher's retry/hedging policy off and on. Reported per
//!    cell: availability, completed/degraded/dropped accounting and the
//!    effective mean delay (degraded requests charged the cloud penalty).
//! 2. **Online**: the time-slotted simulator with mid-slot crashes of the
//!    most-loaded node, with failure-triggered repair off and on. Each
//!    slot's delay is measured on the emulator (queueing + cold starts),
//!    charging the cloud penalty for requests the edge could not serve.
//!    Repair re-provisions only the affected services, so its latency and
//!    churn stay small while the cloud-fallback count drops.
//!
//! Expected shape: retries absorb moderate fault rates with zero dropped
//! requests, and SoCL with repair beats RP/JDR on both mean delay and
//! availability — latency-optimized placements also degrade more
//! gracefully, because their replicas sit close to the users they lose.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fault_tolerance
//! ```

use socl::prelude::*;

fn policy_placements(sc: &Scenario) -> Vec<(&'static str, Placement)> {
    vec![
        ("RP", random_provisioning(sc, 5).placement),
        ("JDR", jdr(sc).placement),
        ("SoCL", SoclSolver::new().solve(sc).placement),
    ]
}

fn main() {
    let nodes = 10usize;
    let users = 40usize;
    let sc = ScenarioConfig::paper(nodes, users).build(31);
    let epochs = 4usize;
    let horizon = epochs as f64 * 300.0;

    println!("# FAULT_TOLERANCE part 1: emulated testbed, fault intensity x policy x retries");
    println!(
        "intensity,algo,retries,availability,completed,retried,hedged,degraded,dropped,\
         timeouts,mean_ms,effective_mean_ms,mttr_s"
    );

    // Bench verdict accumulators.
    let mut moderate_drops = 0usize;
    let mut socl_at_one: Option<(f64, f64)> = None; // (availability, eff_mean)
    let mut rivals_at_one: Vec<(f64, f64)> = Vec::new();

    for intensity in [0.0f64, 0.5, 1.0, 2.0] {
        for (name, placement) in policy_placements(&sc) {
            let faults = FaultPlan::at_intensity(horizon, intensity)
                .with_targeting(Targeting::Random)
                .generate(&sc.net, &placement, users, 17);
            for retries in [false, true] {
                let retry = if retries {
                    RetryPolicy::resilient()
                } else {
                    RetryPolicy::default()
                };
                let cfg = TestbedConfig {
                    epochs,
                    faults: faults.clone(),
                    retry,
                    ..TestbedConfig::default()
                };
                let res = run_testbed(&sc, &placement, &cfg);
                let eff = res.effective_mean(sc.cloud_penalty);
                println!(
                    "{intensity},{name},{},{:.4},{},{},{},{},{},{},{:.1},{:.1},{:.1}",
                    if retries { "on" } else { "off" },
                    res.availability,
                    res.completed,
                    res.retried,
                    res.hedged,
                    res.degraded,
                    res.dropped,
                    res.timeouts,
                    res.mean * 1e3,
                    eff * 1e3,
                    res.mttr,
                );
                if retries && intensity <= 1.0 {
                    moderate_drops += res.dropped;
                }
                if retries && intensity == 1.0 {
                    if name == "SoCL" {
                        socl_at_one = Some((res.availability, eff));
                    } else {
                        rivals_at_one.push((res.availability, eff));
                    }
                }
            }
        }
        println!();
    }

    println!("# FAULT_TOLERANCE part 2: online slots with mid-slot crashes, repair off/on");
    println!("algo,repair,fallbacks_total,mean_latency_ms,repair_churn_total,mean_repair_ms,crashed_slots");

    let mut socl_online: Option<(usize, f64)> = None; // (fallbacks, mean latency)
    let mut rival_online: Vec<(usize, f64)> = Vec::new();
    for (name, policy) in [
        ("RP", Policy::Rp { seed: 5 }),
        ("JDR", Policy::Jdr),
        ("SoCL", Policy::Socl(SoclConfig::default())),
    ] {
        for repair in [false, true] {
            // Aggregate three independent crash sequences so the verdict
            // reflects the regime, not one lucky seed.
            let mut records = Vec::new();
            for seed in [1u64, 3, 5] {
                let cfg = OnlineConfig {
                    slots: 12,
                    users,
                    nodes,
                    mid_slot_fail_prob: 0.5,
                    recover_prob: 0.7,
                    repair,
                    seed,
                    ..OnlineConfig::default()
                };
                let run = OnlineSimulator::new(cfg).run_measured(&policy, |sc, placement| {
                    // Queueing-aware delay from the emulator; requests the
                    // edge cannot serve are charged the cloud penalty.
                    let tb = TestbedConfig {
                        epochs: 1,
                        ..TestbedConfig::default()
                    };
                    let res = run_testbed(sc, placement, &tb);
                    let served_sum = res.mean * res.completed as f64;
                    let charged = (res.degraded + res.dropped + res.fallbacks) as f64;
                    let mean = (served_sum + charged * sc.cloud_penalty) / res.issued as f64;
                    Some((mean, res.max))
                });
                records.extend(run);
            }
            let fallbacks: usize = records.iter().map(|r| r.fallbacks).sum();
            let mean_lat =
                records.iter().map(|r| r.mean_latency).sum::<f64>() / records.len() as f64;
            let churn: usize = records.iter().map(|r| r.repair_churn).sum();
            let crashed = records.iter().filter(|r| r.mid_slot_failures > 0).count();
            let repaired: Vec<f64> = records
                .iter()
                .filter(|r| !r.repair_time.is_zero())
                .map(|r| r.repair_time.as_secs_f64() * 1e3)
                .collect();
            let mean_repair = if repaired.is_empty() {
                0.0
            } else {
                repaired.iter().sum::<f64>() / repaired.len() as f64
            };
            println!(
                "{name},{},{fallbacks},{:.1},{churn},{:.2},{crashed}",
                if repair { "on" } else { "off" },
                mean_lat * 1e3,
                mean_repair,
            );
            if repair {
                if name == "SoCL" {
                    socl_online = Some((fallbacks, mean_lat));
                } else {
                    rival_online.push((fallbacks, mean_lat));
                }
            }
        }
    }
    println!();

    // Shape verdicts, computed from the rows above.
    println!(
        "# check 1 (dropped==0 with retries at intensity<=1): {}",
        if moderate_drops == 0 { "PASS" } else { "FAIL" }
    );
    let (s_av, s_eff) = socl_at_one.expect("SoCL row at intensity 1 missing");
    let tb_ok = rivals_at_one
        .iter()
        .all(|&(av, eff)| s_av >= av && s_eff <= eff + 1e-9);
    println!(
        "# check 2 (testbed: SoCL+retries >= rivals on availability, <= on effective delay): {}",
        if tb_ok { "PASS" } else { "FAIL" }
    );
    let (s_fb, s_lat) = socl_online.expect("SoCL online row missing");
    let on_ok = rival_online
        .iter()
        .all(|&(fb, lat)| s_fb <= fb && s_lat <= lat + 1e-9);
    println!(
        "# check 3 (online: SoCL+repair <= rivals on fallbacks and mean delay): {}",
        if on_ok { "PASS" } else { "FAIL" }
    );
}

//! FIG10 — 4-hour average-delay trace on 16 edge nodes (Figure 10).
//!
//! The paper traces 50 users moving randomly between edge nodes, issuing
//! requests every 5 minutes with stochastic service dependencies, for 4
//! hours (48 slots); each algorithm re-provisions per slot and the per-slot
//! average delay is recorded.
//!
//! Paper shape to reproduce: SoCL lowest average delay with the lowest
//! maximum; RP noisy with spikes; JDR between.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig10_trace
//! ```

use socl::prelude::*;

fn run(policy: &Policy, seed: u64, slots: usize) -> Vec<SlotRecord> {
    let mut sim = OnlineSimulator::new(OnlineConfig {
        slots,
        users: 50,
        nodes: 16,
        seed,
        ..OnlineConfig::default()
    });
    // Measure each slot on the discrete-event testbed emulator (queueing,
    // transfers, cold starts) — the paper's trace records real cluster
    // latency, not the unloaded routing model.
    let tb = TestbedConfig {
        epochs: 1,
        seed,
        ..TestbedConfig::default()
    };
    sim.run_measured(policy, |sc, placement| {
        let res = run_testbed(sc, placement, &tb);
        Some((res.mean, res.max))
    })
}

fn main() {
    let slots = if std::env::var_os("SOCL_FULL").is_some() {
        48
    } else {
        24
    };
    let policies = [
        Policy::Rp { seed: 7 },
        Policy::Jdr,
        Policy::Socl(SoclConfig::default()),
    ];

    println!("# FIG10: per-slot average delay (ms), 16 nodes, 50 mobile users");
    print!("slot,minutes");
    for p in &policies {
        print!(",{}", p.name());
    }
    println!();

    let traces: Vec<Vec<SlotRecord>> = policies.iter().map(|p| run(p, 9, slots)).collect();
    for s in 0..slots {
        print!("{s},{}", s * 5);
        for tr in &traces {
            print!(",{:.2}", tr[s].mean_latency * 1e3);
        }
        println!();
    }

    println!("\n# summary");
    println!("algo,avg_delay_ms,max_slot_avg_ms,max_request_ms_proxy,solve_ms_per_slot");
    for (p, tr) in policies.iter().zip(&traces) {
        let avg = tr.iter().map(|r| r.mean_latency).sum::<f64>() / tr.len() as f64;
        let max_avg = tr.iter().map(|r| r.mean_latency).fold(0.0, f64::max);
        let max_req = tr.iter().map(|r| r.max_latency).fold(0.0, f64::max);
        let solve = tr.iter().map(|r| r.solve_time.as_secs_f64()).sum::<f64>() / tr.len() as f64;
        println!(
            "{},{:.2},{:.2},{:.2},{:.2}",
            p.name(),
            avg * 1e3,
            max_avg * 1e3,
            max_req * 1e3,
            solve * 1e3
        );
    }
    println!("# shape check (paper): SoCL has the lowest average delay and the");
    println!("# lowest maximum; RP shows unstable peaks.");
}

//! FIG4 — temporal distribution of user requests (Figure 4).
//!
//! The paper plots request volume over a 10-hour Alibaba window: strong
//! recurring peaks over a fluctuating baseline. The synthetic generator
//! reproduces that shape; this harness prints the series plus the summary
//! statistics that characterize it.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig4_temporal
//! ```

use socl::prelude::*;

fn main() {
    let cfg = TemporalConfig::default(); // 120 five-minute bins = 10 hours
    let workload = TemporalWorkload::generate(&cfg, 42);

    println!("# FIG4: request volume per 5-minute interval (10 hours)");
    println!("interval,minutes,volume");
    for (i, v) in workload.volumes.iter().enumerate() {
        println!("{i},{},{v:.1}", i * 5);
    }

    let mean = workload.mean();
    let max = workload.volumes.iter().copied().fold(0.0, f64::max);
    let min = workload
        .volumes
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!("\n# summary");
    println!("mean,{mean:.1}");
    println!("max,{max:.1}");
    println!("min,{min:.1}");
    println!("peak_to_mean,{:.2}", workload.peak_to_mean());
    println!(
        "# shape check: peak-to-mean {:.2} > 1.5 reproduces the paper's bursty profile",
        workload.peak_to_mean()
    );
}

//! AUTOSCALE — static vs reactive vs predictive vs max-scale control planes.
//!
//! Replays two workloads on the discrete-event testbed, all four scaling
//! modes running through the *same* replica-pool data plane:
//!
//! * **flash crowd** — quiet epochs, one epoch with a request surge, quiet
//!   again: the worst case for a rightsized static pool and the showcase
//!   for panic-mode scaling,
//! * **diurnal** — a [`TemporalWorkload`] day curve sampled into epochs:
//!   the showcase for keep-alive economics (scale down overnight) and the
//!   predictive scaler's forecast lead.
//!
//! For each (workload, mode) pair it records mean/p50/p99 latency, cold
//! starts, shed requests, scaling events, and the billed replica-seconds
//! integral, then pins the headline ratios in `BENCH_autoscale.json`:
//! an adaptive mode must beat the static pool on p99 under the flash crowd
//! while billing fewer replica-seconds than max-scale.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin autoscale            # measure + write BENCH_autoscale.json
//! cargo run --release -p socl-bench --bin autoscale -- --check # compare against committed JSON
//! ```
//!
//! Everything here is seeded and deterministic — no wall clocks enter the
//! metrics — so `--check` compares quality ratios, not machine speed, and
//! fails (exit 1) when one falls more than 25% below the committed
//! baseline.

use socl::prelude::*;

const BASELINE: &str = "BENCH_autoscale.json";
const SEED: u64 = 42;
const NODES: usize = 10;
const USERS: usize = 40;

struct Workload {
    name: &'static str,
    epoch_secs: f64,
    arrivals: Vec<usize>,
}

struct Point {
    workload: &'static str,
    mode: &'static str,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    cold_starts: usize,
    shed: usize,
    scale_ups: usize,
    scale_downs: usize,
    replica_seconds: f64,
}

/// Quiet epochs around one surge epoch two-thirds into the run.
fn flash_crowd() -> Workload {
    Workload {
        name: "flash",
        epoch_secs: 30.0,
        arrivals: vec![20, 20, 500, 20],
    }
}

/// A day curve sampled into 12 epochs, scaled so the peak tops out around
/// three times the quiet floor.
fn diurnal() -> Workload {
    let w = TemporalWorkload::generate(&TemporalConfig::default(), SEED ^ 0xD1);
    let bins = w.volumes.len();
    let mean = w.mean().max(1e-9);
    let epochs = 12usize;
    let arrivals = (0..epochs)
        .map(|e| {
            let v = w.volumes[e * bins / epochs];
            ((v / mean) * USERS as f64).round().max(1.0) as usize
        })
        .collect();
    Workload {
        name: "diurnal",
        epoch_secs: 60.0,
        arrivals,
    }
}

/// The knobs shared by every adaptive mode: tight concurrency target and a
/// fast loop so the 30–60 s epochs hold several control periods.
fn knobs() -> AutoscaleConfig {
    AutoscaleConfig {
        target_concurrency: 1.0,
        stable_window: 10.0,
        panic_window: 4.0,
        scale_interval: 1.0,
        down_cooldown: 10.0,
        min_replicas: 1,
        max_replicas_per_node: 8,
        keep_alive: KeepAlivePolicy::Fixed(15.0),
        ..AutoscaleConfig::default()
    }
}

fn modes() -> Vec<(&'static str, AutoscaleConfig)> {
    vec![
        (
            "static",
            AutoscaleConfig {
                mode: ScalingMode::Static,
                ..knobs()
            },
        ),
        (
            "reactive",
            AutoscaleConfig {
                mode: ScalingMode::Reactive,
                ..knobs()
            },
        ),
        (
            "predictive",
            AutoscaleConfig {
                mode: ScalingMode::Predictive,
                ..knobs()
            },
        ),
        ("max-scale", AutoscaleConfig::max_scale()),
    ]
}

fn run_point(
    sc: &Scenario,
    placement: &Placement,
    w: &Workload,
    mode: &'static str,
    ac: &AutoscaleConfig,
) -> Point {
    let cfg = TestbedConfig {
        epochs: w.arrivals.len(),
        epoch_secs: w.epoch_secs,
        seed: SEED,
        epoch_arrivals: Some(w.arrivals.clone()),
        autoscale: Some(ac.clone()),
        ..TestbedConfig::default()
    };
    let res = run_testbed(sc, placement, &cfg);
    Point {
        workload: w.name,
        mode,
        mean_ms: res.mean * 1e3,
        p50_ms: res.median() * 1e3,
        p99_ms: res.latency_percentile(0.99) * 1e3,
        cold_starts: res.cold_starts,
        shed: res.shed_requests,
        scale_ups: res.scale_up_events,
        scale_downs: res.scale_down_events,
        replica_seconds: res.replica_seconds,
    }
}

fn by<'a>(points: &'a [Point], workload: &str, mode: &str) -> &'a Point {
    points
        .iter()
        .find(|p| p.workload == workload && p.mode == mode)
        .expect("every (workload, mode) pair was measured")
}

struct Summary {
    /// static p99 / best adaptive p99 under the flash crowd (>1 = win).
    flash_p99_speedup: f64,
    /// 1 − best-adaptive replica-seconds / max-scale replica-seconds under
    /// the flash crowd (fraction of the always-max bill avoided).
    flash_replica_saving: f64,
    /// Same saving over the diurnal day curve (scale-to-zero overnight).
    diurnal_replica_saving: f64,
}

fn summarize(points: &[Point]) -> Summary {
    let stat = by(points, "flash", "static");
    let maxs = by(points, "flash", "max-scale");
    let best = [
        by(points, "flash", "reactive"),
        by(points, "flash", "predictive"),
    ]
    .into_iter()
    .min_by(|a, b| a.p99_ms.total_cmp(&b.p99_ms))
    .expect("two adaptive modes");
    let d_max = by(points, "diurnal", "max-scale");
    let d_best = [
        by(points, "diurnal", "reactive"),
        by(points, "diurnal", "predictive"),
    ]
    .into_iter()
    .min_by(|a, b| a.replica_seconds.total_cmp(&b.replica_seconds))
    .expect("two adaptive modes");
    Summary {
        flash_p99_speedup: stat.p99_ms / best.p99_ms.max(1e-9),
        flash_replica_saving: 1.0 - best.replica_seconds / maxs.replica_seconds.max(1e-9),
        diurnal_replica_saving: 1.0 - d_best.replica_seconds / d_max.replica_seconds.max(1e-9),
    }
}

fn render_json(points: &[Point], s: &Summary) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"mean_ms\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cold_starts\": {}, \"shed\": {}, \
                 \"scale_ups\": {}, \"scale_downs\": {}, \"replica_seconds\": {:.1}}}",
                p.workload,
                p.mode,
                p.mean_ms,
                p.p50_ms,
                p.p99_ms,
                p.cold_starts,
                p.shed,
                p.scale_ups,
                p.scale_downs,
                p.replica_seconds
            )
        })
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"autoscale\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"points\": [\n{}\n  ],\n", entries.join(",\n")));
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"flash_p99_speedup\": {:.3},\n",
        s.flash_p99_speedup
    ));
    out.push_str(&format!(
        "    \"flash_replica_saving\": {:.3},\n",
        s.flash_replica_saving
    ));
    out.push_str(&format!(
        "    \"diurnal_replica_saving\": {:.3}\n",
        s.diurnal_replica_saving
    ));
    out.push_str("  }\n}\n");
    out
}

/// Extract the number following `"key":` in a flat JSON text.
fn find_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn measure() -> (Vec<Point>, Summary) {
    let sc = ScenarioConfig::paper(NODES, USERS).build(SEED);
    let placement = SoclSolver::new().solve(&sc).placement;
    println!("# AUTOSCALE: control-plane comparison ({NODES} nodes, {USERS} users, seed {SEED})");
    println!(
        "workload,mode,mean_ms,p50_ms,p99_ms,cold_starts,shed,scale_ups,scale_downs,replica_seconds"
    );
    let mut points = Vec::new();
    for w in [flash_crowd(), diurnal()] {
        for (mode, ac) in modes() {
            let p = run_point(&sc, &placement, &w, mode, &ac);
            println!(
                "{},{},{:.3},{:.3},{:.3},{},{},{},{},{:.1}",
                p.workload,
                p.mode,
                p.mean_ms,
                p.p50_ms,
                p.p99_ms,
                p.cold_starts,
                p.shed,
                p.scale_ups,
                p.scale_downs,
                p.replica_seconds
            );
            points.push(p);
        }
    }
    let s = summarize(&points);
    (points, s)
}

/// The acceptance shape: an adaptive mode beats static on flash-crowd p99
/// while billing fewer replica-seconds than max-scale.
fn shape_ok(s: &Summary) -> bool {
    let mut ok = true;
    for (name, value, min) in [
        ("flash_p99_speedup > 1", s.flash_p99_speedup, 1.0),
        ("flash_replica_saving > 0", s.flash_replica_saving, 0.0),
        ("diurnal_replica_saving > 0", s.diurnal_replica_saving, 0.0),
    ] {
        let pass = value > min;
        println!(
            "shape: {name} ({value:.3}) -> {}",
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    }
    ok
}

fn check(baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let (_, s) = measure();
    if !shape_ok(&s) {
        return 1;
    }
    let current = render_json(&[], &s);
    let mut failed = false;
    for key in [
        "flash_p99_speedup",
        "flash_replica_saving",
        "diurnal_replica_saving",
    ] {
        let (Some(base), Some(now)) = (find_number(&baseline, key), find_number(&current, key))
        else {
            eprintln!("check: key {key} missing from baseline or current run");
            failed = true;
            continue;
        };
        let floor = base * 0.75;
        let ok = now >= floor;
        println!(
            "check: {key} baseline {base:.3} current {now:.3} floor {floor:.3} -> {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        failed |= !ok;
    }
    i32::from(failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let path = args
            .iter()
            .position(|a| a == "--check")
            .and_then(|i| args.get(i + 1))
            .filter(|a| !a.starts_with('-'))
            .map_or(BASELINE, String::as_str);
        std::process::exit(check(path));
    }
    let (points, s) = measure();
    let ok = shape_ok(&s);
    let json = render_json(&points, &s);
    std::fs::write(BASELINE, &json).expect("write BENCH_autoscale.json");
    println!("wrote {BASELINE}");
    std::process::exit(i32::from(!ok));
}

//! SERVE — sustained decision throughput, decision latency, and the
//! crash/shard determinism gates of the sharded control-plane service.
//!
//! Drives `socl::serve::SoclServe` with a flash-crowd feed sized to
//! overload the drain budget around the spike, so the run exercises both
//! backpressure paths (queue-full sheds and admission sheds) while the
//! bulk of the horizon measures steady-state throughput. On top of the
//! timing, the bench re-runs the workload at shard count 1 (the decision
//! stream must be bit-identical) and kills one shard mid-run with a torn
//! WAL tail (the restored, replayed state must match a never-crashed
//! golden run bit for bit).
//!
//! ```sh
//! cargo run --release -p socl-bench --bin serve              # measure + write BENCH_serve.json
//! cargo run --release -p socl-bench --bin serve -- --check   # compare against committed JSON
//! ```
//!
//! `--check` fails (exit 1) when a *deterministic* guarantee regressed:
//! the decision/arrival counts drifting from the committed baseline, a
//! conservation or invariant violation, the shard-1 stream diverging, or
//! the kill-and-restore run not stitching back bit-identically.
//! Wall-clock fields (decisions/s, tick and route latency) are
//! machine-relative and informational only.

use socl::model::{RouteOutcome, RouteScratch};
use socl::prelude::*;
use std::time::Instant;

const BASELINE: &str = "BENCH_serve.json";

/// Ticks the service runs.
const TICKS: u32 = 60;
/// Tick the victim run's shard is killed at.
const KILL_AT: u32 = 46;
/// Shard killed in the crash-recovery leg.
const KILL_SHARD: usize = 1;
/// Routing-probe sample size for the per-decision latency estimate.
const PROBE_SAMPLES: usize = 2000;
/// Absolute ceiling on a serialized region checkpoint.
const CKPT_BYTES_CAP: usize = 256 * 1024;

fn config() -> ServeConfig {
    ServeConfig {
        nodes: 24,
        regions: 4,
        shards: 4,
        feed: FeedConfig {
            users: 200_000,
            shape: TemporalConfig::flash_crowd(),
            arrivals_per_tick: 300.0,
            seed: 0xFEED ^ 17,
            ..FeedConfig::default()
        },
        ..ServeConfig::small(17)
    }
}

struct Measured {
    totals: ServeTotals,
    violations: usize,
    shard_invariant: bool,
    stitched_equal: bool,
    oracle_mismatches: usize,
    replayed_ticks: u32,
    wal_bytes: usize,
    checkpoint_bytes_max: usize,
    // Wall-clock (informational).
    decisions_per_sec: f64,
    tick_ms_mean: f64,
    tick_ms_p99: f64,
    route_us_p99: f64,
    wall_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted
        .get(idx.min(sorted.len() - 1))
        .copied()
        .unwrap_or(0.0)
}

fn measure() -> Measured {
    let wall = Instant::now();
    println!(
        "# SERVE: {} users over {} nodes / {} regions / {} shards, flash-crowd, {TICKS} ticks",
        config().feed.users,
        config().nodes,
        config().regions,
        config().shards
    );

    // Golden run: throughput + latency + the reference decision stream.
    let mut golden = SoclServe::new(config());
    let mut tick_ms: Vec<f64> = Vec::with_capacity(TICKS as usize);
    let run_clock = Instant::now();
    for _ in 0..TICKS {
        let t0 = Instant::now();
        golden.step();
        tick_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let run_secs = run_clock.elapsed().as_secs_f64();
    let totals = golden.totals();
    let violations = socl::serve::audit_serve(&golden).len();
    let golden_digests: Vec<Vec<u64>> = golden.digest_timeline().to_vec();
    let golden_final = golden.snapshot_all();

    // Per-decision latency: serial probes of the routing DP against the
    // live placement (the unit of work one admitted request costs).
    let mut scratch = RouteScratch::new();
    let mut route_us: Vec<f64> = Vec::with_capacity(PROBE_SAMPLES);
    let mut edge_probes = 0usize;
    for i in 0..PROBE_SAMPLES {
        let req = golden.probe_request((i * 97) as u32);
        let t0 = Instant::now();
        let outcome = golden.probe_route(&mut scratch, &req);
        route_us.push(t0.elapsed().as_secs_f64() * 1e6);
        if matches!(outcome, RouteOutcome::Edge { .. }) {
            edge_probes += 1;
        }
    }
    println!("routing probes: {edge_probes}/{PROBE_SAMPLES} edge-served");

    // Shard invariance: one shard must reproduce the stream exactly.
    let mut single = SoclServe::new(ServeConfig {
        shards: 1,
        ..config()
    });
    single.run(TICKS);
    let shard_invariant = single.digest_timeline() == golden_digests.as_slice()
        && single.snapshot_all() == golden_final;

    // Kill-and-restore: crash one shard mid-spike with a torn WAL tail,
    // replay, run to the end, and demand bit-identical stitched state.
    let mut victim = SoclServe::new(config());
    victim.run(KILL_AT);
    let (oracle_mismatches, replayed_ticks) =
        match victim.kill_and_restore(KILL_SHARD, TornTail::PartialRecord) {
            Ok(r) => (r.oracle_mismatches, r.replayed_ticks),
            Err(e) => {
                eprintln!("kill_and_restore failed: {e}");
                std::process::exit(1);
            }
        };
    victim.run(TICKS - KILL_AT);
    let stitched_equal = victim.snapshot_all() == golden_final
        && victim.digest_timeline() == golden_digests.as_slice();

    tick_ms.sort_by(f64::total_cmp);
    route_us.sort_by(f64::total_cmp);
    let m = Measured {
        totals,
        violations,
        shard_invariant,
        stitched_equal,
        oracle_mismatches,
        replayed_ticks,
        wal_bytes: golden.wal_bytes(),
        checkpoint_bytes_max: golden.max_checkpoint_bytes(),
        decisions_per_sec: totals.decided as f64 / run_secs.max(1e-9),
        tick_ms_mean: tick_ms.iter().sum::<f64>() / tick_ms.len().max(1) as f64,
        tick_ms_p99: percentile(&tick_ms, 0.99),
        route_us_p99: percentile(&route_us, 0.99),
        wall_s: wall.elapsed().as_secs_f64(),
    };
    println!(
        "{} arrivals -> {} decided ({} cloud), {} queue-shed, {} admission-shed, {} queued",
        m.totals.arrivals,
        m.totals.decided,
        m.totals.cloud_fallbacks,
        m.totals.shed_queue,
        m.totals.shed_admission,
        m.totals.queued
    );
    println!(
        "{:.0} decisions/s; tick mean {:.2} ms p99 {:.2} ms; route p99 {:.1} us; \
         peak queue {}; {} violations; shard_invariant {}; stitched_equal {} \
         ({} replayed, {} oracle mismatches); wall {:.2}s",
        m.decisions_per_sec,
        m.tick_ms_mean,
        m.tick_ms_p99,
        m.route_us_p99,
        m.totals.queue_peak,
        m.violations,
        m.shard_invariant,
        m.stitched_equal,
        m.replayed_ticks,
        m.oracle_mismatches,
        m.wall_s
    );
    m
}

fn conservation_holds(t: &ServeTotals) -> bool {
    t.arrivals == t.decided + t.shed_queue + t.shed_admission + t.queued
}

fn render_json(m: &Measured) -> String {
    let t = &m.totals;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"ticks\": {TICKS},\n"));
    out.push_str(&format!("  \"arrivals\": {},\n", t.arrivals));
    out.push_str(&format!("  \"decisions\": {},\n", t.decided));
    out.push_str(&format!("  \"cloud_fallbacks\": {},\n", t.cloud_fallbacks));
    out.push_str(&format!("  \"shed_queue\": {},\n", t.shed_queue));
    out.push_str(&format!("  \"shed_admission\": {},\n", t.shed_admission));
    out.push_str(&format!("  \"queued_at_end\": {},\n", t.queued));
    out.push_str(&format!(
        "  \"shed_conservation\": {},\n",
        conservation_holds(t)
    ));
    out.push_str(&format!("  \"queue_depth_peak\": {},\n", t.queue_peak));
    out.push_str(&format!("  \"violations\": {},\n", m.violations));
    out.push_str(&format!("  \"shard_invariant\": {},\n", m.shard_invariant));
    out.push_str(&format!("  \"stitched_equal\": {},\n", m.stitched_equal));
    out.push_str(&format!(
        "  \"oracle_mismatches\": {},\n",
        m.oracle_mismatches
    ));
    out.push_str(&format!("  \"replayed_ticks\": {},\n", m.replayed_ticks));
    out.push_str(&format!("  \"wal_bytes\": {},\n", m.wal_bytes));
    out.push_str(&format!(
        "  \"checkpoint_bytes_max\": {},\n",
        m.checkpoint_bytes_max
    ));
    out.push_str("  \"wall_clock\": {\n");
    out.push_str(&format!(
        "    \"decisions_per_sec\": {:.0},\n",
        m.decisions_per_sec
    ));
    out.push_str(&format!("    \"tick_ms_mean\": {:.3},\n", m.tick_ms_mean));
    out.push_str(&format!("    \"tick_ms_p99\": {:.3},\n", m.tick_ms_p99));
    out.push_str(&format!("    \"route_us_p99\": {:.2},\n", m.route_us_p99));
    out.push_str(&format!("    \"wall_s\": {:.2}\n", m.wall_s));
    out.push_str("  }\n}\n");
    out
}

/// Extract the number following `"key":` in a flat JSON text.
fn find_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let m = measure();
    let mut failed = false;
    let mut gate = |name: &str, ok: bool, detail: String| {
        println!(
            "check: {name} {detail} -> {}",
            if ok { "ok" } else { "FAILED" }
        );
        failed |= !ok;
    };
    // Deterministic equality against the committed baseline: the decision
    // stream is a pure function of the configuration.
    for (key, current) in [
        ("arrivals", m.totals.arrivals as f64),
        ("decisions", m.totals.decided as f64),
        ("shed_queue", m.totals.shed_queue as f64),
        ("shed_admission", m.totals.shed_admission as f64),
    ] {
        match find_number(&baseline, key) {
            Some(base) => gate(
                key,
                current == base,
                format!("current {current:.0} baseline {base:.0}"),
            ),
            None => gate(key, false, "baseline key missing".into()),
        }
    }
    gate(
        "shed_conservation",
        conservation_holds(&m.totals),
        format!(
            "arrivals {} = decided {} + shed {} + queued {}",
            m.totals.arrivals,
            m.totals.decided,
            m.totals.shed_queue + m.totals.shed_admission,
            m.totals.queued
        ),
    );
    gate(
        "violations",
        m.violations == 0,
        format!("current {}", m.violations),
    );
    gate(
        "shard_invariant",
        m.shard_invariant,
        "1-shard stream vs 4-shard stream".into(),
    );
    gate(
        "stitched_equal",
        m.stitched_equal && m.oracle_mismatches == 0,
        format!(
            "replayed {} tick(s), {} oracle mismatch(es)",
            m.replayed_ticks, m.oracle_mismatches
        ),
    );
    gate(
        "checkpoint_cap",
        m.checkpoint_bytes_max <= CKPT_BYTES_CAP,
        format!("current {} cap {CKPT_BYTES_CAP}", m.checkpoint_bytes_max),
    );
    let base_viol = find_number(&baseline, "violations").unwrap_or(f64::NAN);
    gate(
        "baseline_clean",
        base_viol == 0.0,
        format!("baseline violations {base_viol}"),
    );
    i32::from(failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let path = args
            .iter()
            .position(|a| a == "--check")
            .and_then(|i| args.get(i + 1))
            .filter(|a| !a.starts_with('-'))
            .map_or(BASELINE, String::as_str);
        std::process::exit(check(path));
    }
    let m = measure();
    if m.violations > 0 || !m.shard_invariant || !m.stitched_equal || m.oracle_mismatches > 0 {
        eprintln!("refusing to write a dirty baseline (violations or divergence present)");
        std::process::exit(1);
    }
    let json = render_json(&m);
    std::fs::write(BASELINE, &json).expect("write BENCH_serve.json");
    println!("wrote {BASELINE}");
}

//! FIG2 — "Runtime of optimal solutions using Gurobi" (Figure 2).
//!
//! The paper runs Gurobi on 10–30 edge servers and 40–60 users and shows
//! runtime exploding (log-scale y axis, >10× growth from 40 to 60 users).
//! Our Gurobi stand-in is the specialized exact branch-and-bound; its search
//! is exponential in the same way, so the *shape* reproduces at a scale a
//! laptop can certify: servers ∈ {4, 6, 8}, users swept until the per-point
//! time cap bites. Points that hit the cap are marked `>cap`.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig2_opt_runtime
//! SOCL_FULL=1 cargo run --release -p socl-bench --bin fig2_opt_runtime   # wider sweep
//! ```

use socl::prelude::*;
use socl_bench::GeoSeries;
use std::time::Duration;

fn main() {
    let full = std::env::var_os("SOCL_FULL").is_some();
    let cap = if full {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(20)
    };
    let servers: &[usize] = if full { &[4, 6, 8, 10] } else { &[4, 6, 8] };
    let users: Vec<usize> = if full {
        (2..=16).step_by(2).collect()
    } else {
        (2..=10).step_by(2).collect()
    };

    println!("# FIG2: exact-optimizer (OPT) runtime blow-up");
    println!("servers,users,opt_seconds,opt_nodes,proved,socl_seconds");
    let mut growths = Vec::new();
    for &n in servers {
        let mut series = GeoSeries::new(format!("{n} servers"));
        for &u in &users {
            let mut cfg = ScenarioConfig::paper(n, u);
            cfg.requests.chain_len = (2, 4);
            let sc = cfg.build(7);
            let opt = solve_exact(
                &sc,
                &ExactOptions {
                    time_limit: Some(cap),
                    ..ExactOptions::default()
                },
            );
            let t = std::time::Instant::now();
            let _ = SoclSolver::new().solve(&sc);
            let socl_secs = t.elapsed().as_secs_f64();
            println!(
                "{n},{u},{:.4}{},{},{},{:.4}",
                opt.elapsed.as_secs_f64(),
                if opt.proved_optimal { "" } else { " (>cap)" },
                opt.nodes,
                opt.proved_optimal,
                socl_secs
            );
            if opt.proved_optimal {
                series.push(u as f64, opt.elapsed.as_secs_f64().max(1e-6));
            }
        }
        growths.push((n, series.growth_factor()));
    }
    println!("\n# shape check: per-2-users runtime growth factor (paper: ~exponential)");
    for (n, g) in growths {
        println!("servers={n}: x{g:.2} per step");
    }
}

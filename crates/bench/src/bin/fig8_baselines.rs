//! FIG8 — objective (cost & latency) against the baselines for user scales
//! 80/120/160/200 on 10 servers (Figures 8a–8d).
//!
//! Paper shape to reproduce: SoCL lowest at every scale; RP worst and
//! deteriorating fastest; JDR overspending (high cost, decent latency);
//! GC-OG close on quality but increasingly slow.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig8_baselines
//! ```

use socl::prelude::*;
use std::time::Instant;

struct Row {
    objective: f64,
    cost: f64,
    latency: f64,
    seconds: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let seeds: &[u64] = &[1, 2, 3];
    let scales: &[usize] = &[80, 120, 160, 200];

    println!(
        "# FIG8: objective vs baselines (10 servers; median of {} seeds)",
        seeds.len()
    );
    println!("users,algo,objective,cost,latency_s,runtime_s");
    let mut summary: Vec<(usize, String, f64)> = Vec::new();

    for &users in scales {
        let mut per_algo: Vec<(&str, Vec<Row>)> = vec![
            ("SoCL", Vec::new()),
            ("RP", Vec::new()),
            ("JDR", Vec::new()),
            ("GC-OG", Vec::new()),
        ];
        for &seed in seeds {
            let sc = ScenarioConfig::paper(10, users).build(seed);

            let t = Instant::now();
            let socl = SoclSolver::new().solve(&sc);
            per_algo[0].1.push(Row {
                objective: socl.objective(),
                cost: socl.evaluation.cost,
                latency: socl.evaluation.total_latency,
                seconds: t.elapsed().as_secs_f64(),
            });

            let rp = random_provisioning(&sc, seed ^ 0xBEEF);
            per_algo[1].1.push(Row {
                objective: rp.objective,
                cost: rp.cost,
                latency: rp.total_latency,
                seconds: rp.elapsed.as_secs_f64(),
            });

            let j = jdr(&sc);
            per_algo[2].1.push(Row {
                objective: j.objective,
                cost: j.cost,
                latency: j.total_latency,
                seconds: j.elapsed.as_secs_f64(),
            });

            let g = gc_og(&sc);
            per_algo[3].1.push(Row {
                objective: g.objective,
                cost: g.cost,
                latency: g.total_latency,
                seconds: g.elapsed.as_secs_f64(),
            });
        }
        for (name, rows) in &per_algo {
            let obj = median(rows.iter().map(|r| r.objective).collect());
            let cost = median(rows.iter().map(|r| r.cost).collect());
            let lat = median(rows.iter().map(|r| r.latency).collect());
            let secs = median(rows.iter().map(|r| r.seconds).collect());
            println!("{users},{name},{obj:.1},{cost:.1},{lat:.2},{secs:.4}");
            summary.push((users, name.to_string(), obj));
        }
        println!();
    }

    println!("# shape check (paper: SoCL < GC-OG/JDR < RP at every scale,");
    println!("# RP growing fastest; SoCL growth modest)");
    for &users in scales {
        let get = |name: &str| {
            summary
                .iter()
                .find(|(u, n, _)| *u == users && n == name)
                .map(|(_, _, o)| *o)
                .unwrap()
        };
        let (s, r, j, g) = (get("SoCL"), get("RP"), get("JDR"), get("GC-OG"));
        println!(
            "users={users}: SoCL {s:.0} | GC-OG {g:.0} | JDR {j:.0} | RP {r:.0}  (SoCL lowest: {})",
            s <= r.min(j).min(g)
        );
    }
}

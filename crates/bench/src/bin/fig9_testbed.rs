//! FIG9 — testbed-emulator evaluation on 8 edge nodes (Figures 9a/9b).
//!
//! The paper runs RP, JDR and SoCL on an 8-node Kubernetes cluster under 50
//! and 70 users, comparing the objective and its cost/latency components,
//! then analyzes per-user medians. This harness reproduces the measurement
//! pipeline on the discrete-event emulator.
//!
//! Paper shape to reproduce: RP and JDR buy their latency with near-full
//! budget consumption while SoCL balances both; per-user median latency of
//! SoCL is on par with RP and better than JDR.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig9_testbed
//! ```

use socl::prelude::*;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    println!("# FIG9: emulated 8-node testbed, 50 and 70 users");
    println!("users,algo,objective,cost,latency_total_s,median_ms,p95_ms,max_ms,cold_starts");
    for users in [50usize, 70] {
        let sc = ScenarioConfig::paper(8, users).build(31);
        let tb = TestbedConfig {
            epochs: 4,
            ..TestbedConfig::default()
        };
        for (name, placement) in [
            ("RP", random_provisioning(&sc, 5).placement),
            ("JDR", jdr(&sc).placement),
            ("SoCL", SoclSolver::new().solve(&sc).placement),
        ] {
            let ev = evaluate(&sc, &placement);
            let res = run_testbed(&sc, &placement, &tb);
            let mut served: Vec<f64> = res.per_request.iter().flatten().copied().collect();
            served.sort_by(f64::total_cmp);
            println!(
                "{users},{name},{:.1},{:.1},{:.2},{:.1},{:.1},{:.1},{}",
                ev.objective,
                ev.cost,
                ev.total_latency,
                percentile(&served, 0.5) * 1e3,
                percentile(&served, 0.95) * 1e3,
                res.max * 1e3,
                res.cold_starts
            );
        }
        println!();
    }
    println!("# shape check (paper): SoCL achieves the lowest objective by balancing");
    println!("# deployment cost against latency; RP/JDR lean on the full budget.");
}

//! CHAOS SOAK — crash-recovery latency, checkpoint overhead, and the
//! invariant-audit gate.
//!
//! Runs the coverage-guided chaos soak (`socl::sim::run_chaos_soak`) on a
//! control-plane-heavy online configuration: every run is killed at a slot
//! boundary (optionally with a mangled log tail), restored from its last
//! checkpoint, replayed from the decision log, compared bit-for-bit against
//! the uninterrupted run, and audited for invariant violations. On top of
//! the soak's deterministic outcome the bench records the wall-clock cost
//! of recovery and of checkpoint serialization.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin chaos_soak              # measure + write BENCH_recovery.json
//! cargo run --release -p socl-bench --bin chaos_soak -- --check   # compare against committed JSON
//! ```
//!
//! `--check` re-runs the soak and fails (exit 1) when any *deterministic*
//! guarantee regressed: an invariant violation, a run diverging from its
//! golden timeline, coverage collapsing below the floor, or the checkpoint
//! growing past the absolute cap or 3× the committed baseline. Wall-clock
//! fields are machine-relative and informational only — they are never
//! enforced.

use socl::prelude::*;
use std::time::Instant;

const BASELINE: &str = "BENCH_recovery.json";

/// The soak must exercise at least this many distinct coverage features;
/// fewer means the configuration stopped reaching the behaviors the
/// recovery path is supposed to survive (mid-slot crashes, repairs,
/// scheduled faults, torn tails, deep replays…).
const COVERAGE_FLOOR: usize = 8;

/// Absolute ceiling on a single serialized checkpoint. The bench topology
/// checkpoints in ~10 KiB; blowing past this means derived state leaked
/// into the image.
const CKPT_BYTES_CAP: usize = 64 * 1024;

/// Relative bloat gate against the committed baseline.
const CKPT_BLOAT_FACTOR: f64 = 3.0;

fn plan() -> SoakPlan {
    let base = OnlineConfig {
        slots: 12,
        users: 40,
        nodes: 12,
        fail_prob: 0.3,
        mid_slot_fail_prob: 0.3,
        recover_prob: 0.4,
        repair: true,
        autoscale: Some(AutoscaleConfig {
            mode: ScalingMode::Reactive,
            admission: AdmissionPolicy {
                enabled: true,
                ..AutoscaleConfig::default().admission
            },
            ..AutoscaleConfig::default()
        }),
        ..OnlineConfig::default()
    };
    SoakPlan {
        seeds: vec![11, 23, 47],
        kill_slots: vec![0, 3, 6, 11],
        checkpoint_every: 4,
        with_fault_schedules: true,
        torn_tails: vec![TornTail::Clean, TornTail::Garbage, TornTail::PartialRecord],
        guided_rounds: 8,
        ..SoakPlan::ci(base, Policy::Socl(SoclConfig::default()))
    }
}

struct KillPoint {
    kill_slot: usize,
    runs: usize,
    recovery_ms_mean: f64,
    recovery_ms_max: f64,
    replayed_slots_mean: f64,
    checkpoint_bytes_mean: f64,
}

fn kill_points(summary: &SoakSummary) -> Vec<KillPoint> {
    let mut slots: Vec<usize> = summary.rows.iter().map(|r| r.case.kill_slot).collect();
    slots.sort_unstable();
    slots.dedup();
    slots
        .into_iter()
        .map(|k| {
            let rows: Vec<&SoakRow> = summary
                .rows
                .iter()
                .filter(|r| r.case.kill_slot == k)
                .collect();
            let n = rows.len().max(1) as f64;
            let rec_ms: Vec<f64> = rows
                .iter()
                .map(|r| r.recovery_wall.as_secs_f64() * 1e3)
                .collect();
            KillPoint {
                kill_slot: k,
                runs: rows.len(),
                recovery_ms_mean: rec_ms.iter().sum::<f64>() / n,
                recovery_ms_max: rec_ms.iter().copied().fold(0.0, f64::max),
                replayed_slots_mean: rows.iter().map(|r| r.replayed_slots as f64).sum::<f64>() / n,
                checkpoint_bytes_mean: rows.iter().map(|r| r.checkpoint_bytes as f64).sum::<f64>()
                    / n,
            }
        })
        .collect()
}

fn render_json(summary: &SoakSummary, soak_wall_s: f64) -> String {
    let guided = summary.rows.iter().filter(|r| r.guided).count();
    let n = summary.rows.len().max(1) as f64;
    let rec_ms: Vec<f64> = summary
        .rows
        .iter()
        .map(|r| r.recovery_wall.as_secs_f64() * 1e3)
        .collect();
    let ckpt_ms: Vec<f64> = summary
        .rows
        .iter()
        .map(|r| r.checkpoint_wall.as_secs_f64() * 1e3)
        .collect();
    let coverage: Vec<String> = summary
        .coverage
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect();
    let points: Vec<String> = kill_points(summary)
        .iter()
        .map(|p| {
            format!(
                "    {{\"kill_slot\": {}, \"runs\": {}, \"rec_ms_mean\": {:.3}, \
                 \"rec_ms_max\": {:.3}, \"replayed_mean\": {:.2}, \"ckpt_bytes\": {:.0}}}",
                p.kill_slot,
                p.runs,
                p.recovery_ms_mean,
                p.recovery_ms_max,
                p.replayed_slots_mean,
                p.checkpoint_bytes_mean
            )
        })
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"recovery\",\n");
    out.push_str(&format!("  \"runs\": {},\n", summary.rows.len()));
    out.push_str(&format!("  \"guided_runs\": {guided},\n"));
    out.push_str(&format!("  \"violations\": {},\n", summary.violations));
    out.push_str(&format!(
        "  \"mismatch_runs\": {},\n",
        summary.mismatch_runs
    ));
    out.push_str(&format!(
        "  \"coverage_features\": {},\n",
        summary.coverage.len()
    ));
    out.push_str(&format!("  \"coverage\": [{}],\n", coverage.join(", ")));
    out.push_str(&format!(
        "  \"checkpoint_bytes_max\": {},\n",
        summary.max_checkpoint_bytes
    ));
    out.push_str(&format!(
        "  \"checkpoint_bytes_mean\": {:.0},\n",
        summary.mean_checkpoint_bytes
    ));
    out.push_str(&format!(
        "  \"log_bytes_mean\": {:.0},\n",
        summary.mean_log_bytes
    ));
    out.push_str(&format!(
        "  \"kill_points\": [\n{}\n  ],\n",
        points.join(",\n")
    ));
    out.push_str("  \"wall_clock\": {\n");
    out.push_str(&format!(
        "    \"recovery_ms_mean\": {:.3},\n",
        rec_ms.iter().sum::<f64>() / n
    ));
    out.push_str(&format!(
        "    \"recovery_ms_max\": {:.3},\n",
        rec_ms.iter().copied().fold(0.0, f64::max)
    ));
    out.push_str(&format!(
        "    \"checkpoint_ms_mean\": {:.4},\n",
        ckpt_ms.iter().sum::<f64>() / n
    ));
    out.push_str(&format!("    \"soak_wall_s\": {soak_wall_s:.2}\n"));
    out.push_str("  }\n}\n");
    out
}

/// Extract the number following `"key":` in a flat JSON text.
fn find_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn measure() -> (SoakSummary, f64) {
    let plan = plan();
    println!(
        "# CHAOS SOAK: {} seeds x {} kill-points x schedules x {} torn modes (+{} guided)",
        plan.seeds.len(),
        plan.kill_slots.len(),
        plan.torn_tails.len(),
        plan.guided_rounds
    );
    let t = Instant::now();
    let summary = match run_chaos_soak(&plan) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("soak failed to complete: {e}");
            std::process::exit(1);
        }
    };
    let wall = t.elapsed().as_secs_f64();
    println!("kill_slot,runs,rec_ms_mean,rec_ms_max,replayed_mean,ckpt_bytes_mean");
    for p in kill_points(&summary) {
        println!(
            "{},{},{:.3},{:.3},{:.2},{:.0}",
            p.kill_slot,
            p.runs,
            p.recovery_ms_mean,
            p.recovery_ms_max,
            p.replayed_slots_mean,
            p.checkpoint_bytes_mean
        );
    }
    println!(
        "{} runs in {:.2}s; {} violations, {} mismatching runs, {} coverage features",
        summary.rows.len(),
        wall,
        summary.violations,
        summary.mismatch_runs,
        summary.coverage.len()
    );
    (summary, wall)
}

fn check(baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let (summary, _wall) = measure();
    let mut failed = false;
    let mut gate = |name: &str, ok: bool, detail: String| {
        println!(
            "check: {name} {detail} -> {}",
            if ok { "ok" } else { "FAILED" }
        );
        failed |= !ok;
    };
    gate(
        "violations",
        summary.violations == 0,
        format!("current {}", summary.violations),
    );
    gate(
        "mismatch_runs",
        summary.mismatch_runs == 0,
        format!("current {}", summary.mismatch_runs),
    );
    gate(
        "coverage_floor",
        summary.coverage.len() >= COVERAGE_FLOOR,
        format!("current {} floor {COVERAGE_FLOOR}", summary.coverage.len()),
    );
    gate(
        "checkpoint_cap",
        summary.max_checkpoint_bytes <= CKPT_BYTES_CAP,
        format!(
            "current {} cap {CKPT_BYTES_CAP}",
            summary.max_checkpoint_bytes
        ),
    );
    // Committed-baseline sanity: the repo must never carry a dirty soak.
    let base_viol = find_number(&baseline, "violations").unwrap_or(f64::NAN);
    let base_mism = find_number(&baseline, "mismatch_runs").unwrap_or(f64::NAN);
    gate(
        "baseline_clean",
        base_viol == 0.0 && base_mism == 0.0,
        format!("baseline violations {base_viol} mismatch_runs {base_mism}"),
    );
    // Checkpoint bloat relative to the committed baseline (sizes are
    // deterministic, but the gate is loose so a regenerated baseline and
    // an older one never disagree on pass/fail for the same code).
    if let Some(base_bytes) = find_number(&baseline, "checkpoint_bytes_max") {
        let limit = base_bytes * CKPT_BLOAT_FACTOR;
        gate(
            "checkpoint_bloat",
            (summary.max_checkpoint_bytes as f64) <= limit,
            format!(
                "current {} baseline {base_bytes:.0} limit {limit:.0}",
                summary.max_checkpoint_bytes
            ),
        );
    } else {
        gate("checkpoint_bloat", false, "baseline key missing".into());
    }
    i32::from(failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let path = args
            .iter()
            .position(|a| a == "--check")
            .and_then(|i| args.get(i + 1))
            .filter(|a| !a.starts_with('-'))
            .map_or(BASELINE, String::as_str);
        std::process::exit(check(path));
    }
    let (summary, wall) = measure();
    if !summary.is_clean() {
        eprintln!("refusing to write a dirty baseline (violations or mismatches present)");
        std::process::exit(1);
    }
    let json = render_json(&summary, wall);
    std::fs::write(BASELINE, &json).expect("write BENCH_recovery.json");
    println!("wrote {BASELINE}");
}

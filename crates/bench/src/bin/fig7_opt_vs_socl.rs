//! FIG7 + TAB-GAP — OPT (exact) vs SoCL: objective value and runtime across
//! user and node scales (Figures 7a–7d), plus the optimality-gap table
//! (the paper reports gaps below 9.9% and ≥10× speedups).
//!
//! The exact optimizer is certified only at laptop scale; each sweep runs
//! until OPT's time cap bites (capped points report the incumbent and are
//! flagged). SoCL runs at every point.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig7_opt_vs_socl
//! SOCL_FULL=1 cargo run --release -p socl-bench --bin fig7_opt_vs_socl
//! ```

use socl::prelude::*;
use std::time::Duration;

fn run_point(nodes: usize, users: usize, cap: Duration, seed: u64) {
    let mut cfg = ScenarioConfig::paper(nodes, users);
    cfg.requests.chain_len = (2, 4);
    let sc = cfg.build(seed);

    let opt = solve_exact(
        &sc,
        &ExactOptions {
            time_limit: Some(cap),
            ..ExactOptions::default()
        },
    );
    let t = std::time::Instant::now();
    let socl = SoclSolver::new().solve(&sc);
    let socl_secs = t.elapsed().as_secs_f64();

    let gap = if opt.objective.is_finite() {
        (socl.objective() - opt.objective) / opt.objective * 100.0
    } else {
        f64::NAN
    };
    let speedup = opt.elapsed.as_secs_f64() / socl_secs.max(1e-9);
    println!(
        "{nodes},{users},{:.1},{:.1},{gap:.2},{:.4},{:.5},{speedup:.1},{}",
        opt.objective,
        socl.objective(),
        opt.elapsed.as_secs_f64(),
        socl_secs,
        if opt.proved_optimal {
            "optimal"
        } else {
            "capped"
        }
    );
}

fn main() {
    let full = std::env::var_os("SOCL_FULL").is_some();
    let cap = if full {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(15)
    };

    println!("# FIG7a/b: user-scale sweep (fixed 5 nodes)");
    println!("nodes,users,opt_obj,socl_obj,gap_pct,opt_seconds,socl_seconds,speedup,opt_status");
    let user_sweep: Vec<usize> = if full {
        (4..=24).step_by(4).collect()
    } else {
        (4..=12).step_by(2).collect()
    };
    for &u in &user_sweep {
        run_point(5, u, cap, 11);
    }

    println!("\n# FIG7c/d: node-scale sweep (fixed 8 users)");
    println!("nodes,users,opt_obj,socl_obj,gap_pct,opt_seconds,socl_seconds,speedup,opt_status");
    let node_sweep: Vec<usize> = if full {
        (3..=10).collect()
    } else {
        (3..=7).collect()
    };
    for &n in &node_sweep {
        run_point(n, 8, cap, 13);
    }

    println!("\n# TAB-GAP: the paper reports SoCL gaps < 9.9% and runtime wins");
    println!("# growing to orders of magnitude at the scales where OPT hits its cap.");
}

//! HOTPATH — serial vs parallel vs incremental wall-clock trajectory.
//!
//! Measures the three hot-path engines on the paper's topology generator:
//!
//! * **APSP construction** — `AllPairs::build_serial` vs the fan-out over
//!   sources (`build_with_threads`) at V ∈ {50, 100, 200},
//! * **incremental invalidation** — post-fault recompute through
//!   [`ApspCache`] vs a from-scratch rebuild (single-link degradations,
//!   averaged over faults spread across the topology),
//! * **routing-DP evaluation** — `evaluate` with 1 thread vs the worker
//!   pool, at V ∈ {50, 100, 200} × chains ∈ {10, 50}.
//!
//! Every measured pair is also cross-checked for bit-identical output, so
//! the bench doubles as an end-to-end determinism smoke test.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin hotpath                # measure + write BENCH_hotpath.json
//! cargo run --release -p socl-bench --bin hotpath -- --check     # compare against committed JSON
//! ```
//!
//! `--check` re-measures and fails (exit 1) when a summary speedup regressed
//! by more than 25% relative to the committed baseline. Speedups are
//! machine-relative ratios, so the check is meaningful across runners — but
//! it is skipped (with a note) when the core count differs from the
//! baseline's, because parallel speedup scales with cores.

use socl::prelude::*;
use std::time::Instant;

const BASELINE: &str = "BENCH_hotpath.json";
const SIZES: [usize; 3] = [50, 100, 200];
const CHAINS: [usize; 2] = [10, 50];
const THREADS: usize = 4;
const REPS: usize = 3;

fn best_ms<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

struct ApspPoint {
    nodes: usize,
    serial_ms: f64,
    parallel_ms: f64,
    incremental_ms: f64,
    rebuild_ms: f64,
}

struct RoutingPoint {
    nodes: usize,
    chains: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

fn bench_apsp(nodes: usize) -> ApspPoint {
    let net = TopologyConfig::paper(nodes).build(7);
    let (serial_ms, serial) = best_ms(|| AllPairs::build_serial(&net));
    let (parallel_ms, parallel) = best_ms(|| AllPairs::build_with_threads(&net, THREADS));
    assert!(parallel.identical(&serial), "parallel APSP diverged");

    // Incremental: degrade + restore faults spread across the link set,
    // timed through the cache; the rebuild reference recomputes everything.
    let mut cache = ApspCache::new(&net);
    let faults = 8.min(net.link_count());
    let mut incremental_total = 0.0;
    for f in 0..faults {
        let idx = f * net.link_count() / faults;
        let base = cache.base_rate(idx);
        let t = Instant::now();
        cache.set_link_rate(idx, base * 0.3);
        incremental_total += t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        cache.set_link_rate(idx, base);
        incremental_total += t.elapsed().as_secs_f64() * 1e3;
    }
    let incremental_ms = incremental_total / (2 * faults) as f64;
    cache.set_link_rate(0, cache.base_rate(0) * 0.3);
    let (rebuild_ms, rebuilt) = best_ms(|| AllPairs::build_serial(cache.network()));
    assert!(
        cache.all_pairs().identical(&rebuilt),
        "incremental APSP diverged"
    );

    ApspPoint {
        nodes,
        serial_ms,
        parallel_ms,
        incremental_ms,
        rebuild_ms,
    }
}

fn bench_routing(nodes: usize, chains: usize) -> RoutingPoint {
    let sc = ScenarioConfig::paper(nodes, chains).build(9);
    let placement = Placement::full(sc.services(), sc.nodes());
    set_threads(1);
    let (serial_ms, serial) = best_ms(|| evaluate(&sc, &placement));
    set_threads(THREADS);
    let (parallel_ms, parallel) = best_ms(|| evaluate(&sc, &placement));
    set_threads(0);
    assert_eq!(
        serial.objective.to_bits(),
        parallel.objective.to_bits(),
        "parallel evaluation diverged"
    );
    RoutingPoint {
        nodes,
        chains,
        serial_ms,
        parallel_ms,
    }
}

fn render_json(cores: usize, apsp: &[ApspPoint], routing: &[RoutingPoint]) -> String {
    let apsp_entries: Vec<String> = apsp
        .iter()
        .map(|p| {
            format!(
                "    {{\"nodes\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
                 \"parallel_speedup\": {:.3}, \"incremental_ms\": {:.4}, \
                 \"rebuild_ms\": {:.3}, \"incremental_speedup\": {:.3}}}",
                p.nodes,
                p.serial_ms,
                p.parallel_ms,
                p.serial_ms / p.parallel_ms,
                p.incremental_ms,
                p.rebuild_ms,
                p.rebuild_ms / p.incremental_ms
            )
        })
        .collect();
    let routing_entries: Vec<String> = routing
        .iter()
        .map(|p| {
            format!(
                "    {{\"nodes\": {}, \"chains\": {}, \"serial_ms\": {:.3}, \
                 \"parallel_ms\": {:.3}, \"parallel_speedup\": {:.3}}}",
                p.nodes,
                p.chains,
                p.serial_ms,
                p.parallel_ms,
                p.serial_ms / p.parallel_ms
            )
        })
        .collect();
    let largest = apsp.last().expect("apsp matrix is non-empty");
    let inc_min = apsp
        .iter()
        .map(|p| p.rebuild_ms / p.incremental_ms)
        .fold(f64::INFINITY, f64::min);
    let routing_largest = routing.last().expect("routing matrix is non-empty");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!(
        "  \"apsp\": [\n{}\n  ],\n",
        apsp_entries.join(",\n")
    ));
    out.push_str(&format!(
        "  \"routing\": [\n{}\n  ],\n",
        routing_entries.join(",\n")
    ));
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"apsp_parallel_speedup_largest\": {:.3},\n",
        largest.serial_ms / largest.parallel_ms
    ));
    out.push_str(&format!(
        "    \"apsp_incremental_speedup_min\": {inc_min:.3},\n"
    ));
    out.push_str(&format!(
        "    \"routing_parallel_speedup_largest\": {:.3}\n",
        routing_largest.serial_ms / routing_largest.parallel_ms
    ));
    out.push_str("  }\n}\n");
    out
}

/// Extract the number following `"key":` in a flat JSON text.
fn find_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn measure() -> (usize, Vec<ApspPoint>, Vec<RoutingPoint>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# HOTPATH: serial vs parallel vs incremental ({cores} cores, {THREADS} threads)");
    println!("section,nodes,chains,serial_ms,parallel_ms,speedup,incremental_ms,rebuild_ms,incremental_speedup");
    let mut apsp = Vec::new();
    for &v in &SIZES {
        let p = bench_apsp(v);
        println!(
            "apsp,{v},,{:.3},{:.3},{:.3},{:.4},{:.3},{:.3}",
            p.serial_ms,
            p.parallel_ms,
            p.serial_ms / p.parallel_ms,
            p.incremental_ms,
            p.rebuild_ms,
            p.rebuild_ms / p.incremental_ms
        );
        apsp.push(p);
    }
    let mut routing = Vec::new();
    for &v in &SIZES {
        for &c in &CHAINS {
            let p = bench_routing(v, c);
            println!(
                "routing,{v},{c},{:.3},{:.3},{:.3},,,",
                p.serial_ms,
                p.parallel_ms,
                p.serial_ms / p.parallel_ms
            );
            routing.push(p);
        }
    }
    (cores, apsp, routing)
}

fn check(baseline_path: &str) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let (cores, apsp, routing) = measure();
    let current = render_json(cores, &apsp, &routing);
    let baseline_cores = find_number(&baseline, "cores").unwrap_or(0.0) as usize;
    if baseline_cores != cores {
        println!(
            "check: baseline ran on {baseline_cores} cores, this machine has {cores} — \
             parallel speedups are not comparable, skipping enforcement"
        );
        return 0;
    }
    let mut failed = false;
    for key in [
        "apsp_parallel_speedup_largest",
        "apsp_incremental_speedup_min",
        "routing_parallel_speedup_largest",
    ] {
        let (Some(base), Some(now)) = (find_number(&baseline, key), find_number(&current, key))
        else {
            eprintln!("check: key {key} missing from baseline or current run");
            failed = true;
            continue;
        };
        let floor = base * 0.75;
        let ok = now >= floor;
        println!(
            "check: {key} baseline {base:.3} current {now:.3} floor {floor:.3} -> {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        failed |= !ok;
    }
    i32::from(failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let path = args
            .iter()
            .position(|a| a == "--check")
            .and_then(|i| args.get(i + 1))
            .filter(|a| !a.starts_with('-'))
            .map_or(BASELINE, String::as_str);
        std::process::exit(check(path));
    }
    let (cores, apsp, routing) = measure();
    let json = render_json(cores, &apsp, &routing);
    std::fs::write(BASELINE, &json).expect("write BENCH_hotpath.json");
    println!("wrote {BASELINE}");
}

//! FIG3 — service/trace similarity analysis (Figures 3a and 3b).
//!
//! 3a: cosine similarity of microservice-usage vectors between the ten most
//! frequent services of a one-hour synthetic trace. 3b: Jaccard similarity
//! between successive traces of one deep service (≥ 12-microservice chain).
//! The paper's observation to reproduce: similarities are heterogeneous and
//! the cross-trace maximum sits well below 1 (Alibaba: ≈ 0.65).
//!
//! ```sh
//! cargo run --release -p socl-bench --bin fig3_similarity
//! ```

use socl::prelude::*;
use socl::trace::similarity::{offdiag_max, offdiag_mean};

fn main() {
    let generator = TraceGenerator::new(TraceConfig::default(), 42);

    // Figure 3a: similarity between the ten services.
    let traces = generator.sample_all(1);
    let m = similarity_matrix(&traces, |a, b| cosine_similarity(&a.usage, &b.usage));
    println!("# FIG3a: cosine similarity between services (10x10)");
    print!("service");
    for j in 0..10 {
        print!(",s{j}");
    }
    println!();
    for i in 0..10 {
        print!("s{i}");
        for j in 0..10 {
            print!(",{:.3}", m[i * 10 + j]);
        }
        println!();
    }
    println!(
        "# offdiag mean {:.3}, max {:.3}",
        offdiag_mean(&m, 10),
        offdiag_max(&m, 10)
    );

    // Figure 3b: similarity between successive traces of each deep service.
    println!("\n# FIG3b: structural (Jaccard) similarity between traces of one service");
    println!("service,pairs,mean,max");
    let mut global_max: f64 = 0.0;
    for s in 0..10 {
        let series = generator.sample_series(s, 10, 7);
        let j = similarity_matrix(&series, |a, b| jaccard_similarity(&a.edges, &b.edges));
        let mean = offdiag_mean(&j, 10);
        let max = offdiag_max(&j, 10);
        global_max = global_max.max(max);
        println!("s{s},45,{mean:.3},{max:.3}");
    }
    println!(
        "# shape check: max trace similarity {global_max:.3} (paper reports ≈ 0.65, i.e. well below 1)"
    );
}

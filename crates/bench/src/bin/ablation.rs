//! ABL — ablations of the design choices called out in DESIGN.md §6.
//!
//! 1. `ω` (parallel-combine fraction): batch size vs quality/rounds.
//! 2. `ξ` (virtual-link threshold): partition granularity vs objective.
//! 3. `Θ` (disturbance factor): descent-stop tolerance.
//! 4. Candidate-node filter (Theorem 1): on/off.
//! 5. Storage policy: FuzzyAHP `ρ` vs cheapest-out eviction.
//! 6. ζ mode: exact chain-aware gradient vs the ψ surrogate of Def. 8.
//! 7. Relocation (objective-guided migration): on/off.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin ablation
//! ```

use socl::prelude::*;
use std::time::Instant;

fn score(cfg: SoclConfig, seeds: &[u64]) -> (f64, f64) {
    let mut objs = Vec::new();
    let mut secs = Vec::new();
    for &seed in seeds {
        let sc = ScenarioConfig::paper(10, 100).build(seed);
        let t = Instant::now();
        let res = SoclSolver::with_config(cfg.clone()).solve(&sc);
        secs.push(t.elapsed().as_secs_f64());
        objs.push(res.objective());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&objs), mean(&secs))
}

fn sweep(tag: &str, base: &SoclConfig, seeds: &[u64]) {
    let (o, s) = score(base.clone(), seeds);
    println!("{tag}/baseline,{o:.1},{s:.4}");

    for omega in [0.05, 0.2, 0.5, 1.0] {
        let (o, s) = score(
            SoclConfig {
                omega,
                ..base.clone()
            },
            seeds,
        );
        println!("{tag}/omega={omega},{o:.1},{s:.4}");
    }
    for xi in [2.0, 30.0, 50.0, 100.0] {
        let (o, s) = score(SoclConfig { xi, ..base.clone() }, seeds);
        println!("{tag}/xi={xi},{o:.1},{s:.4}");
    }
    for theta in [0.0, 10.0, 100.0] {
        let (o, s) = score(
            SoclConfig {
                theta,
                ..base.clone()
            },
            seeds,
        );
        println!("{tag}/theta={theta},{o:.1},{s:.4}");
    }
    let (o, s) = score(
        SoclConfig {
            candidate_filter: false,
            ..base.clone()
        },
        seeds,
    );
    println!("{tag}/no_candidate_filter,{o:.1},{s:.4}");
    let (o, s) = score(
        SoclConfig {
            storage_policy: StoragePolicy::CheapestOut,
            ..base.clone()
        },
        seeds,
    );
    println!("{tag}/cheapest_out_storage,{o:.1},{s:.4}");
    let (o, s) = score(
        SoclConfig {
            exact_zeta: false,
            ..base.clone()
        },
        seeds,
    );
    println!("{tag}/surrogate_zeta,{o:.1},{s:.4}");
    let (o, s) = score(
        SoclConfig {
            parallel: false,
            ..base.clone()
        },
        seeds,
    );
    println!("{tag}/serial_execution,{o:.1},{s:.4}");
}

fn main() {
    let seeds: &[u64] = &[1, 2, 3];
    println!(
        "# ABLATIONS (10 nodes, 100 users, mean of {} seeds)",
        seeds.len()
    );
    println!("# The relocation pass is a strong equalizer: it converges to similar");
    println!("# local optima from different descent paths, masking the other knobs.");
    println!("# Both pipelines are therefore swept: with and without relocation.");
    println!("variant,objective,seconds");

    sweep("full", &SoclConfig::default(), seeds);
    sweep(
        "no_reloc",
        &SoclConfig {
            relocation: false,
            ..SoclConfig::default()
        },
        seeds,
    );
}

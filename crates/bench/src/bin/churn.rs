//! Churn study (extension): warm-started slot-to-slot re-provisioning vs
//! independent cold solves over a mobility trace.
//!
//! Every placement cell that changes between slots is a container teardown
//! plus a cold start somewhere else — exactly the serverless cost the
//! paper's storage-planning feature ("more warm instances in the nearby
//! area") is meant to control. The warm-start solver unions the previous
//! placement into stage 2 so stage 3 prefers dismantling fresh duplicates
//! over touching warm instances.
//!
//! ```sh
//! cargo run --release -p socl-bench --bin churn
//! ```

use socl::core::{placement_churn, WarmStartSolver};
use socl::prelude::*;

fn main() {
    let slots = 12usize;
    let cfg = OnlineConfig {
        slots,
        users: 50,
        nodes: 12,
        seed: 5,
        ..OnlineConfig::default()
    };
    // Drive user state with the online simulator, but provision through
    // both solvers on the same slot scenarios.
    let mut sim = OnlineSimulator::new(cfg);
    let mut warm = WarmStartSolver::new(SoclConfig::default());
    let cold = SoclSolver::new();

    println!("# churn per slot: cold (independent solves) vs warm start");
    println!("slot,cold_churn,warm_churn,cold_obj,warm_obj");
    let mut prev_cold: Option<Placement> = None;
    let mut totals = (0usize, 0usize);
    let mut obj_ratio_sum = 0.0;

    // Reuse the simulator's state evolution via run_measured's callback.
    let records: Vec<(usize, usize, f64, f64)> = {
        let mut rows = Vec::new();
        sim.run_measured(&Policy::Jdr, |sc, _| {
            let cold_res = cold.solve(sc);
            let warm_res = warm.solve_slot(sc);
            let cold_churn = prev_cold
                .as_ref()
                .map(|p| placement_churn(p, &cold_res.placement))
                .unwrap_or(0);
            rows.push((
                cold_churn,
                warm_res.churn,
                cold_res.objective(),
                warm_res.result.objective(),
            ));
            prev_cold = Some(cold_res.placement);
            None
        });
        rows
    };
    for (slot_idx, (cold_churn, warm_churn, cold_obj, warm_obj)) in records.into_iter().enumerate()
    {
        println!("{slot_idx},{cold_churn},{warm_churn},{cold_obj:.1},{warm_obj:.1}");
        totals.0 += cold_churn;
        totals.1 += warm_churn;
        if cold_obj > 0.0 {
            obj_ratio_sum += warm_obj / cold_obj;
        }
    }

    println!("\n# summary over {slots} slots");
    println!("total_cold_churn,{}", totals.0);
    println!("total_warm_churn,{}", totals.1);
    println!("warm_objective_vs_cold,{:.3}", obj_ratio_sum / slots as f64);
    println!("# shape check: warm churn should be well below cold churn at ~equal objective");
}

//! # socl-bench — shared reporting helpers for the figure harnesses
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library holds the shared
//! CSV/tabular output helpers so every harness prints rows the same way.

pub mod report;

pub use report::{print_csv_header, print_csv_row, GeoSeries};

//! # socl-trace — synthetic microservice traces and similarity analysis
//!
//! The paper motivates SoCL with measurements on the Alibaba Cluster Trace
//! Program (Figures 3 and 4): service-to-service similarity is heterogeneous
//! (max pairwise trace similarity ≈ 0.65) and request volume fluctuates with
//! strong recurring peaks. Those datasets are not redistributable, so this
//! crate synthesizes traces with the same statistical shape:
//!
//! * [`generator`] — call-graph traces: each *service* owns a preference-
//!   biased dependency graph over a shared microservice pool (dependency
//!   chains of 12+ microservices); each *trace file* samples invocations
//!   whose structure varies stochastically call to call.
//! * [`similarity`] — cosine similarity between microservice-usage vectors
//!   (Figure 3a) and Jaccard similarity between dependency-edge sets
//!   (Figure 3b).
//! * [`temporal`] — diurnal request-volume series with configurable peaks,
//!   noise and bursts (Figure 4).

pub mod generator;
pub mod metrics;
pub mod similarity;
pub mod temporal;

pub use generator::{ServiceTrace, TraceConfig, TraceGenerator};
pub use metrics::{acf, autocorrelation, burst_count, coefficient_of_variation, dominant_period};
pub use similarity::{cosine_similarity, jaccard_similarity, similarity_matrix};
pub use temporal::{Forecaster, ForecasterState, TemporalConfig, TemporalWorkload};

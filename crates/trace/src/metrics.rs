//! Time-series metrics for workload characterization (Figure 4 analysis).
//!
//! The paper's claim is qualitative ("significant temporal fluctuations and
//! recurring peaks"); these metrics make it checkable: autocorrelation
//! reveals the recurrence, the coefficient of variation and peak-to-mean
//! quantify the fluctuation, and the burst count measures how often the
//! series crosses a high-water mark.

/// Sample autocorrelation of `series` at `lag` (biased estimator, the usual
/// choice for ACF plots). Returns 0 for degenerate inputs.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean).powi(2)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    cov / var
}

/// Full ACF up to `max_lag` (inclusive); index 0 is always 1 for
/// non-degenerate series.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|l| autocorrelation(series, l)).collect()
}

/// Coefficient of variation `σ/μ`; 0 for flat or empty series.
pub fn coefficient_of_variation(series: &[f64]) -> f64 {
    let n = series.len();
    if n == 0 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    var.sqrt() / mean
}

/// Number of maximal runs where the series exceeds `threshold × mean`
/// (each run counts once, however long).
pub fn burst_count(series: &[f64], threshold: f64) -> usize {
    let n = series.len();
    if n == 0 {
        return 0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let bar = threshold * mean;
    let mut bursts = 0;
    let mut inside = false;
    for &v in series {
        if v > bar && !inside {
            bursts += 1;
            inside = true;
        } else if v <= bar {
            inside = false;
        }
    }
    bursts
}

/// Dominant recurrence lag: the lag (in `1..=max_lag`) with maximal ACF.
/// `None` for series shorter than 3 samples.
pub fn dominant_period(series: &[f64], max_lag: usize) -> Option<usize> {
    if series.len() < 3 || max_lag == 0 {
        return None;
    }
    (1..=max_lag.min(series.len() - 1))
        .map(|l| (l, autocorrelation(series, l)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(l, _)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::{TemporalConfig, TemporalWorkload};

    #[test]
    fn acf_lag_zero_is_one() {
        let s = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
        let a = acf(&s, 3);
        assert_eq!(a.len(), 4);
        assert!((a[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_detects_periodicity() {
        // Period-4 square wave: ACF at lag 4 ≈ 1, at lag 2 strongly negative.
        let s: Vec<f64> = (0..40)
            .map(|i| if (i / 2) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&s, 4) > 0.8);
        assert!(autocorrelation(&s, 2) < -0.5);
        assert_eq!(dominant_period(&s, 6), Some(4));
    }

    #[test]
    fn flat_series_is_degenerate() {
        let s = [5.0; 10];
        assert_eq!(autocorrelation(&s, 1), 0.0);
        assert_eq!(coefficient_of_variation(&s), 0.0);
        assert_eq!(burst_count(&s, 1.5), 0);
    }

    #[test]
    fn cv_matches_hand_computation() {
        // {2, 4}: μ=3, σ=1 → cv = 1/3.
        let s = [2.0, 4.0];
        assert!((coefficient_of_variation(&s) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bursts_count_runs_not_samples() {
        // mean = 1; threshold 2 → bar 2. Two separate excursions above 2.
        let s = [0.0, 3.0, 3.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(burst_count(&s, 2.0), 2);
    }

    #[test]
    fn synthetic_workload_is_bursty_and_structured() {
        let w = TemporalWorkload::generate(&TemporalConfig::default(), 11);
        // Fluctuation: CV comfortably above a flat series.
        assert!(coefficient_of_variation(&w.volumes) > 0.2);
        // Recurring peaks: at least one burst region.
        assert!(burst_count(&w.volumes, 1.5) >= 1);
    }

    #[test]
    fn edge_cases_do_not_panic() {
        assert_eq!(autocorrelation(&[], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(dominant_period(&[1.0, 2.0], 5), None);
        assert_eq!(burst_count(&[], 2.0), 0);
    }
}

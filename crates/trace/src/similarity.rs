//! Similarity measures for trace analysis (Figures 3a/3b).

/// Cosine similarity between two usage vectors. Zero vectors yield 0.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Jaccard similarity between two edge sets. Two empty sets yield 1.
pub fn jaccard_similarity(a: &[(u32, u32)], b: &[(u32, u32)]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.iter().filter(|e| b.contains(e)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Pairwise similarity matrix (row-major `n × n`) under `sim`.
pub fn similarity_matrix<T, F>(items: &[T], mut sim: F) -> Vec<f64>
where
    F: FnMut(&T, &T) -> f64,
{
    let n = items.len();
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = if i == j {
                1.0
            } else {
                sim(&items[i], &items[j])
            };
        }
    }
    m
}

/// Off-diagonal maximum of a row-major square matrix.
pub fn offdiag_max(matrix: &[f64], n: usize) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                best = best.max(matrix[i * n + j]);
            }
        }
    }
    best
}

/// Off-diagonal mean of a row-major square matrix.
pub fn offdiag_mean(matrix: &[f64], n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += matrix[i * n + j];
            }
        }
    }
    sum / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    #[test]
    fn cosine_identity_and_orthogonality() {
        assert!((cosine_similarity(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 1.0, 0.5];
        let scaled: Vec<f64> = b.iter().map(|x| x * 7.5).collect();
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&a, &scaled)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_basics() {
        let a = [(0, 1), (1, 2)];
        let b = [(1, 2), (2, 3)];
        assert!((jaccard_similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_similarity(&a, &a), 1.0);
        assert_eq!(jaccard_similarity(&a, &[]), 0.0);
        assert_eq!(jaccard_similarity(&[], &[]), 1.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let items = vec![vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]];
        let m = similarity_matrix(&items, |a, b| cosine_similarity(a, b));
        for i in 0..3 {
            assert_eq!(m[i * 3 + i], 1.0);
            for j in 0..3 {
                assert!((m[i * 3 + j] - m[j * 3 + i]).abs() < 1e-12);
            }
        }
    }

    /// The calibration claim of DESIGN.md: synthetic traces reproduce the
    /// paper's observation that cross-trace similarity is heterogeneous and
    /// bounded well below 1 (Alibaba: max ≈ 0.65).
    #[test]
    fn synthetic_traces_match_paper_shape() {
        let g = TraceGenerator::new(TraceConfig::default(), 42);
        // Figure 3b: structural similarity between successive traces of one
        // deep service.
        let series = g.sample_series(0, 10, 1);
        let m = similarity_matrix(&series, |a, b| jaccard_similarity(&a.edges, &b.edges));
        let max = offdiag_max(&m, 10);
        assert!(
            max > 0.2 && max < 0.9,
            "structural max similarity {max} outside the plausible band"
        );
        // Figure 3a: usage similarity across the ten services varies widely.
        let all = g.sample_all(2);
        let mu = similarity_matrix(&all, |a, b| cosine_similarity(&a.usage, &b.usage));
        let lo = mu
            .iter()
            .enumerate()
            .filter(|(i, _)| i / 10 != i % 10)
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        let hi = offdiag_max(&mu, 10);
        assert!(
            hi - lo > 0.2,
            "service similarities not heterogeneous: [{lo}, {hi}]"
        );
    }

    #[test]
    fn offdiag_stats() {
        let m = vec![1.0, 0.5, 0.3, 1.0];
        assert_eq!(offdiag_max(&m, 2), 0.5);
        assert!((offdiag_mean(&m, 2) - 0.4).abs() < 1e-12);
        assert_eq!(offdiag_mean(&[1.0], 1), 0.0);
    }
}

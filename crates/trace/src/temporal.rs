//! Temporal request-volume synthesis (Figure 4).
//!
//! The paper's 10-hour Alibaba window shows "significant temporal
//! fluctuations and recurring peaks". The generator composes:
//!
//! * a diurnal base curve (sum of two Gaussian bumps — e.g. late-morning and
//!   evening peaks),
//! * multiplicative log-normal-ish noise,
//! * occasional short bursts (flash-crowd events).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload-series parameters.
#[derive(Debug, Clone)]
pub struct TemporalConfig {
    /// Number of intervals (paper: 10 hours of 5-minute bins = 120).
    pub intervals: usize,
    /// Baseline requests per interval.
    pub base_rate: f64,
    /// Peak positions as fractions of the horizon (0..1).
    pub peak_centers: Vec<f64>,
    /// Peak heights as multiples of the base rate.
    pub peak_heights: Vec<f64>,
    /// Peak widths as fractions of the horizon.
    pub peak_widths: Vec<f64>,
    /// Relative noise amplitude.
    pub noise: f64,
    /// Per-interval probability of a flash burst.
    pub burst_prob: f64,
    /// Burst height as a multiple of the base rate.
    pub burst_height: f64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self {
            intervals: 120,
            base_rate: 40.0,
            peak_centers: vec![0.25, 0.75],
            peak_heights: vec![2.5, 3.2],
            peak_widths: vec![0.08, 0.1],
            noise: 0.15,
            burst_prob: 0.03,
            burst_height: 2.0,
        }
    }
}

impl TemporalConfig {
    /// A flash-crowd shape: flat load with one sharp, tall spike around
    /// 60% of the horizon plus frequent secondary bursts — the overload
    /// scenario the serve bench drives admission shedding with.
    #[must_use]
    pub fn flash_crowd() -> Self {
        Self {
            intervals: 120,
            base_rate: 40.0,
            peak_centers: vec![0.6],
            peak_heights: vec![6.0],
            peak_widths: vec![0.04],
            noise: 0.1,
            burst_prob: 0.08,
            burst_height: 3.0,
        }
    }

    /// A diurnal shape: two broad daily peaks, mild noise, no bursts —
    /// the steady-state scenario for sustained-throughput measurement.
    #[must_use]
    pub fn diurnal() -> Self {
        Self {
            intervals: 120,
            base_rate: 40.0,
            peak_centers: vec![0.3, 0.8],
            peak_heights: vec![1.8, 2.4],
            peak_widths: vec![0.12, 0.1],
            noise: 0.08,
            burst_prob: 0.0,
            burst_height: 0.0,
        }
    }
}

/// A generated request-volume series.
#[derive(Debug, Clone)]
pub struct TemporalWorkload {
    /// Requests per interval.
    pub volumes: Vec<f64>,
}

impl TemporalWorkload {
    /// Generate with the given seed.
    pub fn generate(cfg: &TemporalConfig, seed: u64) -> Self {
        assert_eq!(cfg.peak_centers.len(), cfg.peak_heights.len());
        assert_eq!(cfg.peak_centers.len(), cfg.peak_widths.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let n = cfg.intervals;
        let volumes = (0..n)
            .map(|i| {
                let t = i as f64 / n.max(1) as f64;
                let mut v = cfg.base_rate;
                for ((&c, &h), &w) in cfg
                    .peak_centers
                    .iter()
                    .zip(&cfg.peak_heights)
                    .zip(&cfg.peak_widths)
                {
                    let z = (t - c) / w;
                    v += cfg.base_rate * h * (-0.5 * z * z).exp();
                }
                // Multiplicative noise.
                v *= 1.0 + cfg.noise * (rng.gen::<f64>() * 2.0 - 1.0);
                // Flash bursts.
                if rng.gen::<f64>() < cfg.burst_prob {
                    v += cfg.base_rate * cfg.burst_height * rng.gen::<f64>();
                }
                v.max(0.0)
            })
            .collect();
        Self { volumes }
    }

    /// Peak-to-mean ratio — the burstiness statistic the paper's Figure 4
    /// visualizes.
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.volumes.iter().copied().fold(0.0, f64::max) / mean
        }
    }

    /// Mean volume.
    pub fn mean(&self) -> f64 {
        if self.volumes.is_empty() {
            0.0
        } else {
            self.volumes.iter().sum::<f64>() / self.volumes.len() as f64
        }
    }

    /// Integer user counts per interval, clamped to `[min_users, max_users]`
    /// — convenient for driving scenario generators.
    pub fn as_user_counts(&self, min_users: usize, max_users: usize) -> Vec<usize> {
        self.volumes
            .iter()
            .map(|&v| (v.round() as usize).clamp(min_users, max_users))
            .collect()
    }
}

/// Holt double-exponential smoothing over an arrival series — the forecast
/// that drives the predictive autoscaler in `socl-autoscale`.
///
/// The model keeps a smoothed *level* `ℓ` and *trend* `b`:
///
/// ```text
/// ℓ_t = α·y_t + (1-α)·(ℓ_{t-1} + b_{t-1})
/// b_t = β·(ℓ_t - ℓ_{t-1}) + (1-β)·b_{t-1}
/// ŷ_{t+h} = ℓ_t + h·b_t
/// ```
///
/// Trend-following is what lets a scaler provision *ahead* of a diurnal
/// ramp instead of chasing it: during the rising edge of a peak the trend
/// term is positive and the `h`-step-ahead forecast exceeds the current
/// observation, so replicas are warm before the load arrives. The update is
/// a pure fold over observations — no clocks, no RNG — so identical inputs
/// give bit-identical forecasts.
#[derive(Debug, Clone)]
pub struct Forecaster {
    /// Level smoothing factor `α ∈ (0, 1]`.
    alpha: f64,
    /// Trend smoothing factor `β ∈ [0, 1]`.
    beta: f64,
    level: f64,
    trend: f64,
    /// Number of observations folded in so far (0 or 1 = not warmed up).
    seen: usize,
}

impl Forecaster {
    /// New forecaster with the given smoothing factors.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]` or `beta` outside `[0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        assert!((0.0..=1.0).contains(&beta), "beta out of range");
        Self {
            alpha,
            beta,
            level: 0.0,
            trend: 0.0,
            seen: 0,
        }
    }

    /// Responsive defaults for scaler ticks (α 0.5, β 0.3): the level
    /// tracks the last few samples, the trend catches ramps within
    /// a handful of ticks.
    pub fn scaling_default() -> Self {
        Self::new(0.5, 0.3)
    }

    /// Fold in the next observation.
    pub fn observe(&mut self, y: f64) {
        let y = y.max(0.0);
        match self.seen {
            0 => {
                self.level = y;
                self.trend = 0.0;
            }
            1 => {
                // Two points pin the initial trend exactly.
                self.trend = y - self.level;
                self.level = y;
            }
            _ => {
                let prev = self.level;
                self.level = self.alpha * y + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev) + (1.0 - self.beta) * self.trend;
            }
        }
        self.seen += 1;
    }

    /// Forecast `horizon` steps ahead (clamped to ≥ 0). Before any
    /// observation the forecast is 0; with one observation it is flat.
    pub fn forecast(&self, horizon: f64) -> f64 {
        (self.level + horizon.max(0.0) * self.trend).max(0.0)
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> usize {
        self.seen
    }

    /// Freeze the full smoothing state for checkpointing. Together with
    /// [`Forecaster::from_state`] this round-trips bit-exactly: the fields
    /// are the *entire* model, so a restored forecaster continues the
    /// series as if the crash never happened.
    pub fn state(&self) -> ForecasterState {
        ForecasterState {
            alpha: self.alpha,
            beta: self.beta,
            level: self.level,
            trend: self.trend,
            seen: self.seen as u64,
        }
    }

    /// Rebuild a forecaster from a frozen state.
    ///
    /// # Errors
    /// Returns a message when the smoothing factors are out of range or the
    /// level/trend are non-finite — a checkpoint carrying such values is
    /// corrupt, and restoring it would poison every later forecast.
    pub fn from_state(s: ForecasterState) -> Result<Self, String> {
        if !(s.alpha > 0.0 && s.alpha <= 1.0) {
            return Err(format!("forecaster alpha {} out of (0, 1]", s.alpha));
        }
        if !(0.0..=1.0).contains(&s.beta) {
            return Err(format!("forecaster beta {} out of [0, 1]", s.beta));
        }
        if !s.level.is_finite() || !s.trend.is_finite() {
            return Err("forecaster level/trend not finite".to_string());
        }
        let seen =
            usize::try_from(s.seen).map_err(|_| "forecaster seen overflows usize".to_string())?;
        Ok(Self {
            alpha: s.alpha,
            beta: s.beta,
            level: s.level,
            trend: s.trend,
            seen,
        })
    }
}

/// Frozen [`Forecaster`] smoothing state (checkpoint payload).
///
/// `seen` is widened to `u64` so the on-disk encoding is identical on 32-
/// and 64-bit hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecasterState {
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ [0, 1]`.
    pub beta: f64,
    /// Smoothed level `ℓ`.
    pub level: f64,
    /// Smoothed trend `b`.
    pub trend: f64,
    /// Observations folded in so far.
    pub seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecaster_tracks_a_linear_ramp() {
        let mut f = Forecaster::new(0.8, 0.8);
        for i in 0..20 {
            f.observe(3.0 * i as f64);
        }
        // On a clean ramp the 2-step-ahead forecast leads the last sample.
        let last = 3.0 * 19.0;
        assert!(f.forecast(2.0) > last, "{} !> {last}", f.forecast(2.0));
        // And tracks the true continuation within a step's slope.
        assert!((f.forecast(1.0) - (last + 3.0)).abs() < 3.0);
    }

    #[test]
    fn forecaster_is_flat_on_constant_input() {
        let mut f = Forecaster::scaling_default();
        for _ in 0..10 {
            f.observe(7.0);
        }
        assert!((f.forecast(5.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn forecaster_never_goes_negative() {
        let mut f = Forecaster::scaling_default();
        for v in [10.0, 5.0, 1.0, 0.0, 0.0, 0.0] {
            f.observe(v);
        }
        assert!(f.forecast(10.0) >= 0.0);
    }

    #[test]
    fn forecaster_is_deterministic() {
        let run = || {
            let mut f = Forecaster::scaling_default();
            for i in 0..50 {
                f.observe(((i * 37) % 11) as f64);
            }
            f.forecast(3.0).to_bits()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forecaster_state_roundtrips_bit_exactly() {
        let mut f = Forecaster::scaling_default();
        for i in 0..23 {
            f.observe(((i * 13) % 7) as f64 + 0.25);
        }
        let mut g = Forecaster::from_state(f.state()).unwrap();
        assert_eq!(f.forecast(4.0).to_bits(), g.forecast(4.0).to_bits());
        // Continuation after restore is indistinguishable from the original.
        f.observe(9.5);
        g.observe(9.5);
        assert_eq!(f.forecast(1.0).to_bits(), g.forecast(1.0).to_bits());
        assert_eq!(f.observations(), g.observations());
    }

    #[test]
    fn forecaster_state_rejects_corrupt_values() {
        let good = Forecaster::scaling_default().state();
        assert!(Forecaster::from_state(ForecasterState { alpha: 0.0, ..good }).is_err());
        assert!(Forecaster::from_state(ForecasterState { alpha: 1.5, ..good }).is_err());
        assert!(Forecaster::from_state(ForecasterState { beta: -0.1, ..good }).is_err());
        assert!(Forecaster::from_state(ForecasterState {
            level: f64::NAN,
            ..good
        })
        .is_err());
        assert!(Forecaster::from_state(ForecasterState {
            trend: f64::INFINITY,
            ..good
        })
        .is_err());
        assert!(Forecaster::from_state(good).is_ok());
    }

    #[test]
    fn series_has_configured_length_and_positivity() {
        let w = TemporalWorkload::generate(&TemporalConfig::default(), 1);
        assert_eq!(w.volumes.len(), 120);
        assert!(w.volumes.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn peaks_rise_above_the_baseline() {
        let cfg = TemporalConfig {
            noise: 0.0,
            burst_prob: 0.0,
            ..TemporalConfig::default()
        };
        let w = TemporalWorkload::generate(&cfg, 2);
        // The second peak (height 3.2) is centered at 75% of the horizon.
        let at_peak = w.volumes[90];
        let at_trough = w.volumes[60];
        assert!(
            at_peak > 2.0 * at_trough,
            "peak {at_peak} vs trough {at_trough}"
        );
    }

    #[test]
    fn workload_is_bursty_like_the_paper() {
        let w = TemporalWorkload::generate(&TemporalConfig::default(), 3);
        let ratio = w.peak_to_mean();
        assert!(
            ratio > 1.5,
            "peak-to-mean {ratio} too flat for Figure 4's shape"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TemporalConfig::default();
        let a = TemporalWorkload::generate(&cfg, 4);
        let b = TemporalWorkload::generate(&cfg, 4);
        assert_eq!(a.volumes, b.volumes);
        let c = TemporalWorkload::generate(&cfg, 5);
        assert_ne!(a.volumes, c.volumes);
    }

    #[test]
    fn user_counts_respect_clamp() {
        let w = TemporalWorkload::generate(&TemporalConfig::default(), 6);
        let counts = w.as_user_counts(10, 60);
        assert!(counts.iter().all(|&c| (10..=60).contains(&c)));
        // The clamp must actually bind at the top for the default config
        // (peaks exceed 60 requests).
        assert!(counts.contains(&60));
    }
}

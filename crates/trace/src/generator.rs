//! Synthetic call-graph trace generation.
//!
//! The generator models what the paper extracted from the Alibaba traces:
//! the 10 most frequent *services*, each with a dependency chain of 12+
//! *microservices* drawn from a shared pool. Two sources of heterogeneity
//! are reproduced:
//!
//! * services prefer different (but overlapping) microservice subsets —
//!   so service-to-service similarity varies widely (Figure 3a),
//! * each invocation of a service perturbs its dependency structure
//!   (skipped optional calls, alternative branches) — so trace-to-trace
//!   similarity of even the *same* service stays well below 1 and the
//!   cross-service maximum lands around the paper's 0.65 (Figure 3b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct services (paper: top-10).
    pub services: usize,
    /// Size of the shared microservice pool.
    pub pool: usize,
    /// Dependency-chain length per service (paper: > 12).
    pub chain_len: usize,
    /// Per-call probability that a dependency edge is skipped.
    pub skip_prob: f64,
    /// Per-call probability that an edge is rewired to a random target.
    pub rewire_prob: f64,
    /// Calls sampled per trace file.
    pub calls_per_trace: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // skip/rewire/calls are calibrated so the maximum Jaccard similarity
        // between traces of one service lands at ≈ 0.64, matching the
        // paper's Alibaba measurement of ≈ 0.65 (Figure 3b).
        Self {
            services: 10,
            pool: 60,
            chain_len: 13,
            skip_prob: 0.06,
            rewire_prob: 0.02,
            calls_per_trace: 35,
        }
    }
}

/// One sampled trace file of one service: aggregate usage and structure.
#[derive(Debug, Clone)]
pub struct ServiceTrace {
    /// Owning service index.
    pub service: usize,
    /// Invocation count per pool microservice (usage vector).
    pub usage: Vec<f64>,
    /// Observed dependency edges `(from, to)` over pool indices, deduped.
    pub edges: Vec<(u32, u32)>,
}

/// Seeded trace generator.
///
/// ```
/// use socl_trace::{cosine_similarity, TraceConfig, TraceGenerator};
///
/// let generator = TraceGenerator::new(TraceConfig::default(), 42);
/// let traces = generator.sample_all(1);
/// assert_eq!(traces.len(), 10);
/// let sim = cosine_similarity(&traces[0].usage, &traces[1].usage);
/// assert!((0.0..=1.0).contains(&sim));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    /// Per service: its canonical microservice chain over the pool.
    canonical: Vec<Vec<u32>>,
}

impl TraceGenerator {
    /// Build canonical per-service chains with overlapping preferences.
    pub fn new(cfg: TraceConfig, seed: u64) -> Self {
        assert!(cfg.pool >= cfg.chain_len, "pool smaller than chain length");
        let mut rng = StdRng::seed_from_u64(seed);
        let canonical = (0..cfg.services)
            .map(|s| {
                // Service s prefers a window of the pool plus random picks —
                // windows overlap, giving graded similarity across services.
                let window = cfg.pool / 2;
                let base = (s * cfg.pool / cfg.services.max(1)) % cfg.pool;
                let mut chain = Vec::with_capacity(cfg.chain_len);
                while chain.len() < cfg.chain_len {
                    let pick = if rng.gen::<f64>() < 0.8 {
                        ((base + rng.gen_range(0..window)) % cfg.pool) as u32
                    } else {
                        rng.gen_range(0..cfg.pool as u32)
                    };
                    if !chain.contains(&pick) {
                        chain.push(pick);
                    }
                }
                chain
            })
            .collect();
        Self { cfg, canonical }
    }

    /// The canonical chain of `service`.
    pub fn canonical_chain(&self, service: usize) -> &[u32] {
        &self.canonical[service]
    }

    /// Sample one trace file for `service`.
    pub fn sample_trace(&self, service: usize, seed: u64) -> ServiceTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ (service as u64) << 32);
        let mut usage = vec![0.0; self.cfg.pool];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let chain = &self.canonical[service];
        for _ in 0..self.cfg.calls_per_trace {
            // Perturb the canonical chain for this invocation.
            let mut call: Vec<u32> = Vec::with_capacity(chain.len());
            for &m in chain {
                if rng.gen::<f64>() < self.cfg.skip_prob {
                    continue;
                }
                let m = if rng.gen::<f64>() < self.cfg.rewire_prob {
                    rng.gen_range(0..self.cfg.pool as u32)
                } else {
                    m
                };
                call.push(m);
            }
            for &m in &call {
                usage[m as usize] += 1.0;
            }
            for w in call.windows(2) {
                if w[0] != w[1] && !edges.contains(&(w[0], w[1])) {
                    edges.push((w[0], w[1]));
                }
            }
        }
        ServiceTrace {
            service,
            usage,
            edges,
        }
    }

    /// Sample one trace file per service (Figure 3a's inputs).
    pub fn sample_all(&self, seed: u64) -> Vec<ServiceTrace> {
        (0..self.cfg.services)
            .map(|s| self.sample_trace(s, seed.wrapping_add(s as u64)))
            .collect()
    }

    /// Sample `n` successive trace files of one service (Figure 3b's
    /// inputs: similarity between different traces of a deep service).
    pub fn sample_series(&self, service: usize, n: usize, seed: u64) -> Vec<ServiceTrace> {
        (0..n)
            .map(|i| self.sample_trace(service, seed.wrapping_mul(31).wrapping_add(i as u64)))
            .collect()
    }

    /// Configured chain length (≥ 12 per the paper's deep-service filter).
    pub fn chain_len(&self) -> usize {
        self.cfg.chain_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_chains_have_required_depth() {
        let g = TraceGenerator::new(TraceConfig::default(), 1);
        for s in 0..10 {
            let c = g.canonical_chain(s);
            assert!(c.len() >= 12, "service {s} chain too short");
            // No duplicates.
            let mut d = c.to_vec();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), c.len());
        }
    }

    #[test]
    fn traces_use_pool_microservices_only() {
        let g = TraceGenerator::new(TraceConfig::default(), 2);
        let t = g.sample_trace(0, 7);
        assert_eq!(t.usage.len(), 60);
        for &(a, b) in &t.edges {
            assert!(a < 60 && b < 60);
        }
        assert!(t.usage.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let g = TraceGenerator::new(TraceConfig::default(), 3);
        let a = g.sample_trace(0, 1);
        let b = g.sample_trace(0, 2);
        assert_ne!(a.usage, b.usage);
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = TraceGenerator::new(TraceConfig::default(), 4);
        let g2 = TraceGenerator::new(TraceConfig::default(), 4);
        assert_eq!(g1.canonical, g2.canonical);
        assert_eq!(g1.sample_trace(3, 9).usage, g2.sample_trace(3, 9).usage);
    }

    #[test]
    fn series_has_requested_length() {
        let g = TraceGenerator::new(TraceConfig::default(), 5);
        let series = g.sample_series(2, 8, 11);
        assert_eq!(series.len(), 8);
        assert!(series.iter().all(|t| t.service == 2));
    }

    #[test]
    #[should_panic(expected = "pool smaller")]
    fn pool_must_fit_chain() {
        TraceGenerator::new(
            TraceConfig {
                pool: 5,
                chain_len: 10,
                ..TraceConfig::default()
            },
            0,
        );
    }
}

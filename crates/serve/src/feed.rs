//! Streaming request feed: millions of synthetic users, synthesized lazily.
//!
//! The feed never materializes per-user state. Each user is a pure function
//! of `(feed seed, user id)`: their home base station, their service chain,
//! and their data volumes are derived from a per-user ChaCha12 stream the
//! moment they arrive, and are identical every time they are re-derived —
//! which is what makes queue checkpoints tiny (user id + arrival tick) and
//! crash replay exact. Arrivals are a Bernoulli thinning of the global
//! [`TemporalWorkload`] intensity, keyed by `(seed, tick, user)` through a
//! 64-bit FNV-1a hash, so the *arrival set is independent of the region
//! partitioning*: regions group arrivals, they never change them.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use socl_model::{DependencyDataset, EshopDataset, RequestConfig, UserId, UserRequest};
use socl_net::NodeId;
use socl_trace::{TemporalConfig, TemporalWorkload};

/// FNV-1a 64-bit over a few words — the arrival coin and home-station
/// picker. Not cryptographic; just a fast, seedable, platform-independent
/// mix.
#[inline]
fn fnv1a(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Feed parameters: the user population, the temporal intensity shape, and
/// the per-request synthesis ranges.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Synthetic user population size. Users are virtual — memory cost is
    /// O(arrivals), not O(users) — so millions are fine.
    pub users: usize,
    /// Temporal intensity shape (diurnal / flash-crowd, from `socl-trace`).
    pub shape: TemporalConfig,
    /// Expected arrivals per tick at intensity 1.0: the shape's volume
    /// curve is normalized by its mean and scaled by this, then divided by
    /// the population to get each user's per-tick arrival probability.
    pub arrivals_per_tick: f64,
    /// Per-request synthesis ranges (chain length, data volumes, `d_max`).
    pub request: RequestConfig,
    /// Feed seed; independent of the service seed so load and topology can
    /// be varied separately.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        Self {
            users: 100_000,
            shape: TemporalConfig::default(),
            arrivals_per_tick: 200.0,
            request: RequestConfig::default(),
            seed: 7,
        }
    }
}

/// The streaming load source.
#[derive(Debug, Clone)]
pub struct LoadFeed {
    cfg: FeedConfig,
    /// Per-tick arrival probability for one user, `volumes` normalized.
    probs: Vec<f64>,
    dataset: DependencyDataset,
    nodes: usize,
}

impl LoadFeed {
    /// Build the feed over `nodes` base stations using the embedded
    /// eshopOnContainers dependency dataset.
    #[must_use]
    pub fn new(cfg: FeedConfig, nodes: usize) -> Self {
        let wl = TemporalWorkload::generate(&cfg.shape, cfg.seed);
        let mean = wl.mean().max(1e-12);
        let users = cfg.users.max(1) as f64;
        let probs = wl
            .volumes
            .iter()
            .map(|&v| (v / mean * cfg.arrivals_per_tick / users).clamp(0.0, 1.0))
            .collect();
        Self {
            cfg,
            probs,
            dataset: EshopDataset::build(),
            nodes: nodes.max(1),
        }
    }

    /// Feed configuration.
    #[must_use]
    pub fn config(&self) -> &FeedConfig {
        &self.cfg
    }

    /// Number of ticks the intensity shape covers; arrivals wrap around
    /// past the horizon, so the service can run indefinitely.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.probs.len().max(1)
    }

    /// Per-user arrival probability at `tick`.
    #[must_use]
    pub fn arrival_probability(&self, tick: u32) -> f64 {
        let i = tick as usize % self.horizon();
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// Does `user` issue a request at `tick`? A pure function — region
    /// partitioning and shard count cannot change it.
    #[must_use]
    pub fn arrives(&self, tick: u32, user: u32) -> bool {
        let p = self.arrival_probability(tick);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = fnv1a(&[self.cfg.seed, 0xA221, u64::from(tick), u64::from(user)]);
        (h as f64) < p * (u64::MAX as f64)
    }

    /// The base station `user` is homed at — fixed for the user's lifetime
    /// (mobility stays within the simulator layer; the service boundary
    /// pins users to their home region so shard ownership never migrates).
    #[must_use]
    pub fn home_station(&self, user: u32) -> NodeId {
        let h = fnv1a(&[self.cfg.seed, 0xB0B0, u64::from(user)]);
        NodeId((h % self.nodes as u64) as u32)
    }

    /// Synthesize `user`'s request as issued at `tick`. Identical output
    /// every time it is called with the same arguments: the per-user
    /// ChaCha12 stream is re-seeded from `(seed, user)`, so a request
    /// dropped from a killed shard's queue is re-derived bit-for-bit
    /// during replay.
    #[must_use]
    pub fn synthesize(&self, user: u32) -> UserRequest {
        let mut rng = ChaCha12Rng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(fnv1a(&[0xC0DE, u64::from(user)])),
        );
        let rc = &self.cfg.request;
        let chain = self
            .dataset
            .sample_chain(&mut rng, rc.chain_len.0, rc.chain_len.1);
        let edge_data = (0..chain.len().saturating_sub(1))
            .map(|_| rng.gen_range(rc.edge_data.0..=rc.edge_data.1))
            .collect();
        UserRequest::new(
            UserId(user),
            self.home_station(user),
            chain,
            edge_data,
            rng.gen_range(rc.r_in.0..=rc.r_in.1),
            rng.gen_range(rc.r_out.0..=rc.r_out.1),
            rc.d_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed() -> LoadFeed {
        LoadFeed::new(
            FeedConfig {
                users: 1000,
                arrivals_per_tick: 50.0,
                ..FeedConfig::default()
            },
            12,
        )
    }

    #[test]
    fn synthesis_is_stable_per_user() {
        let f = feed();
        for user in [0u32, 7, 999] {
            let a = f.synthesize(user);
            let b = f.synthesize(user);
            assert_eq!(a, b);
            assert_eq!(a.location, f.home_station(user));
            assert!(!a.chain.is_empty());
        }
    }

    #[test]
    fn arrival_rate_tracks_target() {
        let f = feed();
        let mut total = 0usize;
        let ticks = f.horizon() as u32;
        for t in 0..ticks {
            total += (0..1000).filter(|&u| f.arrives(t, u)).count();
        }
        let mean = total as f64 / f64::from(ticks);
        // Bernoulli thinning of a mean-50 intensity: loose 3-sigma-ish band.
        assert!(
            mean > 25.0 && mean < 90.0,
            "mean arrivals/tick {mean} out of band"
        );
    }

    #[test]
    fn arrivals_are_partition_independent_pure_functions() {
        let f = feed();
        let g = feed();
        for t in 0..10u32 {
            for u in 0..200u32 {
                assert_eq!(f.arrives(t, u), g.arrives(t, u));
            }
        }
    }
}

//! The long-running control-plane service: a persistent event loop over
//! region-sharded worlds.
//!
//! Every tick the service consumes the streaming request feed, pushes
//! arrivals through per-region bounded queues (explicit backpressure),
//! drains a budget of requests through the PR 4 admission controller,
//! routes admitted chains with the exact DP against the current global
//! placement, charges in-flight concurrency to the regions hosting each
//! chain stage (cross-region stages are the stitching traffic), ticks
//! every region's autoscaler, and cuts a WAL record per region. Placement
//! is re-solved on an epoch cadence from a deterministic tracer sample of
//! the feed.
//!
//! Concurrency runs exclusively on the deterministic pool
//! (`socl_net::par`): shards own disjoint region subsets (`region %
//! shards`) and the routing fan-out is order-preserving, so the decision
//! stream is **bit-identical for any shard count and any thread count**.
//! No async runtime, no wall clock, no hash-order iteration anywhere in
//! the decision path.
//!
//! Tick phase order (the digest depends on it, so replay mirrors it):
//!
//! 1. epoch boundary: re-solve placement from the tick's tracer sample;
//! 2. arrival scan (parallel over user chunks, concatenated in order);
//! 3. per-shard: expire in-flight, ingest arrivals (queue-full sheds),
//!    drain + admission (cloud fallbacks and admission sheds decided
//!    here) — yields the admitted routing jobs;
//! 4. routing fan-out (parallel, order-preserving, scratch-pooled);
//! 5. head: fold edge decisions, charge in-flight per stage to the
//!    hosting region, record cross-region sends in the outbox;
//! 6. per-shard: autoscaler tick; head: WAL record per region;
//! 7. checkpoint every `checkpoint_every` ticks (parallel serialize).

use crate::feed::{FeedConfig, LoadFeed};
use crate::region::RegionMap;
use crate::shard::{Pending, RegionState, IN_FLIGHT_TICKS};
use crate::wal::{RegionCheckpoint, RegionWal, TickRecord};
use socl_autoscale::{AdmissionPolicy, AutoscaleConfig};
use socl_core::SoclConfig;
use socl_model::{
    optimal_route_with, Placement, RouteOutcome, RouteScratch, ScenarioConfig, ServiceCatalog,
};
use socl_net::par::{lock_recover, par_map_indexed_with, par_map_scratch_with};
use socl_net::{effective_threads, AllPairs, EdgeNetwork};
use socl_sim::Policy;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Digest tag: an edge-served routing decision.
const TAG_EDGE: u64 = 1;
/// Digest tag: a cloud fallback (uncovered chain service).
const TAG_CLOUD: u64 = 2;
/// Digest tag: shed by the admission policy.
const TAG_SHED_ADMISSION: u64 = 3;
/// Digest tag: shed by a full ingest queue.
const TAG_SHED_QUEUE: u64 = 4;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base stations in the metro topology.
    pub nodes: usize,
    /// Regions the graph is partitioned into (the state-sharding unit).
    pub regions: usize,
    /// Execution shards; region `r` runs on shard `r % shards`. Changing
    /// this never changes results.
    pub shards: usize,
    /// Topology/catalog/placement seed.
    pub seed: u64,
    /// Ingest-queue capacity per base station (region capacity scales
    /// with its station count).
    pub queue_cap_per_station: usize,
    /// Decision budget per base station per tick (region drain budget).
    pub drain_per_station: usize,
    /// Ticks between placement re-solves.
    pub resolve_every: u32,
    /// Ticks between region checkpoints.
    pub checkpoint_every: u32,
    /// Tracer-sample size fed to the placement policy at each re-solve.
    pub placement_sample: usize,
    /// Placement policy (SoCL / RP / JDR).
    pub policy: Policy,
    /// Per-region autoscaler + admission configuration.
    pub autoscale: AutoscaleConfig,
    /// Cold-start penalty handed to the autoscalers (seconds).
    pub cold_start_s: f64,
    /// Wall seconds one tick represents (drives scaler windows).
    pub tick_secs: f64,
    /// The streaming load source.
    pub feed: FeedConfig,
}

impl ServeConfig {
    /// A small but fully exercised configuration: 4 regions over 16
    /// stations, admission enabled, checkpoints every 4 ticks.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            nodes: 16,
            regions: 4,
            shards: 4,
            seed,
            queue_cap_per_station: 24,
            drain_per_station: 12,
            resolve_every: 8,
            checkpoint_every: 4,
            placement_sample: 48,
            policy: Policy::Socl(SoclConfig::default()),
            autoscale: AutoscaleConfig {
                admission: AdmissionPolicy {
                    enabled: true,
                    ..AutoscaleConfig::default().admission
                },
                ..AutoscaleConfig::default()
            },
            cold_start_s: 0.5,
            tick_secs: 1.0,
            feed: FeedConfig {
                users: 20_000,
                arrivals_per_tick: 120.0,
                seed: seed ^ 0x5EED,
                ..FeedConfig::default()
            },
        }
    }
}

/// One decision as observed by the capture hook (test/diagnostic use):
/// which user was decided, how, and along which route. Comparable across
/// region partitionings, unlike the per-region digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Tick the decision was made.
    pub tick: u32,
    /// The decided user.
    pub user: u32,
    /// Outcome tag (edge / cloud / shed — the digest tags).
    pub tag: u64,
    /// One host per chain layer; empty for non-edge outcomes.
    pub route: Vec<socl_net::NodeId>,
}

/// What one tick did, summed over regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickSummary {
    /// The tick (1-based).
    pub tick: u32,
    /// Arrivals across all regions.
    pub arrivals: u32,
    /// Decisions issued (edge routes + cloud fallbacks).
    pub decided: u32,
    /// Queue-full sheds.
    pub shed_queue: u32,
    /// Admission sheds.
    pub shed_admission: u32,
    /// Total queue depth after the tick.
    pub queued: usize,
    /// Global digest: per-region digests folded in region order.
    pub digest: u64,
}

/// Lifetime totals across regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeTotals {
    /// Arrivals homed anywhere.
    pub arrivals: u64,
    /// Decisions issued.
    pub decided: u64,
    /// Queue-full sheds.
    pub shed_queue: u64,
    /// Admission sheds.
    pub shed_admission: u64,
    /// Cloud fallbacks among the decisions.
    pub cloud_fallbacks: u64,
    /// Requests still queued.
    pub queued: u64,
    /// Deepest any region queue has been.
    pub queue_peak: u64,
}

/// What a kill-and-restore did (per-shard crash recovery).
#[derive(Debug, Clone)]
pub struct RestoreReport {
    /// Regions the killed shard owned.
    pub killed_regions: Vec<u32>,
    /// Checkpoint tick every killed region restored from.
    pub checkpoint_tick: u32,
    /// Ticks replayed per region to catch back up.
    pub replayed_ticks: u32,
    /// WAL bytes discarded as torn, summed over killed regions.
    pub torn_bytes: usize,
    /// Replayed ticks whose recomputation disagreed with the WAL oracle
    /// (digest or counters) — must be zero.
    pub oracle_mismatches: usize,
}

/// One region's bounded cross-region send history:
/// `(tick, [(target region, service)])` per retained tick.
type OutboxHistory = VecDeque<(u32, Vec<(u32, u32)>)>;

/// The sharded control-plane service.
#[derive(Debug)]
pub struct SoclServe {
    cfg: ServeConfig,
    scenario_cfg: ScenarioConfig,
    net: EdgeNetwork,
    ap: AllPairs,
    catalog: ServiceCatalog,
    region_map: RegionMap,
    feed: LoadFeed,
    regions: Vec<RegionState>,
    /// Placement per resolve epoch, in epoch order (head state; survives
    /// shard kills, so replay looks placements up instead of re-solving).
    placements: Vec<Placement>,
    wals: Vec<RegionWal>,
    /// Checkpoint history per region: `(tick, bytes)` in tick order.
    checkpoints: Vec<Vec<(u32, Vec<u8>)>>,
    /// Per-origin sent history: `(tick, [(target region, service)])` for
    /// cross-region in-flight charges, bounded to the recovery window.
    /// Head state — it survives shard kills, which is what lets a torn
    /// WAL tail be reconstructed from the peers that sent the traffic.
    outbox: Vec<OutboxHistory>,
    /// Per-region digest after every executed tick (the stitched-timeline
    /// equality witness).
    digest_timeline: Vec<Vec<u64>>,
    /// Last completed tick (0 = none yet).
    tick: u32,
    /// Decision capture sink (None = disabled, the default).
    capture: Option<Vec<DecisionEvent>>,
}

/// Ticks of outbox history retained: enough to bridge a checkpoint gap
/// plus the in-flight residency plus torn-tail slack.
fn outbox_window(checkpoint_every: u32) -> usize {
    checkpoint_every as usize + IN_FLIGHT_TICKS + 4
}

/// Run `f` over every region, grouped by shard, on the deterministic
/// pool. Regions mutate in place; outputs come back in region order.
/// Determinism: each region is touched by exactly one shard, shard
/// outputs are merged by region index, and `f` itself is pure in the
/// pool sense (no cross-region reads).
fn sharded<T: Send>(
    regions: &mut [RegionState],
    shards: usize,
    f: &(impl Fn(&mut RegionState) -> T + Sync),
) -> Vec<T> {
    let n = regions.len();
    let shards = shards.clamp(1, n.max(1));
    let threads = effective_threads().min(shards);
    if shards == 1 || threads <= 1 {
        return regions.iter_mut().map(f).collect();
    }
    let mut by_shard: Vec<Vec<(usize, &mut RegionState)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for (i, st) in regions.iter_mut().enumerate() {
        by_shard[i % shards].push((i, st));
    }
    let buckets: Vec<Mutex<Vec<(usize, &mut RegionState)>>> =
        by_shard.into_iter().map(Mutex::new).collect();
    let shard_outs: Vec<Vec<(usize, T)>> = par_map_indexed_with(shards, threads, |s| {
        // A poisoned lock would mean `f` panicked on another worker; the
        // scope join re-raises that, so recovering here is sound.
        let mut guard = lock_recover(&buckets[s]);
        guard.iter_mut().map(|(i, st)| (*i, f(st))).collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for outs in shard_outs {
        for (i, v) in outs {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().flatten().collect()
}

impl SoclServe {
    /// Build the service: topology + catalog from the scenario generator,
    /// region partition, per-region worlds, and a mandatory tick-0
    /// checkpoint of every region (so a kill at any point has an image to
    /// restore from).
    #[must_use]
    pub fn new(cfg: ServeConfig) -> Self {
        let scenario_cfg = ScenarioConfig::paper(cfg.nodes, cfg.placement_sample.max(1));
        let base = scenario_cfg.build(cfg.seed);
        let region_map = RegionMap::partition(&base.net, cfg.regions);
        let feed = LoadFeed::new(cfg.feed.clone(), cfg.nodes);
        let services = base.catalog.len();
        let nodes = base.net.node_count();
        let regions: Vec<RegionState> = (0..region_map.regions() as u32)
            .map(|r| {
                let cap = cfg.queue_cap_per_station * region_map.count(r).max(1);
                RegionState::new(r, services, nodes, cap, &cfg.autoscale, cfg.cold_start_s)
            })
            .collect();
        let n = regions.len();
        let mut serve = Self {
            cfg,
            scenario_cfg,
            net: base.net,
            ap: base.ap,
            catalog: base.catalog,
            region_map,
            feed,
            regions,
            placements: Vec::new(),
            wals: (0..n).map(|_| RegionWal::new()).collect(),
            checkpoints: (0..n).map(|_| Vec::new()).collect(),
            outbox: (0..n).map(|_| VecDeque::new()).collect(),
            digest_timeline: (0..n).map(|_| Vec::new()).collect(),
            tick: 0,
            capture: None,
        };
        serve.take_checkpoints(0);
        serve
    }

    /// Service configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The region partition.
    #[must_use]
    pub fn region_map(&self) -> &RegionMap {
        &self.region_map
    }

    /// The load feed.
    #[must_use]
    pub fn feed(&self) -> &LoadFeed {
        &self.feed
    }

    /// Per-region states (read-only view for audits and benches).
    #[must_use]
    pub fn regions(&self) -> &[RegionState] {
        &self.regions
    }

    /// Last completed tick.
    #[must_use]
    pub fn completed_ticks(&self) -> u32 {
        self.tick
    }

    /// Per-region digest after every executed tick.
    #[must_use]
    pub fn digest_timeline(&self) -> &[Vec<u64>] {
        &self.digest_timeline
    }

    /// Current placement, if an epoch has been resolved.
    #[must_use]
    pub fn placement(&self) -> Option<&Placement> {
        self.placements.last()
    }

    /// Record every decision into a capture buffer (off by default; the
    /// cross-partition proptests compare per-user decisions through it).
    pub fn enable_capture(&mut self) {
        if self.capture.is_none() {
            self.capture = Some(Vec::new());
        }
    }

    /// Drain the captured decisions (empty when capture is disabled).
    pub fn take_captured(&mut self) -> Vec<DecisionEvent> {
        self.capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Global digest: per-region digests folded in region order.
    #[must_use]
    pub fn global_digest(&self) -> u64 {
        let mut h = 0u64;
        for st in &self.regions {
            h = crate::shard::mix(h, &[st.digest]);
        }
        h
    }

    /// Lifetime totals over all regions.
    #[must_use]
    pub fn totals(&self) -> ServeTotals {
        let mut t = ServeTotals::default();
        for st in &self.regions {
            t.arrivals += st.arrivals;
            t.decided += st.decided;
            t.shed_queue += st.shed_queue;
            t.shed_admission += st.shed_admission;
            t.cloud_fallbacks += st.cloud_fallbacks;
            t.queued += st.queue.len() as u64;
            t.queue_peak = t.queue_peak.max(st.queue.high_watermark() as u64);
        }
        t
    }

    /// Largest serialized checkpoint taken so far, in bytes.
    #[must_use]
    pub fn max_checkpoint_bytes(&self) -> usize {
        self.checkpoints
            .iter()
            .flat_map(|h| h.iter().map(|(_, b)| b.len()))
            .max()
            .unwrap_or(0)
    }

    /// Total WAL bytes across regions.
    #[must_use]
    pub fn wal_bytes(&self) -> usize {
        self.wals.iter().map(RegionWal::len_bytes).sum()
    }

    /// A request synthesized by the feed, for external probes (the bench
    /// times individual routing decisions against the live placement).
    #[must_use]
    pub fn probe_request(&self, user: u32) -> socl_model::UserRequest {
        self.feed.synthesize(user)
    }

    /// Route one request against the current placement (no state change)
    /// — the bench's per-decision latency probe.
    #[must_use]
    pub fn probe_route(
        &self,
        scratch: &mut RouteScratch,
        req: &socl_model::UserRequest,
    ) -> RouteOutcome {
        match self.placements.last() {
            Some(p) => optimal_route_with(scratch, req, p, &self.net, &self.ap, &self.catalog),
            None => RouteOutcome::CloudFallback,
        }
    }

    /// Execute `n` ticks, returning the summary of each.
    pub fn run(&mut self, n: u32) -> Vec<TickSummary> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Execute one tick of the event loop.
    pub fn step(&mut self) -> TickSummary {
        let t = self.tick + 1;
        // Phase 1: placement epoch.
        if (t - 1) % self.cfg.resolve_every.max(1) == 0 {
            self.resolve_placement(t);
        }
        let epoch = self.epoch_of(t);
        // Phase 2: arrival scan, grouped by home region.
        let per_region = self.scan_arrivals(t);
        // Phase 3: per-shard ingest + drain + admission.
        let placement = &self.placements[epoch];
        let feed = &self.feed;
        let map = &self.region_map;
        let drain_per_station = self.cfg.drain_per_station;
        let capturing = self.capture.is_some();
        let phase_a: Vec<(Vec<Pending>, Vec<DecisionEvent>)> = sharded(
            &mut self.regions,
            self.cfg.shards,
            &|st: &mut RegionState| {
                let budget = drain_per_station * map.count(st.id).max(1);
                region_phase_a(
                    st,
                    t,
                    per_region
                        .get(st.id as usize)
                        .map_or(&[][..], Vec::as_slice),
                    feed,
                    placement,
                    budget,
                    capturing,
                )
            },
        );
        // Phase 4: routing fan-out, order-preserving.
        let mut events: Vec<DecisionEvent> = Vec::new();
        let flat: Vec<(u32, Pending)> = phase_a
            .into_iter()
            .enumerate()
            .flat_map(|(r, (jobs, evts))| {
                events.extend(evts);
                jobs.into_iter().map(move |p| (r as u32, p))
            })
            .collect();
        let net = &self.net;
        let ap = &self.ap;
        let catalog = &self.catalog;
        let outcomes: Vec<RouteOutcome> = par_map_scratch_with(
            &flat,
            effective_threads(),
            RouteScratch::new,
            |scratch, (_, p)| optimal_route_with(scratch, &p.request, placement, net, ap, catalog),
        );
        // Phase 5: fold decisions, charge in-flight, record cross sends.
        let mut sent: Vec<Vec<(u32, u32)>> = (0..self.regions.len()).map(|_| Vec::new()).collect();
        for ((origin, p), outcome) in flat.iter().zip(&outcomes) {
            let o = *origin as usize;
            match outcome {
                RouteOutcome::Edge { route, .. } => {
                    self.regions[o].decided += 1;
                    self.regions[o].tick_decided += 1;
                    self.regions[o].fold_decision(t, p.user, TAG_EDGE, route);
                    for (j, &host) in route.iter().enumerate() {
                        let m = p.request.chain[j];
                        let target = self.region_map.region_of(host);
                        let remote = target != *origin;
                        self.regions[target as usize].charge(m, t, remote);
                        if remote {
                            sent[o].push((target, m.0));
                        }
                    }
                    if capturing {
                        events.push(DecisionEvent {
                            tick: t,
                            user: p.user,
                            tag: TAG_EDGE,
                            route: route.clone(),
                        });
                    }
                }
                // Unreachable under a fixed placement (coverage was
                // checked at drain), but a decision is a decision.
                RouteOutcome::CloudFallback => {
                    self.regions[o].decided += 1;
                    self.regions[o].tick_decided += 1;
                    self.regions[o].cloud_fallbacks += 1;
                    self.regions[o].fold_decision(t, p.user, TAG_CLOUD, &[]);
                    if capturing {
                        events.push(DecisionEvent {
                            tick: t,
                            user: p.user,
                            tag: TAG_CLOUD,
                            route: Vec::new(),
                        });
                    }
                }
            }
        }
        if let Some(sink) = self.capture.as_mut() {
            sink.extend(events);
        }
        let window = outbox_window(self.cfg.checkpoint_every);
        for (o, sent_o) in sent.into_iter().enumerate() {
            self.outbox[o].push_back((t, sent_o));
            while self.outbox[o].len() > window {
                self.outbox[o].pop_front();
            }
        }
        // Phase 6: autoscaler tick per region, then the WAL record.
        let tick_secs = self.cfg.tick_secs;
        let placement = &self.placements[epoch];
        let catalog = &self.catalog;
        let net = &self.net;
        let records: Vec<TickRecord> = sharded(
            &mut self.regions,
            self.cfg.shards,
            &|st: &mut RegionState| region_phase_scale(st, t, tick_secs, placement, catalog, net),
        );
        let mut summary = TickSummary {
            tick: t,
            arrivals: 0,
            decided: 0,
            shed_queue: 0,
            shed_admission: 0,
            queued: 0,
            digest: 0,
        };
        for (r, rec) in records.iter().enumerate() {
            summary.arrivals += rec.arrivals;
            summary.decided += rec.decided;
            summary.shed_queue += rec.shed_queue;
            summary.shed_admission += rec.shed_admission;
            self.wals[r].append(rec);
            self.digest_timeline[r].push(rec.digest);
            self.regions[r].clear_tick_locals();
        }
        for st in &self.regions {
            summary.queued += st.queue.len();
        }
        self.tick = t;
        summary.digest = self.global_digest();
        // Phase 7: checkpoint cadence.
        if t % self.cfg.checkpoint_every.max(1) == 0 {
            self.take_checkpoints(t);
        }
        summary
    }

    /// Epoch index of tick `t` (1-based ticks).
    fn epoch_of(&self, t: u32) -> usize {
        ((t - 1) / self.cfg.resolve_every.max(1)) as usize
    }

    /// Re-solve the global placement from a tracer sample of tick `t`'s
    /// arrivals (padded with the lowest user ids when arrivals are
    /// scarce). Pure in `(feed, t)` — replay looks the result up from
    /// history instead of re-solving.
    fn resolve_placement(&mut self, t: u32) {
        let k = self.cfg.placement_sample.max(1);
        let users = self.feed.config().users as u32;
        let mut sample = Vec::with_capacity(k);
        for u in 0..users {
            if sample.len() == k {
                break;
            }
            if self.feed.arrives(t, u) {
                sample.push(self.feed.synthesize(u));
            }
        }
        let mut pad = 0u32;
        while sample.len() < k && pad < users {
            sample.push(self.feed.synthesize(pad));
            pad += 1;
        }
        let sc = self
            .scenario_cfg
            .assemble(self.net.clone(), self.catalog.clone(), sample);
        let placement = self.cfg.policy.place(&sc, u64::from(t));
        let first = self.placements.is_empty();
        self.placements.push(placement);
        if first {
            // Initial replica pools: seed every region's scaler from the
            // first placement (mirrored by replay at t == 1).
            let placement = &self.placements[0];
            let catalog = &self.catalog;
            let net = &self.net;
            let _: Vec<()> = sharded(
                &mut self.regions,
                self.cfg.shards,
                &|st: &mut RegionState| {
                    st.scaler.seed_from_placement(placement, catalog, net);
                },
            );
        }
    }

    /// Parallel Bernoulli scan of the user population at tick `t`,
    /// grouped by home region. Chunked over the pool; chunk outputs
    /// concatenate in user-id order, so the grouping is identical for
    /// any thread count.
    fn scan_arrivals(&self, t: u32) -> Vec<Vec<u32>> {
        let users = self.feed.config().users;
        let chunk = 16_384usize;
        let chunks = users.div_ceil(chunk).max(1);
        let feed = &self.feed;
        let map = &self.region_map;
        let parts: Vec<Vec<(u32, u32)>> = par_map_indexed_with(chunks, effective_threads(), |c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(users);
            let mut out = Vec::new();
            for u in lo..hi {
                let u = u as u32;
                if feed.arrives(t, u) {
                    out.push((map.region_of(feed.home_station(u)), u));
                }
            }
            out
        });
        let mut per_region: Vec<Vec<u32>> = (0..self.regions.len()).map(|_| Vec::new()).collect();
        for part in parts {
            for (r, u) in part {
                per_region[r as usize].push(u);
            }
        }
        per_region
    }

    /// Serialize every region at tick `t` and append to the checkpoint
    /// history (parallel over regions).
    fn take_checkpoints(&mut self, t: u32) {
        let images: Vec<Vec<u8>> = sharded(
            &mut self.regions,
            self.cfg.shards,
            &|st: &mut RegionState| snapshot_region(st, t).to_bytes(),
        );
        for (r, bytes) in images.into_iter().enumerate() {
            self.checkpoints[r].push((t, bytes));
        }
    }

    /// Serialize the current state of every region (stitched-equality
    /// witness for the recovery driver).
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<Vec<u8>> {
        self.regions
            .iter()
            .map(|st| snapshot_region(st, self.tick).to_bytes())
            .collect()
    }

    /// Kill shard `shard` at the current tick boundary and bring its
    /// regions back: mangle each region's durable WAL per `torn`,
    /// truncate the torn tail, restore from the newest checkpoint the
    /// clean WAL still covers, and replay forward to the present — using
    /// the WAL's remote-traffic records where the log is clean and the
    /// surviving peers' outboxes where it is torn. Recomputed ticks are
    /// checked against the WAL oracle; the caller asserts
    /// `oracle_mismatches == 0` and bit-equality against a golden run.
    ///
    /// # Errors
    /// A corrupt checkpoint image or an inconsistent scaler restore.
    pub fn kill_and_restore(
        &mut self,
        shard: usize,
        torn: socl_sim::TornTail,
    ) -> Result<RestoreReport, String> {
        let t_kill = self.tick;
        let shards = self.cfg.shards.clamp(1, self.regions.len().max(1));
        let killed: Vec<usize> = (0..self.regions.len())
            .filter(|r| r % shards == shard % shards)
            .collect();
        if killed.is_empty() {
            return Err("shard owns no regions".into());
        }
        // 1. Recover each region's durable log: mangle, then truncate.
        let mut torn_bytes = 0usize;
        let mut clean_tick: Vec<u32> = Vec::with_capacity(killed.len());
        let mut records: Vec<Vec<TickRecord>> = Vec::with_capacity(killed.len());
        for &r in &killed {
            let mut bytes = self.wals[r].as_bytes().to_vec();
            mangle_tail(&mut bytes, torn, self.cfg.seed ^ r as u64);
            let (wal, report) = RegionWal::from_bytes(&bytes);
            torn_bytes += report.truncated_bytes;
            let recs = wal.records().map_err(|e| format!("wal decode: {e:?}"))?;
            clean_tick.push(recs.last().map_or(0, |rec| rec.tick));
            records.push(recs);
            self.wals[r] = wal;
        }
        // 2. Uniform restore point: the newest checkpoint at or before
        // every killed region's clean WAL horizon.
        let horizon = clean_tick.iter().copied().min().unwrap_or(0);
        let c0 = horizon - horizon % self.cfg.checkpoint_every.max(1);
        for (&r, _) in killed.iter().zip(&clean_tick) {
            let image = self.checkpoints[r]
                .iter()
                .rev()
                .find(|(tick, _)| *tick <= c0)
                .ok_or_else(|| format!("region {r}: no checkpoint at or before {c0}"))?;
            let ck = RegionCheckpoint::from_bytes(&image.1)
                .map_err(|e| format!("region {r}: checkpoint decode: {e:?}"))?;
            if ck.tick != c0 {
                return Err(format!(
                    "region {r}: checkpoint tick {} != restore point {c0}",
                    ck.tick
                ));
            }
            self.regions[r] = restore_region(&ck, &self.cfg, &self.region_map, &self.feed)?;
            self.digest_timeline[r].truncate(c0 as usize);
        }
        // 3. Replay (c0, t_kill] per killed region. All inputs are
        // external state that survived the kill: the feed (pure), the
        // placement history, the clean WAL records, and peer outboxes.
        let mut mismatches = 0usize;
        for t in c0 + 1..=t_kill {
            let epoch = self.epoch_of(t);
            let placement = &self.placements[epoch];
            for (ki, &r) in killed.iter().enumerate() {
                if t == 1 {
                    self.regions[r]
                        .scaler
                        .seed_from_placement(placement, &self.catalog, &self.net);
                }
                let arrivals = self.region_arrivals(t, r as u32);
                let budget = self.cfg.drain_per_station * self.region_map.count(r as u32).max(1);
                let (jobs, _) = region_phase_a(
                    &mut self.regions[r],
                    t,
                    &arrivals,
                    &self.feed,
                    placement,
                    budget,
                    false,
                );
                // Route and fold the region's own decisions; charge only
                // stages hosted in this region (remote stages belong to
                // peers that never lost them).
                let mut scratch = RouteScratch::new();
                for p in &jobs {
                    let outcome = optimal_route_with(
                        &mut scratch,
                        &p.request,
                        placement,
                        &self.net,
                        &self.ap,
                        &self.catalog,
                    );
                    let st = &mut self.regions[r];
                    match outcome {
                        RouteOutcome::Edge { route, .. } => {
                            st.decided += 1;
                            st.tick_decided += 1;
                            st.fold_decision(t, p.user, TAG_EDGE, &route);
                            for (j, &host) in route.iter().enumerate() {
                                if self.region_map.region_of(host) == r as u32 {
                                    let m = p.request.chain[j];
                                    self.regions[r].charge(m, t, false);
                                }
                            }
                        }
                        RouteOutcome::CloudFallback => {
                            st.decided += 1;
                            st.tick_decided += 1;
                            st.cloud_fallbacks += 1;
                            st.fold_decision(t, p.user, TAG_CLOUD, &[]);
                        }
                    }
                }
                // Remote in-flight traffic: from the WAL record where the
                // log is clean, from peer outboxes where it is torn.
                let stored = records[ki].iter().find(|rec| rec.tick == t).cloned();
                match &stored {
                    Some(rec) => {
                        for (m, &count) in rec.remote_add.iter().enumerate() {
                            for _ in 0..count {
                                self.regions[r].charge(socl_model::ServiceId(m as u32), t, true);
                            }
                        }
                    }
                    None => {
                        let adds: Vec<u32> = self
                            .outbox
                            .iter()
                            .enumerate()
                            .filter(|&(o, _)| o != r)
                            .flat_map(|(_, ob)| ob.iter())
                            .filter(|(tick, _)| *tick == t)
                            .flat_map(|(_, sends)| sends.iter())
                            .filter(|(target, _)| *target == r as u32)
                            .map(|&(_, m)| m)
                            .collect();
                        for m in adds {
                            self.regions[r].charge(socl_model::ServiceId(m), t, true);
                        }
                    }
                }
                // Scaler tick + rebuilt record.
                let rec = region_phase_scale(
                    &mut self.regions[r],
                    t,
                    self.cfg.tick_secs,
                    placement,
                    &self.catalog,
                    &self.net,
                );
                // Oracle: a clean WAL tick must be reproduced exactly.
                if let Some(stored) = stored {
                    if stored != rec {
                        mismatches += 1;
                    }
                } else {
                    // Torn tick: re-append the rebuilt record so the log
                    // is whole again going forward.
                    self.wals[r].append(&rec);
                }
                self.digest_timeline[r].push(rec.digest);
                self.regions[r].clear_tick_locals();
            }
        }
        Ok(RestoreReport {
            killed_regions: killed.iter().map(|&r| r as u32).collect(),
            checkpoint_tick: c0,
            replayed_ticks: t_kill - c0,
            torn_bytes,
            oracle_mismatches: mismatches,
        })
    }

    /// Arrivals homed to region `r` at tick `t`, in user order (the
    /// replay-side counterpart of [`scan_arrivals`](Self::scan_arrivals)).
    fn region_arrivals(&self, t: u32, r: u32) -> Vec<u32> {
        let users = self.feed.config().users as u32;
        (0..users)
            .filter(|&u| {
                self.feed.arrives(t, u) && self.region_map.region_of(self.feed.home_station(u)) == r
            })
            .collect()
    }
}

/// Ingest + drain + admission for one region at tick `t`. Shared verbatim
/// by the live shard phase and crash replay — the digest depends on the
/// exact fold order, so there is exactly one implementation.
fn region_phase_a(
    st: &mut RegionState,
    t: u32,
    arrivals: &[u32],
    feed: &LoadFeed,
    placement: &Placement,
    budget: usize,
    capturing: bool,
) -> (Vec<Pending>, Vec<DecisionEvent>) {
    let mut events = Vec::new();
    let mut capture = |tick: u32, user: u32, tag: u64| {
        if capturing {
            events.push(DecisionEvent {
                tick,
                user,
                tag,
                route: Vec::new(),
            });
        }
    };
    st.expire(t);
    for &user in arrivals {
        st.arrivals += 1;
        st.tick_arrivals += 1;
        let request = feed.synthesize(user);
        if st
            .queue
            .push(Pending {
                user,
                tick: t,
                request,
            })
            .is_err()
        {
            st.shed_queue += 1;
            st.tick_shed_queue += 1;
            st.fold_decision(t, user, TAG_SHED_QUEUE, &[]);
            capture(t, user, TAG_SHED_QUEUE);
        }
    }
    let mut jobs = Vec::new();
    for _ in 0..budget {
        let Some(p) = st.queue.pop() else {
            break;
        };
        let covered = p
            .request
            .chain
            .iter()
            .all(|&m| placement.hosts_iter(m).next().is_some());
        if !covered {
            st.decided += 1;
            st.tick_decided += 1;
            st.cloud_fallbacks += 1;
            st.fold_decision(t, p.user, TAG_CLOUD, &[]);
            capture(t, p.user, TAG_CLOUD);
            continue;
        }
        let chain_len = p.request.chain.len();
        let admitted = p.request.chain.iter().all(|&m| {
            let y = f64::from(st.in_flight.get(m.idx()).copied().unwrap_or(0));
            st.scaler.admit(m, chain_len, y)
        });
        if !admitted {
            st.shed_admission += 1;
            st.tick_shed_admission += 1;
            st.fold_decision(t, p.user, TAG_SHED_ADMISSION, &[]);
            capture(t, p.user, TAG_SHED_ADMISSION);
            continue;
        }
        jobs.push(p);
    }
    (jobs, events)
}

/// Autoscaler tick + WAL record for one region (live and replay share it).
fn region_phase_scale(
    st: &mut RegionState,
    t: u32,
    tick_secs: f64,
    placement: &Placement,
    catalog: &ServiceCatalog,
    net: &EdgeNetwork,
) -> TickRecord {
    for m in 0..st.services() {
        st.signal[m] = f64::from(st.in_flight[m]);
    }
    let signal = std::mem::take(&mut st.signal);
    let _actions = st
        .scaler
        .tick(f64::from(t) * tick_secs, &signal, placement, catalog, net);
    st.signal = signal;
    TickRecord {
        tick: t,
        remote_add: st.remote_add.clone(),
        arrivals: st.tick_arrivals,
        decided: st.tick_decided,
        shed_queue: st.tick_shed_queue,
        shed_admission: st.tick_shed_admission,
        digest: st.digest,
    }
}

/// Freeze one region into a checkpoint image at tick `t`.
fn snapshot_region(st: &RegionState, t: u32) -> RegionCheckpoint {
    RegionCheckpoint {
        region: st.id,
        tick: t,
        pending: st.queue.iter().map(|p| (p.user, p.tick)).collect(),
        queue_high_watermark: st.queue.high_watermark() as u64,
        scaler: st.scaler.state(),
        in_flight: st.in_flight.clone(),
        ring: st.ring.clone(),
        arrivals: st.arrivals,
        decided: st.decided,
        shed_queue: st.shed_queue,
        shed_admission: st.shed_admission,
        cloud_fallbacks: st.cloud_fallbacks,
        digest: st.digest,
    }
}

/// Rebuild a region from a checkpoint image; queued requests are
/// re-synthesized from the feed.
fn restore_region(
    ck: &RegionCheckpoint,
    cfg: &ServeConfig,
    map: &RegionMap,
    feed: &LoadFeed,
) -> Result<RegionState, String> {
    let services = ck.in_flight.len();
    let nodes = cfg.nodes;
    let cap = cfg.queue_cap_per_station * map.count(ck.region).max(1);
    let mut st = RegionState::new(
        ck.region,
        services,
        nodes,
        cap,
        &cfg.autoscale,
        cfg.cold_start_s,
    );
    st.scaler
        .restore_state(&ck.scaler)
        .map_err(|e| format!("region {}: scaler restore: {e}", ck.region))?;
    for &(user, tick) in &ck.pending {
        let request = feed.synthesize(user);
        if st
            .queue
            .push(Pending {
                user,
                tick,
                request,
            })
            .is_err()
        {
            return Err(format!("region {}: checkpoint overflows queue", ck.region));
        }
    }
    st.queue
        .set_high_watermark(ck.queue_high_watermark as usize);
    st.in_flight = ck.in_flight.clone();
    st.ring = ck.ring.clone();
    st.arrivals = ck.arrivals;
    st.decided = ck.decided;
    st.shed_queue = ck.shed_queue;
    st.shed_admission = ck.shed_admission;
    st.cloud_fallbacks = ck.cloud_fallbacks;
    st.digest = ck.digest;
    Ok(st)
}

/// Apply a torn-tail mode to durable WAL bytes (the PR 6 crash model:
/// garbage appended by a dying writer, or a record cut mid-frame).
fn mangle_tail(bytes: &mut Vec<u8>, torn: socl_sim::TornTail, seed: u64) {
    match torn {
        socl_sim::TornTail::Clean => {}
        socl_sim::TornTail::Garbage => {
            let mut x = seed | 1;
            for _ in 0..13 {
                // xorshift garbage — deterministic, checksum-hostile.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                bytes.push((x & 0xFF) as u8);
            }
        }
        socl_sim::TornTail::PartialRecord => {
            let cut = bytes.len().saturating_sub(5);
            bytes.truncate(cut);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_runs_and_conserves() {
        let mut serve = SoclServe::new(ServeConfig {
            feed: FeedConfig {
                users: 2000,
                arrivals_per_tick: 60.0,
                ..FeedConfig::default()
            },
            ..ServeConfig::small(3)
        });
        let summaries = serve.run(10);
        assert_eq!(serve.completed_ticks(), 10);
        let t = serve.totals();
        assert!(t.arrivals > 0, "feed produced no load");
        assert!(t.decided > 0, "no decisions issued");
        assert_eq!(
            t.arrivals,
            t.decided + t.shed_queue + t.shed_admission + t.queued,
            "conservation violated"
        );
        // Digest timeline is dense: one entry per region per tick.
        for tl in serve.digest_timeline() {
            assert_eq!(tl.len(), 10);
        }
        let last = summaries.last().copied();
        assert_eq!(last.map(|s| s.tick), Some(10));
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let base = ServeConfig {
            feed: FeedConfig {
                users: 1500,
                arrivals_per_tick: 50.0,
                ..FeedConfig::default()
            },
            ..ServeConfig::small(11)
        };
        let digests: Vec<Vec<u64>> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let mut serve = SoclServe::new(ServeConfig {
                    shards,
                    ..base.clone()
                });
                serve.run(8).iter().map(|s| s.digest).collect()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn kill_and_restore_is_bit_identical() {
        let cfg = ServeConfig {
            feed: FeedConfig {
                users: 1500,
                arrivals_per_tick: 50.0,
                ..FeedConfig::default()
            },
            ..ServeConfig::small(5)
        };
        let mut golden = SoclServe::new(cfg.clone());
        golden.run(12);
        let golden_final = golden.snapshot_all();

        let mut victim = SoclServe::new(cfg);
        victim.run(7);
        let report = victim
            .kill_and_restore(1, socl_sim::TornTail::PartialRecord)
            .expect("restore");
        assert_eq!(report.oracle_mismatches, 0);
        assert!(report.replayed_ticks > 0);
        victim.run(5);
        assert_eq!(
            victim.snapshot_all(),
            golden_final,
            "stitched state differs"
        );
        assert_eq!(victim.digest_timeline(), golden.digest_timeline());
    }
}

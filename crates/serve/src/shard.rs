//! Per-region worlds: the mutable state a shard executes.
//!
//! Each region is a self-contained `OnlineSimulator`-style world for its
//! slice of the base-station graph: a bounded ingest queue, its own PR 4
//! autoscaler (admission + replica pools), an in-flight concurrency grid,
//! and decision counters folded into a running digest. Everything here is
//! keyed by *region*, never by shard — the execution worker a region lands
//! on is `region % shards`, so re-sharding cannot perturb state evolution.
//!
//! In-flight accounting: every decided edge route contributes one unit of
//! concurrency per chain stage, charged to the region hosting that stage
//! (cross-region stages are the "stitching" traffic) and expiring after a
//! fixed [`IN_FLIGHT_TICKS`] residency through a slotted ring. The fixed
//! residency is what keeps a killed region replayable: the remote half of
//! the signal is a per-tick additive vector that the WAL records verbatim,
//! while the local half is re-derived from the region's own replayed
//! decisions.

use crate::queue::BoundedQueue;
use socl_autoscale::{AutoscaleConfig, Autoscaler};
use socl_model::{ServiceId, UserRequest};

/// Ticks one decided stage keeps a unit of in-flight concurrency alive.
pub const IN_FLIGHT_TICKS: usize = 4;
/// Expiry-ring slots: residency plus the slot being expired.
pub const RING_SLOTS: usize = IN_FLIGHT_TICKS + 1;

/// Continue an FNV-1a 64-bit digest over `words`. The per-region decision
/// digest threads through this; replay must land on the same value.
#[inline]
pub(crate) fn mix(mut h: u64, words: &[u64]) -> u64 {
    if h == 0 {
        h = 0xcbf2_9ce4_8422_2325;
    }
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A queued request awaiting its decision: the synthesized request plus
/// the `(user, tick)` pair that re-derives it during replay.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Issuing user.
    pub user: u32,
    /// Tick the request arrived.
    pub tick: u32,
    /// The synthesized request (a pure function of the feed and `user`).
    pub request: UserRequest,
}

/// One region's full mutable state.
#[derive(Debug)]
pub struct RegionState {
    /// Region id (index into the service's region vector).
    pub id: u32,
    /// Bounded ingest queue; a full queue is an explicit queue-shed.
    pub queue: BoundedQueue<Pending>,
    /// The region's serverless control plane (PR 4): replica pools,
    /// admission policy, scaling windows.
    pub scaler: Autoscaler,
    /// Current in-flight concurrency per service (local + remote stages
    /// hosted here).
    pub in_flight: Vec<u32>,
    /// Slotted expiry ring, `RING_SLOTS × services`: `ring[slot][m]` units
    /// leave `in_flight[m]` when `slot` comes around.
    pub ring: Vec<u32>,
    /// Lifetime arrivals homed to this region.
    pub arrivals: u64,
    /// Lifetime decisions (edge routes + cloud fallbacks).
    pub decided: u64,
    /// Arrivals rejected by a full queue.
    pub shed_queue: u64,
    /// Drained requests rejected by the admission policy.
    pub shed_admission: u64,
    /// Decisions that fell back to the cloud (some chain service had no
    /// edge instance under the current placement).
    pub cloud_fallbacks: u64,
    /// Running decision digest; the WAL pins it per tick.
    pub digest: u64,
    /// Tick-local: in-flight units added this tick by *remote* origins
    /// (per service). Logged to the WAL, then cleared.
    pub remote_add: Vec<u32>,
    /// Tick-local counters, cleared each tick after the WAL record.
    pub tick_arrivals: u32,
    /// Tick-local decisions.
    pub tick_decided: u32,
    /// Tick-local queue sheds.
    pub tick_shed_queue: u32,
    /// Tick-local admission sheds.
    pub tick_shed_admission: u32,
    /// Scratch for the scaler's concurrency signal (`in_flight` as f64s).
    pub signal: Vec<f64>,
}

impl RegionState {
    /// Fresh region state: empty queue of capacity `queue_cap`, an
    /// autoscaler over the *global* `services × nodes` grid (placement is
    /// global; the region's view is its own replica ledger).
    #[must_use]
    pub fn new(
        id: u32,
        services: usize,
        nodes: usize,
        queue_cap: usize,
        autoscale: &AutoscaleConfig,
        cold_start_s: f64,
    ) -> Self {
        Self {
            id,
            queue: BoundedQueue::new(queue_cap),
            scaler: Autoscaler::new(autoscale.clone(), cold_start_s, services, nodes),
            in_flight: vec![0; services],
            ring: vec![0; RING_SLOTS * services],
            arrivals: 0,
            decided: 0,
            shed_queue: 0,
            shed_admission: 0,
            cloud_fallbacks: 0,
            digest: 0,
            remote_add: vec![0; services],
            tick_arrivals: 0,
            tick_decided: 0,
            tick_shed_queue: 0,
            tick_shed_admission: 0,
            signal: vec![0.0; services],
        }
    }

    /// Number of services in the grid.
    #[must_use]
    pub fn services(&self) -> usize {
        self.in_flight.len()
    }

    /// Retire the in-flight units whose residency ends at `tick`.
    pub fn expire(&mut self, tick: u32) {
        let services = self.in_flight.len();
        let slot = (tick as usize % RING_SLOTS) * services;
        for m in 0..services {
            let leaving = self.ring.get(slot + m).copied().unwrap_or(0);
            if let Some(f) = self.in_flight.get_mut(m) {
                *f = f.saturating_sub(leaving);
            }
            if let Some(s) = self.ring.get_mut(slot + m) {
                *s = 0;
            }
        }
    }

    /// Charge one in-flight unit for service `m` decided at `tick`,
    /// expiring [`IN_FLIGHT_TICKS`] later. `remote` marks units whose
    /// origin region differs from this (hosting) region — the stitched
    /// traffic the WAL must carry for replay.
    pub fn charge(&mut self, m: ServiceId, tick: u32, remote: bool) {
        let services = self.in_flight.len();
        let slot = ((tick as usize + IN_FLIGHT_TICKS) % RING_SLOTS) * services;
        if let Some(f) = self.in_flight.get_mut(m.idx()) {
            *f += 1;
        }
        if let Some(s) = self.ring.get_mut(slot + m.idx()) {
            *s += 1;
        }
        if remote {
            if let Some(a) = self.remote_add.get_mut(m.idx()) {
                *a += 1;
            }
        }
    }

    /// Total scheduled expiries for service `m` — must equal
    /// `in_flight[m]` at every tick boundary (audit invariant).
    #[must_use]
    pub fn ring_sum(&self, m: usize) -> u32 {
        (0..RING_SLOTS)
            .map(|s| {
                self.ring
                    .get(s * self.in_flight.len() + m)
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Fold one decision into the region digest. `tag` encodes the
    /// outcome kind; `route` is empty for cloud fallbacks and sheds.
    pub fn fold_decision(&mut self, tick: u32, user: u32, tag: u64, route: &[socl_net::NodeId]) {
        self.digest = mix(self.digest, &[u64::from(tick), u64::from(user), tag]);
        for n in route {
            self.digest = mix(self.digest, &[u64::from(n.0)]);
        }
    }

    /// Clear the tick-local accumulators after the WAL record is cut.
    pub fn clear_tick_locals(&mut self) {
        self.remote_add.iter_mut().for_each(|a| *a = 0);
        self.tick_arrivals = 0;
        self.tick_decided = 0;
        self.tick_shed_queue = 0;
        self.tick_shed_admission = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionState {
        RegionState::new(0, 3, 8, 16, &AutoscaleConfig::default(), 0.5)
    }

    #[test]
    fn charge_and_expire_conserve() {
        let mut r = region();
        r.charge(ServiceId(1), 5, false);
        r.charge(ServiceId(1), 5, true);
        r.charge(ServiceId(2), 6, false);
        assert_eq!(r.in_flight, vec![0, 2, 1]);
        assert_eq!(r.remote_add, vec![0, 1, 0]);
        for m in 0..3 {
            assert_eq!(r.ring_sum(m), r.in_flight[m]);
        }
        // Residency of the tick-5 charges ends at tick 5 + IN_FLIGHT_TICKS.
        for t in 6..=5 + IN_FLIGHT_TICKS as u32 {
            r.expire(t);
        }
        assert_eq!(r.in_flight, vec![0, 0, 1]);
        r.expire(6 + IN_FLIGHT_TICKS as u32);
        assert_eq!(r.in_flight, vec![0, 0, 0]);
    }

    #[test]
    fn digest_depends_on_route_and_order() {
        let mut a = region();
        let mut b = region();
        a.fold_decision(1, 10, 1, &[socl_net::NodeId(2), socl_net::NodeId(3)]);
        b.fold_decision(1, 10, 1, &[socl_net::NodeId(3), socl_net::NodeId(2)]);
        assert_ne!(a.digest, b.digest);
        let mut c = region();
        c.fold_decision(1, 10, 1, &[socl_net::NodeId(2), socl_net::NodeId(3)]);
        assert_eq!(a.digest, c.digest);
    }
}

//! Bounded MPSC-style ingest queues with explicit backpressure.
//!
//! Every region owns one [`BoundedQueue`] between the request feed and the
//! admission controller. The queue never grows past its capacity: a push
//! against a full queue *returns the item* so the caller must account for
//! it (the conservation law the backpressure proptest pins: every arrival
//! is decided, shed with an explicit outcome, or still queued — nothing is
//! silently dropped).

/// Fixed-capacity FIFO. `push` on a full queue is an error carrying the
/// rejected item back to the producer.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: std::collections::VecDeque<T>,
    cap: usize,
    high_watermark: usize,
}

impl<T> BoundedQueue<T> {
    /// Empty queue holding at most `cap` items (`cap` is clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            items: std::collections::VecDeque::with_capacity(cap),
            cap,
            high_watermark: 0,
        }
    }

    /// Enqueue, or hand the item back when the queue is at capacity.
    ///
    /// # Errors
    /// `Err(item)` when full — the caller owns the shed accounting.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.cap {
            return Err(item);
        }
        self.items.push_back(item);
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity ceiling.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Deepest the queue has ever been.
    #[must_use]
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Reset the high-watermark statistic (restore paths set it from a
    /// checkpoint instead of inheriting the fresh queue's history).
    pub fn set_high_watermark(&mut self, hw: usize) {
        self.high_watermark = hw;
    }

    /// Iterate queued items front to back (checkpoint serialization).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_backpressure() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(7).is_ok());
        assert_eq!(q.push(8), Err(8));
    }
}

//! Durable state for the service boundary: per-region checkpoints and
//! write-ahead tick records, on the PR 6 recovery substrate.
//!
//! Both artifacts ride the lifted `socl-sim::recovery` machinery: the WAL
//! uses the same `[len][crc][payload]` framing (torn tails truncate, never
//! replay), scaler state uses the same codec as the simulator's own
//! checkpoints, and the checkpoint image carries the same
//! magic + version + trailing-CRC envelope discipline.
//!
//! The [`TickRecord`] is deliberately minimal: the *local* half of a
//! region's evolution (arrivals, drains, routes, sheds) is a pure function
//! of the feed and the restored state, so it is re-derived during replay;
//! only the *remote* in-flight additions — stitched chain stages hosted
//! here but decided elsewhere — plus the oracle fields (digest, counters)
//! that prove the replay honest go to disk.

use socl_autoscale::ScalerState;
use socl_model::{crc32, BinReader, BinWriter, CodecError};
use socl_sim::recovery::{frame_append, get_scaler_state, put_scaler_state, scan_frames};
use socl_sim::TailReport;

/// Checkpoint format tag (`b"SRGN"` little-endian).
const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"SRGN");
/// Region-checkpoint format version understood by this build.
// CKPT-SHAPE(v1): 2783521b7bd4231a
const CKPT_VERSION: u32 = 1;
/// Upper bound on any decoded sequence length (corruption guard).
const MAX_SEQ: usize = 1 << 24;

fn get_seq_len(r: &mut BinReader<'_>) -> Result<usize, CodecError> {
    let n = r.get_usize()?;
    if n > MAX_SEQ {
        return Err(CodecError::Malformed("sequence length over limit"));
    }
    Ok(n)
}

/// One tick of one region in the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickRecord {
    /// The tick this record closes (1-based).
    pub tick: u32,
    /// Per-service in-flight units added this tick by remote origin
    /// regions (cross-shard chain stitching).
    pub remote_add: Vec<u32>,
    /// Arrivals homed to the region this tick.
    pub arrivals: u32,
    /// Decisions issued this tick.
    pub decided: u32,
    /// Queue-full sheds this tick.
    pub shed_queue: u32,
    /// Admission sheds this tick.
    pub shed_admission: u32,
    /// Region digest after the tick — the replay oracle.
    pub digest: u64,
}

impl TickRecord {
    /// Serialize into `w` (field order is the struct declaration order).
    pub fn encode(&self, w: &mut BinWriter) {
        w.put_u32(self.tick);
        w.put_u32_slice(&self.remote_add);
        w.put_u32(self.arrivals);
        w.put_u32(self.decided);
        w.put_u32(self.shed_queue);
        w.put_u32(self.shed_admission);
        w.put_u64(self.digest);
    }

    /// Decode a record written by [`encode`](Self::encode).
    ///
    /// # Errors
    /// [`CodecError`] on truncation or a length over the safety bound.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = BinReader::new(payload);
        let rec = Self {
            tick: r.get_u32()?,
            remote_add: r.get_u32_vec()?,
            arrivals: r.get_u32()?,
            decided: r.get_u32()?,
            shed_queue: r.get_u32()?,
            shed_admission: r.get_u32()?,
            digest: r.get_u64()?,
        };
        if rec.remote_add.len() > MAX_SEQ {
            return Err(CodecError::Malformed("remote_add over limit"));
        }
        if !r.is_done() {
            return Err(CodecError::Malformed("trailing bytes in tick record"));
        }
        Ok(rec)
    }
}

/// A region's append-only WAL: framed [`TickRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct RegionWal {
    buf: Vec<u8>,
}

impl RegionWal {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append one framed record.
    pub fn append(&mut self, record: &TickRecord) {
        let mut w = BinWriter::new();
        record.encode(&mut w);
        frame_append(&mut self.buf, w.as_bytes());
    }

    /// The raw wire bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuild from wire bytes, truncating a torn or corrupted tail at
    /// the first bad frame (the shared torn-tail discipline).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> (Self, TailReport) {
        let (clean_end, report) =
            scan_frames(bytes, &|payload| TickRecord::decode(payload).is_ok());
        let wal = Self {
            buf: bytes.get(..clean_end).unwrap_or_default().to_vec(),
        };
        (wal, report)
    }

    /// Decode every record in the (clean) log.
    ///
    /// # Errors
    /// [`CodecError`] on a bad frame — impossible for logs built by
    /// [`append`](Self::append) or returned from [`from_bytes`](Self::from_bytes).
    pub fn records(&self) -> Result<Vec<TickRecord>, CodecError> {
        socl_sim::recovery::frame_payloads(&self.buf)?
            .into_iter()
            .map(TickRecord::decode)
            .collect()
    }
}

/// A frozen image of one region's complete mutable state at a tick
/// boundary, exactly sufficient to restore and replay bit-identically.
/// Queued requests are stored as `(user, arrival tick)` pairs — the feed
/// re-synthesizes the full request deterministically on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCheckpoint {
    /// Region id.
    pub region: u32,
    /// Last completed tick this image reflects.
    pub tick: u32,
    /// Queued `(user, arrival_tick)` pairs, front to back.
    pub pending: Vec<(u32, u32)>,
    /// Queue depth high-watermark.
    pub queue_high_watermark: u64,
    /// Full autoscaler state (PR 6 scaler codec).
    pub scaler: ScalerState,
    /// In-flight concurrency per service.
    pub in_flight: Vec<u32>,
    /// Expiry ring, `RING_SLOTS × services` flattened.
    pub ring: Vec<u32>,
    /// Lifetime arrival count.
    pub arrivals: u64,
    /// Lifetime decision count.
    pub decided: u64,
    /// Lifetime queue-full sheds.
    pub shed_queue: u64,
    /// Lifetime admission sheds.
    pub shed_admission: u64,
    /// Lifetime cloud fallbacks.
    pub cloud_fallbacks: u64,
    /// Decision digest after `tick`.
    pub digest: u64,
}

impl RegionCheckpoint {
    /// Serialize to the versioned wire format: magic, version, payload,
    /// trailing CRC-32 over everything before it.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new();
        w.put_u32(CKPT_MAGIC);
        w.put_u32(CKPT_VERSION);
        w.put_u32(self.region);
        w.put_u32(self.tick);
        w.put_usize(self.pending.len());
        for &(user, tick) in &self.pending {
            w.put_u32(user);
            w.put_u32(tick);
        }
        w.put_u64(self.queue_high_watermark);
        put_scaler_state(&mut w, &self.scaler);
        w.put_u32_slice(&self.in_flight);
        w.put_u32_slice(&self.ring);
        w.put_u64(self.arrivals);
        w.put_u64(self.decided);
        w.put_u64(self.shed_queue);
        w.put_u64(self.shed_admission);
        w.put_u64(self.cloud_fallbacks);
        w.put_u64(self.digest);
        let crc = crc32(w.as_bytes());
        w.put_u32(crc);
        w.into_bytes()
    }

    /// Decode and verify an image produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`CodecError`] on a bad magic/version, truncation, an over-limit
    /// sequence length, or a trailing-CRC mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 4 {
            return Err(CodecError::Malformed("checkpoint too short"));
        }
        let body_len = bytes.len() - 4;
        let body = bytes.get(..body_len).unwrap_or_default();
        let stored = {
            let mut r = BinReader::new(bytes.get(body_len..).unwrap_or_default());
            r.get_u32()?
        };
        let computed = crc32(body);
        if stored != computed {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        let mut r = BinReader::new(body);
        let magic = r.get_u32()?;
        if magic != CKPT_MAGIC {
            return Err(CodecError::Malformed("bad checkpoint magic"));
        }
        let version = r.get_u32()?;
        if version != CKPT_VERSION {
            return Err(CodecError::Malformed("unsupported checkpoint version"));
        }
        let region = r.get_u32()?;
        let tick = r.get_u32()?;
        let n_pending = get_seq_len(&mut r)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push((r.get_u32()?, r.get_u32()?));
        }
        let ck = Self {
            region,
            tick,
            pending,
            queue_high_watermark: r.get_u64()?,
            scaler: get_scaler_state(&mut r)?,
            in_flight: r.get_u32_vec()?,
            ring: r.get_u32_vec()?,
            arrivals: r.get_u64()?,
            decided: r.get_u64()?,
            shed_queue: r.get_u64()?,
            shed_admission: r.get_u64()?,
            cloud_fallbacks: r.get_u64()?,
            digest: r.get_u64()?,
        };
        if ck.in_flight.len() > MAX_SEQ || ck.ring.len() > MAX_SEQ {
            return Err(CodecError::Malformed("grid length over limit"));
        }
        if !r.is_done() {
            return Err(CodecError::Malformed("trailing bytes in checkpoint"));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_autoscale::{AutoscaleConfig, Autoscaler};

    fn checkpoint() -> RegionCheckpoint {
        let scaler = Autoscaler::new(AutoscaleConfig::default(), 0.5, 3, 6);
        RegionCheckpoint {
            region: 2,
            tick: 9,
            pending: vec![(4, 8), (17, 9)],
            queue_high_watermark: 5,
            scaler: scaler.state(),
            in_flight: vec![1, 0, 3],
            ring: vec![0; 15],
            arrivals: 40,
            decided: 31,
            shed_queue: 2,
            shed_admission: 5,
            cloud_fallbacks: 1,
            digest: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let ck = checkpoint();
        let bytes = ck.to_bytes();
        let back = RegionCheckpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(ck, back);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let ck = checkpoint();
        let mut bytes = ck.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(RegionCheckpoint::from_bytes(&bytes).is_err());
        assert!(RegionCheckpoint::from_bytes(&bytes[..8]).is_err());
    }

    #[test]
    fn wal_roundtrips_and_truncates_torn_tail() {
        let mut wal = RegionWal::new();
        for t in 1..=3u32 {
            wal.append(&TickRecord {
                tick: t,
                remote_add: vec![0, t, 0],
                arrivals: 10 + t,
                decided: 8,
                shed_queue: 1,
                shed_admission: 1,
                digest: u64::from(t) * 99,
            });
        }
        let (back, report) = RegionWal::from_bytes(wal.as_bytes());
        assert_eq!(report.clean_records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.reason.is_none());
        assert_eq!(
            back.records().expect("clean"),
            wal.records().expect("clean")
        );

        // Torn tail: cut the last record mid-frame.
        let bytes = wal.as_bytes();
        let torn = &bytes[..bytes.len() - 5];
        let (prefix, report) = RegionWal::from_bytes(torn);
        assert_eq!(report.clean_records, 2);
        assert!(report.reason.is_some());
        assert_eq!(prefix.records().expect("clean").len(), 2);
    }
}

//! Load generator: replay a large synthetic user population against the
//! sharded control-plane service and report per-tick throughput.
//!
//! The population is virtual — users are synthesized lazily, so millions
//! cost nothing until they arrive. Two canonical intensity shapes are
//! built in: `flash` (one sharp overload spike plus frequent bursts) and
//! `diurnal` (two broad daily peaks).
//!
//! ```text
//! cargo run --release -p socl-serve --bin loadgen -- \
//!     --users 2000000 --ticks 120 --shape flash --csv
//! ```

use socl_net::par::set_threads;
use socl_net::Stopwatch;
use socl_serve::{audit_serve, FeedConfig, ServeConfig, SoclServe};
use socl_trace::TemporalConfig;

fn parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_str(args: &[String], key: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "loadgen: drive socl-serve with a synthetic user population\n\n\
             options:\n\
             \x20 --users N     population size (default 2000000)\n\
             \x20 --nodes N     base stations (default 24)\n\
             \x20 --regions N   state regions (default 4)\n\
             \x20 --shards N    execution shards (default 4)\n\
             \x20 --ticks N     ticks to run (default 120)\n\
             \x20 --rate R      mean arrivals per tick (default 3000)\n\
             \x20 --shape S     flash | diurnal (default flash)\n\
             \x20 --seed N      seed (default 42)\n\
             \x20 --threads N   worker threads (default: all cores)\n\
             \x20 --csv         per-tick CSV on stdout"
        );
        return;
    }
    let users: usize = parse(&args, "--users", 2_000_000);
    let nodes: usize = parse(&args, "--nodes", 24);
    let regions: usize = parse(&args, "--regions", 4);
    let shards: usize = parse(&args, "--shards", 4);
    let ticks: u32 = parse(&args, "--ticks", 120);
    let rate: f64 = parse(&args, "--rate", 3000.0);
    let seed: u64 = parse(&args, "--seed", 42);
    let threads: usize = parse(&args, "--threads", 0);
    let shape_name = parse_str(&args, "--shape", "flash");
    let csv = args.iter().any(|a| a == "--csv");
    if threads > 0 {
        set_threads(threads);
    }
    let shape = match shape_name.as_str() {
        "diurnal" => TemporalConfig::diurnal(),
        _ => TemporalConfig::flash_crowd(),
    };

    let cfg = ServeConfig {
        nodes,
        regions,
        shards,
        feed: FeedConfig {
            users,
            shape,
            arrivals_per_tick: rate,
            seed: seed ^ 0x5EED,
            ..FeedConfig::default()
        },
        ..ServeConfig::small(seed)
    };
    let mut serve = SoclServe::new(cfg);

    eprintln!(
        "loadgen: {users} users, {nodes} nodes, {regions} regions, {shards} shards, \
         shape={shape_name}, {ticks} ticks"
    );
    if csv {
        println!("tick,arrivals,decided,shed_queue,shed_admission,queued,ms");
    }
    let clock = Stopwatch::start();
    let mut busiest_ms = 0.0f64;
    for _ in 0..ticks {
        let t0 = Stopwatch::start();
        let s = serve.step();
        let ms = t0.elapsed_secs() * 1e3;
        busiest_ms = busiest_ms.max(ms);
        if csv {
            println!(
                "{},{},{},{},{},{},{ms:.3}",
                s.tick, s.arrivals, s.decided, s.shed_queue, s.shed_admission, s.queued
            );
        }
    }
    let elapsed = clock.elapsed_secs();
    let t = serve.totals();
    let violations = audit_serve(&serve);
    eprintln!(
        "loadgen: {} arrivals, {} decided ({} cloud), {} shed (queue {} + admission {}), \
         {} queued; peak queue {}; {:.0} decisions/s; busiest tick {busiest_ms:.1} ms; \
         {} invariant violations",
        t.arrivals,
        t.decided,
        t.cloud_fallbacks,
        t.shed_queue + t.shed_admission,
        t.shed_queue,
        t.shed_admission,
        t.queued,
        t.queue_peak,
        t.decided as f64 / elapsed.max(1e-9),
        violations.len()
    );
    for v in &violations {
        eprintln!("loadgen: VIOLATION: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

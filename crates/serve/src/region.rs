//! Region partitioning of the base-station graph.
//!
//! The control plane shards its state by *region*: a balanced, connected-ish
//! block of base stations produced by multi-source BFS over the edge
//! topology. Regions are the semantic unit — every piece of mutable service
//! state (queues, autoscalers, in-flight counters, WALs, checkpoints) is
//! keyed by region id. *Shards* are merely execution workers that own a
//! deterministic subset of regions (`region % shards`), so changing the
//! shard count re-maps ownership without touching any region-keyed state:
//! the decision stream is invariant in the shard count, exactly like the
//! thread count in `socl_net::par`.

use socl_net::{EdgeNetwork, NodeId};
use std::collections::VecDeque;

/// A fixed assignment of every base station to a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    region_of: Vec<u32>,
    counts: Vec<u32>,
    regions: usize,
}

impl RegionMap {
    /// Partition `net` into `regions` balanced blocks by multi-source BFS.
    ///
    /// Seeds are spread evenly over the node-id range; each round every
    /// region (in region-id order) claims at most one unassigned frontier
    /// neighbor, capped at `ceil(n / regions)` nodes per region. Nodes
    /// unreachable from any seed (disconnected components) are swept up by
    /// the currently smallest region. Fully deterministic: no RNG, no hash
    /// iteration, identical output for a given `(net, regions)`.
    #[must_use]
    pub fn partition(net: &EdgeNetwork, regions: usize) -> Self {
        let n = net.node_count();
        let regions = regions.clamp(1, n.max(1));
        let cap = n.div_ceil(regions);
        let mut region_of = vec![u32::MAX; n];
        let mut counts = vec![0u32; regions];
        let mut frontiers: Vec<VecDeque<u32>> = vec![VecDeque::new(); regions];
        let mut assigned = 0usize;
        for r in 0..regions {
            let seed = (r * n / regions) as u32;
            if let Some(slot) = region_of.get_mut(seed as usize) {
                if *slot == u32::MAX {
                    *slot = r as u32;
                    counts[r] += 1;
                    assigned += 1;
                    frontiers[r].push_back(seed);
                }
            }
        }
        while assigned < n {
            let mut progressed = false;
            for r in 0..regions {
                if counts[r] as usize >= cap {
                    continue;
                }
                // Pop exhausted frontier nodes until one with an unclaimed
                // neighbor appears; claim exactly one node per round so
                // regions grow in lock step.
                while let Some(&u) = frontiers[r].front() {
                    let next = net
                        .neighbors(NodeId(u))
                        .iter()
                        .map(|nb| nb.node.0)
                        .find(|&v| region_of.get(v as usize) == Some(&u32::MAX));
                    match next {
                        Some(v) => {
                            region_of[v as usize] = r as u32;
                            counts[r] += 1;
                            assigned += 1;
                            frontiers[r].push_back(v);
                            progressed = true;
                            break;
                        }
                        None => {
                            frontiers[r].pop_front();
                        }
                    }
                }
            }
            if !progressed {
                // Every frontier is exhausted or capped but nodes remain:
                // a disconnected component, or caps rounded tight. Hand the
                // lowest unassigned node to the smallest region and resume
                // BFS from it.
                if let Some(v) = region_of.iter().position(|&r| r == u32::MAX) {
                    let r = (0..regions).min_by_key(|&r| (counts[r], r)).unwrap_or(0);
                    region_of[v] = r as u32;
                    counts[r] += 1;
                    assigned += 1;
                    frontiers[r].push_back(v as u32);
                }
            }
        }
        Self {
            region_of,
            counts,
            regions,
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Region owning base station `n`.
    #[must_use]
    pub fn region_of(&self, n: NodeId) -> u32 {
        self.region_of.get(n.0 as usize).copied().unwrap_or(0)
    }

    /// Number of base stations in region `r`.
    #[must_use]
    pub fn count(&self, r: u32) -> usize {
        self.counts.get(r as usize).copied().unwrap_or(0) as usize
    }

    /// Base stations of region `r`, in node-id order.
    pub fn nodes_in(&self, r: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.region_of
            .iter()
            .enumerate()
            .filter(move |&(_, &rr)| rr == r)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The shard that executes region `r` when `shards` workers run.
    #[must_use]
    pub fn shard_of(&self, r: u32, shards: usize) -> usize {
        r as usize % shards.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    #[test]
    fn partition_is_total_balanced_and_deterministic() {
        let sc = ScenarioConfig::paper(20, 10).build(3);
        for regions in [1, 2, 3, 4, 7, 20] {
            let a = RegionMap::partition(&sc.net, regions);
            let b = RegionMap::partition(&sc.net, regions);
            assert_eq!(a, b, "regions={regions}");
            assert_eq!(a.regions(), regions);
            let total: usize = (0..regions as u32).map(|r| a.count(r)).sum();
            assert_eq!(total, 20);
            let cap = 20usize.div_ceil(regions);
            for r in 0..regions as u32 {
                assert!(a.count(r) <= cap, "region {r} over cap");
            }
        }
    }

    #[test]
    fn more_regions_than_nodes_clamps() {
        let sc = ScenarioConfig::paper(5, 8).build(1);
        let m = RegionMap::partition(&sc.net, 64);
        assert_eq!(m.regions(), 5);
        for r in 0..5u32 {
            assert_eq!(m.count(r), 1);
        }
    }

    #[test]
    fn nodes_in_matches_region_of() {
        let sc = ScenarioConfig::paper(12, 8).build(2);
        let m = RegionMap::partition(&sc.net, 3);
        for r in 0..3u32 {
            for n in m.nodes_in(r) {
                assert_eq!(m.region_of(n), r);
            }
        }
    }
}

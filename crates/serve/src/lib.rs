//! socl-serve: the sharded control-plane service.
//!
//! A long-running, deterministic event loop that exposes the repo's
//! placement, routing, and autoscale decisions as a service: a streaming
//! request feed ([`feed`]) pushes load through per-region bounded queues
//! ([`queue`]) into region-sharded worlds ([`shard`]) partitioned from
//! the base-station graph ([`region`]); the event loop ([`service`])
//! drains, admits, routes, and scales each tick, journaling every
//! region's decisions to a checkpoint + WAL substrate ([`wal`]) so a
//! killed shard restores and replays to bit-identical state.
//!
//! Concurrency runs entirely on the deterministic pool (`socl_net::par`);
//! there is no async runtime, no wall clock, and no hash-order iteration
//! in the decision path, so the decision stream is identical for any
//! shard count and any thread count.

pub mod feed;
pub mod queue;
pub mod region;
pub mod service;
pub mod shard;
pub mod wal;

pub use feed::{FeedConfig, LoadFeed};
pub use queue::BoundedQueue;
pub use region::RegionMap;
pub use service::{DecisionEvent, RestoreReport, ServeConfig, ServeTotals, SoclServe, TickSummary};
pub use shard::{Pending, RegionState, IN_FLIGHT_TICKS, RING_SLOTS};
pub use wal::{RegionCheckpoint, RegionWal, TickRecord};

/// Audit the service's conservation and accounting invariants; returns
/// human-readable violations (empty = healthy).
///
/// Checked per region, every call:
/// - arrivals = decided + queue sheds + admission sheds + still queued;
/// - the expiry ring's scheduled departures equal the in-flight level for
///   every service;
/// - the queue never exceeds its capacity;
/// - cloud fallbacks never exceed decisions.
#[must_use]
pub fn audit_serve(serve: &SoclServe) -> Vec<String> {
    let mut violations = Vec::new();
    for st in serve.regions() {
        let r = st.id;
        let accounted = st.decided + st.shed_queue + st.shed_admission + st.queue.len() as u64;
        if st.arrivals != accounted {
            violations.push(format!(
                "region {r}: arrivals {} != decided+shed+queued {accounted}",
                st.arrivals
            ));
        }
        for m in 0..st.services() {
            let scheduled = st.ring_sum(m);
            let level = st.in_flight.get(m).copied().unwrap_or(0);
            if scheduled != level {
                violations.push(format!(
                    "region {r}: service {m}: ring sum {scheduled} != in-flight {level}"
                ));
            }
        }
        if st.queue.len() > st.queue.capacity() {
            violations.push(format!(
                "region {r}: queue depth {} exceeds capacity {}",
                st.queue.len(),
                st.queue.capacity()
            ));
        }
        if st.cloud_fallbacks > st.decided {
            violations.push(format!(
                "region {r}: cloud fallbacks {} exceed decisions {}",
                st.cloud_fallbacks, st.decided
            ));
        }
    }
    violations
}

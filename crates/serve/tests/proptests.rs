//! Property tests for the sharded service:
//!
//! * **Partition equivalence** — with no resource limit binding (generous
//!   queues and drain budget, admission disabled), the per-user routing
//!   decisions of an N-region, M-shard run are identical to the unsharded
//!   single-world run, for chains confined within one region and for
//!   chains spanning regions alike. Regions group work; they must never
//!   change it.
//! * **Shard-count invariance** — with every limit binding (tiny queues,
//!   admission on), the full digest timeline and final serialized state
//!   are identical for any shard count: shards are execution workers, not
//!   semantics.
//! * **Backpressure conservation** — under queue-full bursts no request
//!   is silently dropped: every arrival is decided, shed with an explicit
//!   outcome, or still queued, and the invariant auditor stays clean.
//!
//! Each property lives in a plain function so the fixed-seed pins below
//! execute the same code deterministically; the `proptest!` wrappers
//! explore the parameter space on top.

use proptest::prelude::*;
use socl_autoscale::AdmissionPolicy;
use socl_serve::{audit_serve, DecisionEvent, FeedConfig, ServeConfig, SoclServe};

/// A configuration where no queue, budget, or admission limit can bind:
/// decisions depend only on the feed and the placement, which are both
/// independent of the partition.
fn unconstrained(seed: u64, users: usize, regions: usize, shards: usize) -> ServeConfig {
    let mut cfg = ServeConfig::small(seed);
    cfg.nodes = 12;
    cfg.regions = regions;
    cfg.shards = shards;
    cfg.queue_cap_per_station = 10_000;
    cfg.drain_per_station = 10_000;
    cfg.autoscale.admission = AdmissionPolicy {
        enabled: false,
        ..cfg.autoscale.admission
    };
    cfg.feed = FeedConfig {
        users,
        arrivals_per_tick: 40.0,
        seed: seed ^ 0xFEED,
        ..FeedConfig::default()
    };
    cfg
}

/// A configuration where every limit binds: tiny queues, tiny drain
/// budget, admission on, heavy arrivals.
fn constrained(seed: u64, shards: usize, queue_cap: usize, drain: usize, rate: f64) -> ServeConfig {
    let mut cfg = ServeConfig::small(seed);
    cfg.shards = shards;
    cfg.queue_cap_per_station = queue_cap;
    cfg.drain_per_station = drain;
    cfg.feed = FeedConfig {
        users: 700,
        arrivals_per_tick: rate,
        seed: seed ^ 0xFEED,
        ..FeedConfig::default()
    };
    cfg
}

/// Run `ticks` with capture on and return the decisions sorted by
/// `(tick, user)` — the partition-independent canonical order.
fn captured_decisions(mut serve: SoclServe, ticks: u32) -> Vec<DecisionEvent> {
    serve.enable_capture();
    serve.run(ticks);
    let mut events = serve.take_captured();
    events.sort_by_key(|e| (e.tick, e.user));
    events
}

/// Count `(confined, spanning)` multi-stage routes against the partition
/// of `reference`.
fn classify_routes(events: &[DecisionEvent], reference: &SoclServe) -> (usize, usize) {
    let map = reference.region_map();
    let mut confined = 0usize;
    let mut spanning = 0usize;
    for e in events {
        let Some(&first) = e.route.first() else {
            continue;
        };
        if e.route.len() < 2 {
            continue;
        }
        let r0 = map.region_of(first);
        if e.route.iter().all(|&h| map.region_of(h) == r0) {
            confined += 1;
        } else {
            spanning += 1;
        }
    }
    (confined, spanning)
}

/// Partition equivalence: identical per-user decisions for the 1-region
/// single world and the `regions`-region, `shards`-shard service.
/// Returns `(confined, spanning)` route counts for coverage assertions.
fn check_partition_equivalence(seed: u64, regions: usize, shards: usize) -> (usize, usize) {
    let ticks = 5;
    let users = 800;
    let single = captured_decisions(SoclServe::new(unconstrained(seed, users, 1, 1)), ticks);
    let reference = SoclServe::new(unconstrained(seed, users, regions, shards));
    let sharded = captured_decisions(
        SoclServe::new(unconstrained(seed, users, regions, shards)),
        ticks,
    );
    assert!(!single.is_empty(), "no decisions to compare (seed {seed})");
    assert_eq!(
        single, sharded,
        "decisions diverged: seed {seed}, {regions} regions, {shards} shards"
    );
    let (confined, spanning) = classify_routes(&sharded, &reference);
    assert!(
        confined + spanning > 0,
        "no multi-stage routes among {} decisions (seed {seed})",
        sharded.len()
    );
    (confined, spanning)
}

/// Shard-count invariance under binding limits: digest timeline and
/// final serialized state identical for 1 and `shards` shards.
fn check_shard_invariance(seed: u64, shards: usize) {
    let mut one = SoclServe::new(constrained(seed, 1, 3, 2, 120.0));
    let mut many = SoclServe::new(constrained(seed, shards, 3, 2, 120.0));
    one.run(6);
    many.run(6);
    assert_eq!(
        one.digest_timeline(),
        many.digest_timeline(),
        "digest timelines diverged: seed {seed}, {shards} shards"
    );
    assert_eq!(
        one.snapshot_all(),
        many.snapshot_all(),
        "final state diverged: seed {seed}, {shards} shards"
    );
}

/// Backpressure conservation: every arrival decided, explicitly shed, or
/// still queued; invariant audit clean.
fn check_backpressure_conservation(
    seed: u64,
    queue_cap: usize,
    drain: usize,
    rate: f64,
    ticks: u32,
) {
    let mut serve = SoclServe::new(constrained(seed, 4, queue_cap, drain, rate));
    serve.run(ticks);
    let t = serve.totals();
    assert!(t.arrivals > 0, "burst produced no arrivals (seed {seed})");
    assert_eq!(
        t.arrivals,
        t.decided + t.shed_queue + t.shed_admission + t.queued,
        "conservation violated: arrivals {} decided {} shed_queue {} shed_admission {} \
         queued {} (seed {seed})",
        t.arrivals,
        t.decided,
        t.shed_queue,
        t.shed_admission,
        t.queued
    );
    let violations = audit_serve(&serve);
    assert!(violations.is_empty(), "violations: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn partitioned_run_matches_single_world(
        seed in 0u64..500,
        regions in 2usize..=4,
        shards in 1usize..=4,
    ) {
        check_partition_equivalence(seed, regions, shards);
    }

    #[test]
    fn shard_count_is_invisible_under_load(
        seed in 0u64..500,
        shards in 2usize..=4,
    ) {
        check_shard_invariance(seed, shards);
    }

    #[test]
    fn backpressure_conserves_every_request(
        seed in 0u64..500,
        queue_cap in 1usize..=4,
        drain in 1usize..=3,
        rate in 100.0f64..400.0,
        ticks in 3u32..=8,
    ) {
        check_backpressure_conservation(seed, queue_cap, drain, rate, ticks);
    }
}

/// Deterministic pins: run each property at fixed seeds so the checks
/// execute even where the proptest driver is unavailable, and so the
/// partition-equivalence sample is known to contain both a chain
/// confined to one region and a chain spanning two.
#[test]
fn partition_equivalence_pinned_covers_both_chain_kinds() {
    let mut confined_total = 0usize;
    let mut spanning_total = 0usize;
    for seed in [17u64, 101, 333] {
        let (confined, spanning) = check_partition_equivalence(seed, 3, 3);
        confined_total += confined;
        spanning_total += spanning;
    }
    assert!(confined_total > 0, "no region-confined chain in any sample");
    assert!(spanning_total > 0, "no region-spanning chain in any sample");
}

#[test]
fn shard_invariance_pinned() {
    for seed in [5u64, 88, 421] {
        check_shard_invariance(seed, 3);
        check_shard_invariance(seed, 4);
    }
}

#[test]
fn backpressure_conservation_pinned() {
    check_backpressure_conservation(9, 1, 1, 350.0, 6);
    check_backpressure_conservation(77, 2, 2, 180.0, 8);
    check_backpressure_conservation(123, 4, 3, 120.0, 4);
}
